"""Calibration report: compares synthetic-workload results to paper targets.

Run during profile tuning:

    python tools/calibrate.py [num_insts]

Prints, per benchmark: dataflow ILP, base IPC for both issue-queue sizes
against Table 2, and relative 2-cycle / macro-op IPC against the Figure 14
shapes.  This is a development tool; the reproducible experiment harness
lives in ``repro.experiments``.
"""

from __future__ import annotations

import sys

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.workloads import generate_trace, get_profile, profile_names


def dataflow_ilp(trace, single_cycle_edge: int = 1) -> float:
    """Operations divided by dataflow critical path length."""
    last = {}
    critical = 1
    for op in trace.ops:
        depth = 0
        for src in op.srcs:
            producer = last.get(src)
            if producer is not None:
                edge = 3 if producer[1] else single_cycle_edge
                depth = max(depth, producer[0] + edge)
        if op.dest is not None:
            last[op.dest] = (depth, op.is_load)
        critical = max(critical, depth + 1)
    return len(trace.ops) / critical


def main() -> None:
    num_insts = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    header = (f"{'bench':8s} {'ilp':>5s} {'b32':>6s} {'p32':>5s}"
              f" {'bU':>6s} {'pU':>5s} {'2cyc':>6s} {'mop':>6s}"
              f" {'grp%':>5s}")
    print(header)
    for name in profile_names():
        profile = get_profile(name)
        trace = generate_trace(profile, num_insts)
        base32 = simulate(
            trace, MachineConfig.paper_default(
                scheduler=SchedulerKind.BASE)).ipc
        base_u = simulate(
            trace, MachineConfig.unrestricted_queue(
                scheduler=SchedulerKind.BASE)).ipc
        two = simulate(
            trace, MachineConfig.unrestricted_queue(
                scheduler=SchedulerKind.TWO_CYCLE)).ipc
        mop = simulate(
            trace, MachineConfig.unrestricted_queue(
                scheduler=SchedulerKind.MACRO_OP,
                wakeup_style=WakeupStyle.WIRED_OR))
        print(f"{name:8s} {dataflow_ilp(trace):5.2f}"
              f" {base32:6.3f} {profile.paper_ipc_32:5.2f}"
              f" {base_u:6.3f} {profile.paper_ipc_unrestricted:5.2f}"
              f" {two / base_u:6.3f} {mop.ipc / base_u:6.3f}"
              f" {100 * mop.grouped_fraction:5.1f}")


if __name__ == "__main__":
    main()
