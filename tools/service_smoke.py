#!/usr/bin/env python
"""Service smoke: concurrent load, worker kills, SIGTERM + restart.

The CI-facing proof of the service's durability contract, against real
server processes:

1. Start ``repro serve`` with worker-kill faults armed
   (``REPRO_FAULT_INJECT``): some cells kill their pool worker on the
   first attempt, some flake only in the pool — the executor's
   respawn/retry machinery has to absorb both under load.
2. Fire wave 1 of concurrent submissions (default 100 clients at
   once) drawn from a small pool of distinct specs, so the in-flight
   dedup and the shared cache both get hammered.  Every submission
   must eventually be acked with a 202 (the client retries through
   429 shedding).
3. SIGTERM the server mid-test with a short drain budget, restart it
   on the same port and state dir — and fire wave 2 *while* the
   restart is happening, so clients race the 503s and the connection
   refusals.  The journal must carry every wave-1 job across.
4. Wait for all accepted jobs to reach a terminal state.  Assert:
   **zero lost jobs** (every acked id is known and ``done``), merged
   results **byte-identical** to an uninterrupted serial in-process
   run of each spec, and a clean ``/healthz``.

Exit code 0 on success; non-zero with a diagnosis on any violation.

Usage::

    python tools/service_smoke.py [--submissions 200] [--insts 300]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.executor import Executor  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402
from repro.service.protocol import JobSpec  # noqa: E402

#: Faults armed on the server: gap/base kills its pool worker once,
#: vortex/mop flakes only inside the pool (serial fallback recovers).
FAULTS = "gap/base=kill:1;vortex/mop=raise-parallel:1"

SPEC_POOL = [
    {"benchmarks": ["gap"], "configs": {
        "base": {"scheduler": "base"},
        "mop": {"scheduler": "macro-op"}}},
    {"benchmarks": ["vortex"], "configs": {
        "base": {"scheduler": "base"},
        "mop": {"scheduler": "macro-op"}}},
    {"benchmarks": ["gap", "vortex"], "configs": {
        "2cyc": {"scheduler": "2-cycle"}}},
    {"benchmarks": ["gzip"], "configs": {
        "sfree": {"scheduler": "select-free-squash-dep"},
        "base": {"scheduler": "base"}}},
]


def log(message: str) -> None:
    print(f"[smoke +{time.monotonic() - START:6.1f}s] {message}",
          flush=True)


START = time.monotonic()


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, state_dir: Path, *,
                 faults: str = "") -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_FAULT_INJECT", None)
    if faults:
        env["REPRO_FAULT_INJECT"] = faults
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--state-dir", str(state_dir),
         "--sessions", "2", "--executor-jobs", "2",
         "--queue-limit", "16", "--drain-timeout", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    for _ in range(200):
        line = proc.stdout.readline()
        if not line:
            break
        if re.search(r"listening on http", line):
            return proc
    raise RuntimeError("server never printed its address")


def drain_output(proc: subprocess.Popen) -> None:
    """Keep the server's pipe from filling (we don't need the text)."""
    import threading

    def pump():
        for _line in proc.stdout:
            pass

    threading.Thread(target=pump, daemon=True).start()


def submit_wave(client: ServiceClient, specs, insts: int,
                workers: int = 32):
    """Submit each spec concurrently; returns the acked job ids."""

    def one(index_spec):
        index, spec = index_spec
        payload = {**spec, "num_insts": insts, "seed": 1}
        # Generous retry budget: submissions must survive 429 bursts,
        # a draining server AND the restart gap.
        for attempt in range(60):
            try:
                return client.submit(payload, retries=0)["id"]
            except ServiceError as exc:
                if not exc.retryable:
                    raise
                time.sleep(min(0.25 * (attempt + 1), 2.0))
        raise RuntimeError(f"submission {index} never acked")

    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(one, enumerate(specs)))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--submissions", type=int, default=200)
    parser.add_argument("--insts", type=int, default=300)
    parser.add_argument("--wait-timeout", type=float, default=600.0)
    args = parser.parse_args()

    state_dir = Path(tempfile.mkdtemp(prefix="repro-smoke-"))
    port = free_port()
    client = ServiceClient("127.0.0.1", port, timeout=30)
    specs = [SPEC_POOL[i % len(SPEC_POOL)]
             for i in range(args.submissions)]
    half = len(specs) // 2

    log(f"phase 1: server on :{port} with worker-kill faults "
        f"({FAULTS})")
    proc = start_server(port, state_dir, faults=FAULTS)
    drain_output(proc)

    log(f"wave 1: {half} concurrent submissions")
    with ThreadPoolExecutor(max_workers=1) as racer:
        wave1 = racer.submit(submit_wave, client, specs[:half],
                             args.insts)
        # SIGTERM while wave 1 is still submitting/running, so jobs
        # are interrupted mid-flight and clients race the 503s, the
        # refused connections, and the restart.
        time.sleep(1.0)
        log("SIGTERM mid-test (drain budget 2s)")
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        log(f"server 1 exited rc={rc} (1 = jobs still journaled)")
        proc = start_server(port, state_dir)
        drain_output(proc)
        log("server 2 up, journal replayed")
        accepted = wave1.result()
    log(f"wave 1 acked: {len(accepted)} jobs (across the restart)")

    log(f"wave 2: {len(specs) - half} submissions against server 2")
    accepted += submit_wave(client, specs[half:], args.insts)
    log(f"total acked: {len(accepted)}")
    assert len(accepted) == args.submissions

    log("waiting for every accepted job to reach a terminal state")
    deadline = time.monotonic() + args.wait_timeout
    failures = []
    for job_id in accepted:
        remaining = max(5.0, deadline - time.monotonic())
        status = client.wait(job_id, timeout=remaining)
        if status["state"] != "done":
            failures.append((job_id, status["state"],
                             status.get("error", "")))
    if failures:
        log(f"LOST/FAILED jobs: {failures[:10]}"
            f"{' ...' if len(failures) > 10 else ''}")
        return 1
    log(f"all {len(accepted)} jobs done — zero lost")

    known = client.jobs()["jobs"]
    missing = [job_id for job_id in accepted if job_id not in known]
    if missing:
        log(f"jobs missing from the server: {missing}")
        return 1

    log("checking results are byte-identical to serial reference runs")
    for spec in SPEC_POOL:
        payload = {**spec, "num_insts": args.insts, "seed": 1}
        parsed = JobSpec.from_payload(payload)
        reference = Executor(jobs=1, cache=None).run_cells(parsed.cells())
        sample = [job_id for job_id, raw in zip(accepted, specs)
                  if raw == spec][0]
        grid = client.result(sample)["results"]
        for cell in parsed.cells():
            got = grid[cell.benchmark][cell.label]
            want = asdict(reference[cell])
            if got != want:
                log(f"MISMATCH {cell.name}: service={got} "
                    f"reference={want}")
                return 1
    log("results match the serial reference bit for bit")

    health = client.healthz()
    metrics = client.metrics()
    log(f"healthz: {health['status']} queue_depth="
        f"{health['queue_depth']}")
    log("metrics: " + json.dumps({
        key: metrics[key] for key in
        ("accepted", "shed", "completed", "failed", "recovered",
         "dedup_hits", "cache_hits", "cell_retries", "pool_respawns",
         "journal_torn_lines")}))
    if health["status"] != "ok":
        log("healthz not clean")
        return 1
    if metrics["failed"]:
        log("server reports failed jobs")
        return 1

    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    log(f"final drain rc={rc}")
    return 0 if rc == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
