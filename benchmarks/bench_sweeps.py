"""Sweep benches: scalability curves beyond the paper's two data points.

``queue_size_sweep`` fills in the IPC-vs-queue-size curve for base /
2-cycle / macro-op scheduling; ``rob_size_sweep`` isolates window-capacity
effects with the unrestricted queue.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments.sweeps import queue_size_sweep, rob_size_sweep


def test_queue_size_sweep(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: queue_size_sweep(benchmarks=bench_set(),
                                 num_insts=bench_insts(),
                                 sizes=(8, 16, 32, 64)),
        rounds=1, iterations=1,
    )
    experiment_recorder("sweep_queue_size", result)
    for name, row in result.rows.items():
        assert row["base@8"] <= row["base@64"] * 1.02, name


def test_rob_size_sweep(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: rob_size_sweep(benchmarks=bench_set(),
                               num_insts=bench_insts(),
                               sizes=(32, 64, 128)),
        rounds=1, iterations=1,
    )
    experiment_recorder("sweep_rob_size", result)
    for name, row in result.rows.items():
        assert row["rob32"] <= row["rob128"] * 1.02, name
