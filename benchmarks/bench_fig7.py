"""Figure 7: 2x / 8x MOP groupability characterization.

Regenerates Figure 7: the fraction of committed instructions groupable into
two-instruction and up-to-eight-instruction MOPs within the 8-instruction
scope, and the average 8x MOP size.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import figure7


def test_figure7(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: figure7(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("figure7", result)
    for row in result.rows.values():
        # Greedy grouping can strand a chain member the 2x pass would
        # anchor afresh; allow a ~1pp inversion.
        assert row["grouped_8x_%"] >= row["grouped_2x_%"] - 1.0
