"""Figure 6: dependence-edge distance characterization (machine-independent).

Regenerates the stacked bars of Figure 6: for each benchmark, the fate of
every value-generating candidate's value — nearest dependent candidate at
distance 1–3 / 4–7 / 8+, dependent-but-not-candidate, or dynamically dead —
plus the "% total insts" row.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import figure6


def test_figure6(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: figure6(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    text = experiment_recorder("figure6", result)
    assert "gap" in text or bench_set() is not None
