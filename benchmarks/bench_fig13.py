"""Figure 13: instructions grouped by the macro-op pipeline.

Regenerates Figure 13: per benchmark and wakeup style (CAM 2-source vs
wired-OR), the fraction of committed instructions grouped into dependent
(value-generating / non-value-generating) and independent MOPs, plus the
scheduler-insert reduction the paper reports as 16.2% on average.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import figure13


def test_figure13(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: figure13(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("figure13", result)
    for row in result.rows.values():
        assert 0.0 <= row["wired-OR_grouped_%"] <= 100.0
