"""Figure 15: macro-op scheduling under issue-queue contention.

Regenerates Figure 15: IPC normalized to base scheduling with the paper's
32-entry issue queue / 128 ROB.  Macro-op columns carry 0/1/2 extra MOP
formation stages (the paper's solid bars use 1; its error bars are 0 and
2).  The paper's shape: macro-op performs comparably to — and on several
benchmarks better than — the atomic baseline, because pairs share queue
entries.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import figure15


def test_figure15(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: figure15(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("figure15", result)
    for name, row in result.rows.items():
        # More formation stages never help (deeper mispredict pipe).
        assert row["MOP-wiredOR+2"] <= row["MOP-wiredOR+0"] + 0.03, name
