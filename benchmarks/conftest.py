"""Benchmark-harness plumbing.

Every bench target regenerates one of the paper's tables/figures, prints
the rendered rows (run pytest with ``-s`` to see them live), and archives
them under ``benchmarks/results/`` so EXPERIMENTS.md can quote them.

Environment knobs:

* ``REPRO_BENCH_INSTS`` — committed instructions per benchmark run
  (default 6000; the paper's shapes are stable from a few thousand).
* ``REPRO_BENCH_SET`` — comma-separated benchmark subset (default: all 12).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_insts() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTS", "6000"))


def bench_set():
    names = os.environ.get("REPRO_BENCH_SET", "")
    if not names:
        return None
    return [name.strip() for name in names.split(",") if name.strip()]


def archive(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def experiment_recorder():
    """Print and archive a rendered experiment result."""

    def record(name: str, result) -> str:
        text = result.render()
        print()
        print(text)
        archive(name, text)
        return text

    return record
