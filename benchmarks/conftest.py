"""Benchmark-harness plumbing.

Every bench target regenerates one of the paper's tables/figures, prints
the rendered rows (run pytest with ``-s`` to see them live), and archives
them under ``benchmarks/results/`` so EXPERIMENTS.md can quote them.

Environment knobs:

* ``REPRO_BENCH_INSTS`` — committed instructions per benchmark run
  (default 6000; the paper's shapes are stable from a few thousand).
* ``REPRO_BENCH_SET`` — comma-separated benchmark subset (default: all 12).
* ``REPRO_BENCH_JOBS`` — parallel simulation workers (default 1; ``0``
  means one per CPU).  Results are bit-identical for any value.
* ``REPRO_BENCH_CACHE`` — set to ``1`` to reuse the on-disk result cache
  (``REPRO_CACHE_DIR`` or ``~/.cache/repro``) across bench runs.
* ``REPRO_BENCH_TIMEOUT`` — per-cell wall-clock limit in seconds
  (default: ``REPRO_CELL_TIMEOUT`` or unlimited; enforced only when
  ``REPRO_BENCH_JOBS`` provides a worker pool).
* ``REPRO_BENCH_RETRIES`` — attempts beyond the first for a failed cell
  (default 2).  Cells lost anyway are rendered as ``FAILED`` and listed
  in a failure report after the session summary.
* ``REPRO_BENCH_BACKEND`` — simulation kernel for every bench cell
  (``python`` golden reference or ``numpy``; default: each config's
  own field, i.e. python).  Results are bit-identical either way, so
  the archived tables never depend on the choice.

Every bench target's simulation grid flows through one session-wide
:class:`repro.experiments.executor.Executor` installed by the autouse
fixture below.

Besides the rendered ``results/*.txt`` tables, every session writes the
machine-readable ``results/timings.json`` (per-target wall clock from
pytest's own call durations, plus the executor's cache/timing counters).
Both the printed summary and the JSON are built from a **post-session**
snapshot of the executor — counters captured at fixture setup would be
permanently stale, showing 0 cache hits under ``REPRO_BENCH_CACHE=1``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.executor import (
    Executor,
    ResultCache,
    set_default_executor,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Call-phase wall seconds per bench test id, filled by the hook below.
_TARGET_DURATIONS: Dict[str, float] = {}


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _TARGET_DURATIONS[report.nodeid] = report.duration


@pytest.fixture(scope="session", autouse=True)
def _no_trace_overhead():
    """Bench runs are untraced: the observability layer must stay cold.

    :mod:`repro.trace` is imported lazily by
    :meth:`Processor.set_trace_sink` only; if it ever shows up during a
    bench session, some hot path started paying tracing costs (imports,
    event construction) with tracing off — exactly the regression the
    <2% wall-clock budget forbids.
    """
    assert "repro.trace" not in sys.modules, \
        "repro.trace imported before the bench session even started"
    yield
    assert "repro.trace" not in sys.modules, \
        "an untraced bench run imported repro.trace"


def bench_insts() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTS", "6000"))


def bench_set():
    names = os.environ.get("REPRO_BENCH_SET", "")
    if not names:
        return None
    return [name.strip() for name in names.split(",") if name.strip()]


def bench_jobs():
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return None if jobs == 0 else jobs


def bench_cache():
    enabled = os.environ.get("REPRO_BENCH_CACHE", "")
    if enabled.lower() in ("1", "true", "yes"):
        return ResultCache()
    return None


def bench_timeout():
    value = os.environ.get("REPRO_BENCH_TIMEOUT", "")
    return float(value) if value else None


def bench_retries():
    return int(os.environ.get("REPRO_BENCH_RETRIES", "2"))


def bench_backend():
    return os.environ.get("REPRO_BENCH_BACKEND") or None


@pytest.fixture(scope="session", autouse=True)
def bench_executor():
    """Route every bench simulation through one shared executor.

    Everything after the ``yield`` runs once the whole bench session is
    over: the summary, the failure report and ``results/timings.json``
    are all derived from the executor's counters *at that point*.  (An
    earlier revision rendered cache-hit counts from a summary object
    captured during setup, which read 0 hits under
    ``REPRO_BENCH_CACHE=1`` no matter what the session did.)
    """
    executor = Executor(jobs=bench_jobs(), cache=bench_cache(),
                        cell_timeout=bench_timeout(),
                        max_retries=bench_retries(),
                        backend=bench_backend())
    previous = set_default_executor(executor)
    yield executor
    summary = executor.total_summary
    if summary.cells:
        print(f"\n{summary.render()}")
    failures = executor.failure_report()
    if failures:
        print(failures.render())
    _write_timings(executor)
    set_default_executor(previous)


def _write_timings(executor: Executor) -> None:
    """Archive the machine-readable session timings document."""
    from repro.perf.session import write_bench_timings
    path = write_bench_timings(
        RESULTS_DIR / "timings.json",
        executor,
        durations=dict(_TARGET_DURATIONS),
        meta={
            "insts": bench_insts(),
            "jobs": executor.jobs,
            "cache": executor.cache is not None,
            "set": bench_set() or "all",
        },
    )
    if executor.total_summary.cells:
        print(f"bench timings -> {path}")


def archive(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def experiment_recorder():
    """Print and archive a rendered experiment result."""

    def record(name: str, result) -> str:
        text = result.render()
        print()
        print(text)
        archive(name, text)
        return text

    return record
