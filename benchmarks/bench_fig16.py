"""Figure 16: pipelined scheduling logic comparison.

Regenerates Figure 16: select-free scheduling (Brown et al.) in its
squash-dep and scoreboard configurations against macro-op scheduling
(wired-OR, one extra formation stage), all with the 32-entry issue queue,
normalized to base scheduling.  The paper's shape: squash-dep comparable or
slightly worse than macro-op, scoreboard noticeably worse, and select-free
never beating the baseline.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import figure16


def test_figure16(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: figure16(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("figure16", result)
    for name, row in result.rows.items():
        assert row["select-free-scoreboard"] <= 1.02, name
        assert row["select-free-squash-dep"] <= 1.02, name
