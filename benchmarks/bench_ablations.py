"""Ablation benches for the design choices the paper discusses in text.

* detection delay 3 vs 100 cycles (Section 6.2),
* the last-arriving-operand filter (Section 5.4.2),
* independent MOPs (Section 5.4.1),
* the MOP formation scope (Section 4.2).
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments.ablations import (
    detection_delay_ablation,
    independent_mops_ablation,
    last_arrival_filter_ablation,
    scope_sweep,
)


def test_detection_delay(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: detection_delay_ablation(benchmarks=bench_set(),
                                         num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("ablation_detection_delay", result)
    for name, row in result.rows.items():
        # Paper: average 0.22% loss, worst 0.76%; allow slack for the
        # short synthetic samples.
        assert row["delay100_rel"] >= 0.90, name


def test_last_arriving_filter(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: last_arrival_filter_ablation(benchmarks=bench_set(),
                                             num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("ablation_last_arrival", result)


def test_independent_mops(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: independent_mops_ablation(benchmarks=bench_set(),
                                          num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("ablation_independent_mops", result)
    for name, row in result.rows.items():
        assert row["on_grouped_%"] >= row["off_grouped_%"] - 1e-9, name


def test_scope_sweep(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: scope_sweep(benchmarks=bench_set(),
                            num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("ablation_scope", result)
    for name, row in result.rows.items():
        assert row["scope8_%"] >= row["scope4_%"], name
