"""Table 2: benchmarks and base IPCs.

Regenerates the base-scheduler IPC columns of Table 2 (32-entry and
unrestricted issue queues) next to the paper's measured values.  Absolute
IPC equality is not expected — the substrate is a synthetic workload, not
the authors' SPEC/Alpha binaries — but the per-benchmark ordering and the
32-vs-unrestricted direction should hold.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import table2


def test_table2(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: table2(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("table2", result)
    for name, row in result.rows.items():
        assert row["IPC_unrestricted"] >= row["IPC_32"] - 0.02, name
