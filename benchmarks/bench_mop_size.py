"""Extension bench: MOP sizes beyond two (Section 4.3 future work).

The paper's Figure 7 characterizes how many instructions *could* be
grouped into up-to-8-instruction MOPs but evaluates only pairs.  This
bench runs the pipeline with the larger-MOP extension — pointer chains at
formation — sweeping MOP size 2/3/4 under the paper's 2-cycle loop, and
pairing size 4 with a 4-cycle scheduling loop (the deeper-pipelining
scenario Section 4.3 motivates).
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.experiments.runner import ExperimentResult, run_configs


def mop_size_sweep(benchmarks=None, num_insts=6000):
    configs = {
        "base": MachineConfig.paper_default(scheduler=SchedulerKind.BASE),
    }
    for size in (2, 3, 4):
        configs[f"size{size}"] = MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR, mop_size=size)
    configs["size4_depth4"] = MachineConfig.paper_default(
        scheduler=SchedulerKind.MACRO_OP,
        wakeup_style=WakeupStyle.WIRED_OR, mop_size=4, sched_loop_depth=4)
    stats = run_configs(configs, benchmarks, num_insts)
    result = ExperimentResult(
        name="Extension: MOP size sweep",
        description=("IPC relative to base and insert reduction for MOP "
                     "sizes 2/3/4 (2-cycle loop) and size 4 under a "
                     "4-cycle scheduling loop"),
        ratio_columns=("size2", "size3", "size4", "size4_depth4"),
        notes="Section 4.3: larger MOPs further reduce queue pressure and "
              "let the scheduling loop span more cycles",
    )
    for name, by_config in stats.items():
        base = by_config["base"].ipc
        row = {}
        for label, s in by_config.items():
            if label == "base":
                continue
            row[label] = s.ipc / base
            row[f"{label}_insred_%"] = 100.0 * s.insert_reduction
        result.rows[name] = row
    return result


def test_mop_size_sweep(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: mop_size_sweep(benchmarks=bench_set(),
                               num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("extension_mop_size", result)
    for name, row in result.rows.items():
        # Bigger MOPs never increase queue pressure.
        assert row["size4_insred_%"] >= row["size2_insred_%"] - 0.5, name
