"""Figure 14: vanilla macro-op scheduling performance.

Regenerates Figure 14: IPC normalized to base (ideally pipelined atomic)
scheduling, with the unrestricted issue queue and no extra MOP formation
stage — 2-cycle scheduling vs macro-op scheduling with both wakeup styles.
The paper's shape: 2-cycle loses 1.3% (vortex) to 19.1% (gap); macro-op
recovers a large fraction, averaging 97.2% of base.
"""

from benchmarks.conftest import bench_insts, bench_set
from repro.experiments import figure14


def test_figure14(benchmark, experiment_recorder):
    result = benchmark.pedantic(
        lambda: figure14(benchmarks=bench_set(), num_insts=bench_insts()),
        rounds=1, iterations=1,
    )
    experiment_recorder("figure14", result)
    for name, row in result.rows.items():
        assert row["2-cycle"] <= 1.02, name
        assert row["MOP-wiredOR"] >= row["2-cycle"] - 0.06, name
