"""Dataflow critical-path analysis.

Computes the dependence-graph critical path of a trace under a configurable
cost model for single-cycle edges — the quantity that explains, before any
simulation, how much a workload can lose to pipelined scheduling:

* with single-cycle edges costing 1 (atomic scheduling), ``N / CP`` bounds
  the dataflow IPC;
* with single-cycle edges costing 2 (2-cycle scheduling), the *ratio* of
  the two critical paths bounds the achievable 2-cycle slowdown when the
  machine is dataflow-limited;
* macro-op scheduling's opportunity is exactly the single-cycle edges that
  grouping can collapse back to cost 1.

Used by the calibration tooling and exposed as a public analysis because it
is the fastest way to predict where a new workload lands in Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.trace import Trace

#: Memory-access latency assumed for load edges (agen + DL1 hit).
LOAD_EDGE = 3


@dataclass
class CriticalPathResult:
    """Critical-path statistics for one trace under one edge-cost model."""

    name: str
    ops: int
    critical_path: int
    single_cycle_edge: int

    @property
    def dataflow_ilp(self) -> float:
        """Operations per critical-path cycle — the dataflow IPC bound."""
        return self.ops / self.critical_path if self.critical_path else 0.0


def critical_path(trace: Trace, single_cycle_edge: int = 1
                  ) -> CriticalPathResult:
    """Longest register-dataflow path with the given 1-cycle edge cost.

    Loads contribute :data:`LOAD_EDGE` cycles (address generation plus the
    assumed DL1 hit); other multi-cycle operations contribute their
    functional-unit latency; single-cycle operations contribute
    *single_cycle_edge* — 1 models atomic scheduling, 2 models the 2-cycle
    pipelined loop.
    """
    last: Dict[int, Tuple[int, int]] = {}   # reg → (depth, edge cost)
    critical = 1
    for op in trace.ops:
        depth = 0
        for src in op.srcs:
            producer = last.get(src)
            if producer is not None:
                depth = max(depth, producer[0] + producer[1])
        if op.dest is not None:
            if op.is_load:
                cost = LOAD_EDGE
            elif op.latency > 1:
                cost = op.latency
            else:
                cost = single_cycle_edge
            last[op.dest] = (depth, cost)
        critical = max(critical, depth + 1)
    return CriticalPathResult(
        name=trace.name,
        ops=len(trace.ops),
        critical_path=critical,
        single_cycle_edge=single_cycle_edge,
    )


def two_cycle_exposure(trace: Trace) -> float:
    """Upper bound on the fraction of performance 2-cycle scheduling can
    cost this workload when dataflow-limited: ``1 - CP(1) / CP(2)``.

    0 means the critical path is dominated by multi-cycle edges (vortex,
    mcf); values toward 0.5 mean dense single-cycle chains (gap).
    """
    atomic = critical_path(trace, 1).critical_path
    pipelined = critical_path(trace, 2).critical_path
    if pipelined == 0:
        return 0.0
    return 1.0 - atomic / pipelined
