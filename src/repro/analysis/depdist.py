"""Dependence-edge distance characterization (Figure 6).

For every *value-generating candidate* instruction (potential MOP head) in
a dynamic trace, find its nearest dependent instruction — the first later
instruction that reads the produced register before it is overwritten — and
classify the head:

* ``d1_3`` / ``d4_7`` / ``d8p``: nearest dependent is itself a macro-op
  candidate, at the given distance in *instructions* (stores count once),
* ``noncand``: nearest dependent exists but is not a candidate (a load's
  address is the classic case),
* ``dead``: the value is overwritten or never read — dynamically dead.

The paper stresses this is a program property, independent of machine
configuration; correspondingly this module never touches the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.instruction import DynInst
from repro.workloads.trace import Trace

#: Nearest-consumer searches stop after this many instructions; a value
#: unread for this long is classified as it stands at trace end.
_HORIZON = 64


@dataclass
class DistanceBuckets:
    """Figure 6 classification counts for one workload."""

    name: str = ""
    total_insts: int = 0
    valuegen_heads: int = 0
    d1_3: int = 0
    d4_7: int = 0
    d8p: int = 0
    noncand: int = 0
    dead: int = 0

    @property
    def valuegen_fraction(self) -> float:
        """The "% total insts" row of Figure 6."""
        if not self.total_insts:
            return 0.0
        return self.valuegen_heads / self.total_insts

    def fraction(self, bucket: str) -> float:
        """Share of value-generating heads in *bucket*."""
        if not self.valuegen_heads:
            return 0.0
        return getattr(self, bucket) / self.valuegen_heads

    @property
    def within_scope(self) -> float:
        """Heads whose nearest tail falls in the 8-instruction scope."""
        return self.fraction("d1_3") + self.fraction("d4_7")

    @property
    def has_tail(self) -> float:
        """Heads with at least one potential tail (the paper reports an
        average of 73% across benchmarks)."""
        return (self.fraction("d1_3") + self.fraction("d4_7")
                + self.fraction("d8p"))

    def as_row(self) -> Dict[str, float]:
        return {
            "valuegen_%insts": 100.0 * self.valuegen_fraction,
            "1~3": 100.0 * self.fraction("d1_3"),
            "4~7": 100.0 * self.fraction("d4_7"),
            "8+": 100.0 * self.fraction("d8p"),
            "not_candidate": 100.0 * self.fraction("noncand"),
            "dead": 100.0 * self.fraction("dead"),
        }


class _PendingValue:
    """A produced value awaiting its first reader."""

    __slots__ = ("inst_index", "reg")

    def __init__(self, inst_index: int, reg: int) -> None:
        self.inst_index = inst_index
        self.reg = reg


def characterize_distances(trace: Trace) -> DistanceBuckets:
    """Run the Figure 6 characterization over *trace*."""
    buckets = DistanceBuckets(name=trace.name)
    live: Dict[int, _PendingValue] = {}
    inst_index = 0

    def classify(value: _PendingValue,
                 consumer: Optional[DynInst]) -> None:
        if consumer is None:
            buckets.dead += 1
            return
        if not consumer.is_mop_candidate:
            buckets.noncand += 1
            return
        distance = inst_index - value.inst_index
        if distance <= 3:
            buckets.d1_3 += 1
        elif distance <= 7:
            buckets.d4_7 += 1
        else:
            buckets.d8p += 1

    for op in trace.ops:
        if op.counts_as_inst:
            inst_index += 1
            buckets.total_insts += 1

        for src in op.srcs:
            value = live.get(src)
            if value is not None:
                del live[src]
                classify(value, op)

        dest = op.dest
        if dest is not None:
            stale = live.pop(dest, None)
            if stale is not None:
                classify(stale, None)   # overwritten unread: dead
            if op.is_valuegen_candidate:
                buckets.valuegen_heads += 1
                live[dest] = _PendingValue(inst_index, dest)

        if inst_index % 1024 == 0 and live:
            # Garbage-collect values far past the horizon as dead.
            expired = [reg for reg, value in live.items()
                       if inst_index - value.inst_index > _HORIZON]
            for reg in expired:
                classify(live.pop(reg), None)

    for value in live.values():
        classify(value, None)
    return buckets
