"""MOP-size groupability characterization (Figure 7).

Given the 8-instruction scope chosen in Section 4.2, how many instructions
can be grouped into MOPs of at most 2 (``2x``) or at most 8 (``8x``)
instructions?  The paper reports 32.9% / 35.4% of instructions grouped on
average, and 2.2–3.0 instructions per 8x MOP.

The grouping model is the paper's idealized (machine-independent) one:

* a MOP is a set of candidate instructions within an 8-instruction window
  anchored at its first member,
* every member after the first depends (directly, register-wise) on an
  earlier member — a dependence chain/tree collapsed into one unit,
* each instruction joins at most one MOP; groups are formed greedily in
  program order (earlier heads win, matching the priority-decoder spirit).

Store address generations and branches participate as (non-value-
generating) members; loads/multiplies/FP are not candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.trace import Trace

#: MOP formation scope, in instructions (Section 4.2).
SCOPE = 8


@dataclass
class GroupabilityResult:
    """Figure 7 numbers for one workload and one MOP size limit."""

    name: str
    mop_limit: int
    total_insts: int = 0
    candidates: int = 0
    grouped_valuegen: int = 0
    grouped_nonvaluegen: int = 0
    mops: int = 0

    @property
    def grouped(self) -> int:
        return self.grouped_valuegen + self.grouped_nonvaluegen

    @property
    def grouped_fraction(self) -> float:
        return self.grouped / self.total_insts if self.total_insts else 0.0

    @property
    def candidate_fraction(self) -> float:
        return self.candidates / self.total_insts if self.total_insts else 0.0

    @property
    def avg_mop_size(self) -> float:
        return self.grouped / self.mops if self.mops else 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            "candidates_%": 100.0 * self.candidate_fraction,
            "grouped_%": 100.0 * self.grouped_fraction,
            "valuegen_%": 100.0 * self.grouped_valuegen / self.total_insts
            if self.total_insts else 0.0,
            "avg_mop_size": self.avg_mop_size,
        }


class _Window:
    """Sliding window of recent instructions with register dataflow."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: List[dict] = []

    def trim(self, inst_index: int) -> None:
        while self.items and inst_index - self.items[0]["index"] >= SCOPE:
            self.items.pop(0)


def characterize_groupability(trace: Trace, mop_limit: int = 2
                              ) -> GroupabilityResult:
    """Run the Figure 7 characterization with the given MOP size limit."""
    result = GroupabilityResult(name=trace.name, mop_limit=mop_limit)
    window = _Window()
    last_writer: Dict[int, dict] = {}
    inst_index = 0

    for op in trace.ops:
        if not op.counts_as_inst:
            continue
        inst_index += 1
        result.total_insts += 1
        window.trim(inst_index)

        record = {
            "index": inst_index,
            "candidate": op.is_mop_candidate,
            "valuegen": op.is_valuegen_candidate,
            "group": None,       # the MOP record this inst joined
        }
        if op.is_mop_candidate:
            result.candidates += 1

        if op.is_mop_candidate:
            producers = [last_writer.get(src) for src in op.srcs]
            joined = _try_join(producers, record, result, mop_limit,
                               inst_index)
            if not joined and op.is_valuegen_candidate:
                # This instruction opens its own (so far singleton) group.
                record["group"] = {"members": 1, "anchor": inst_index,
                                   "open": True}

        if op.dest is not None:
            last_writer[op.dest] = record
        window.items.append(record)

    return result


def _try_join(producers, record, result: GroupabilityResult,
              mop_limit: int, inst_index: int) -> bool:
    """Try to add *record* to a producer's group (earliest producer wins)."""
    for producer in producers:
        if producer is None or not producer.get("candidate"):
            continue
        group = producer.get("group")
        if group is None or not group.get("open"):
            continue
        if inst_index - group["anchor"] >= SCOPE:
            group["open"] = False
            continue
        if group["members"] >= mop_limit:
            continue
        # Join: the producer's group gains this instruction.
        was_singleton = group["members"] == 1
        group["members"] += 1
        record["group"] = group
        if was_singleton:
            # The group becomes a real MOP: count the head too.
            result.mops += 1
            if producer["valuegen"]:
                result.grouped_valuegen += 1
            else:
                result.grouped_nonvaluegen += 1
        if record["valuegen"]:
            result.grouped_valuegen += 1
        else:
            result.grouped_nonvaluegen += 1
        return True
    return False
