"""Machine-independent workload characterization (Section 4).

These analyses reproduce the data of Figures 6 and 7, which the paper
emphasizes are *program* properties, independent of machine configuration:

* :mod:`repro.analysis.depdist` — dependence-edge distance between macro-op
  candidate pairs (Figure 6),
* :mod:`repro.analysis.groupability` — how many instructions fit in 2x/8x
  MOPs within the 8-instruction scope (Figure 7),
* :mod:`repro.analysis.reporting` — plain-text table rendering shared by
  the experiment harness.
"""

from repro.analysis.depdist import DistanceBuckets, characterize_distances
from repro.analysis.groupability import GroupabilityResult, characterize_groupability
from repro.analysis.reporting import render_table

__all__ = [
    "DistanceBuckets",
    "characterize_distances",
    "GroupabilityResult",
    "characterize_groupability",
    "render_table",
]
