"""Plain-text table rendering for characterizations and experiments."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Union

Number = Union[int, float]


def render_table(
    title: str,
    rows: Sequence[Dict[str, Number]],
    row_names: Sequence[str],
    precision: int = 2,
) -> str:
    """Render rows of {column: value} as an aligned text table.

    All rows must share the same columns.  Numeric values are formatted
    with *precision* decimals; integers are printed as integers.  NaN
    cells — the executor's marker for a simulation that could not be
    completed — render as ``FAILED``.
    """
    if not rows:
        return f"{title}\n(no data)"
    columns = list(rows[0].keys())
    name_width = max(len("bench"), max(len(n) for n in row_names))

    def fmt(value: Number) -> str:
        if isinstance(value, int):
            return str(value)
        if math.isnan(value):
            return "FAILED"
        return f"{value:.{precision}f}"

    widths = {
        col: max(len(col), max(len(fmt(row[col])) for row in rows))
        for col in columns
    }
    lines = [title]
    header = " ".join([f"{'bench':<{name_width}}"]
                      + [f"{col:>{widths[col]}}" for col in columns])
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in zip(row_names, rows):
        cells = " ".join([f"{name:<{name_width}}"]
                         + [f"{fmt(row[col]):>{widths[col]}}"
                            for col in columns])
        lines.append(cells)
    return "\n".join(lines)


def render_bars(
    title: str,
    values: Dict[str, float],
    width: int = 50,
    reference: Optional[float] = None,
    precision: int = 3,
) -> str:
    """Horizontal ASCII bar chart, one row per named value.

    With *reference* set (e.g. 1.0 for normalized IPC), a ``|`` marker is
    drawn at the reference position — Figure 14's "how far below base"
    becomes visible at a glance in a terminal.
    """
    if not values:
        return f"{title}\n(no data)"
    finite = [v for v in values.values() if not math.isnan(v)]
    peak = max(finite + [reference or 0.0]) if finite else (reference or 0.0)
    if peak <= 0:
        peak = 1.0
    name_width = max(len(name) for name in values)
    lines = [title]
    ref_col = (round(width * reference / peak)
               if reference is not None else None)
    for name, value in values.items():
        if math.isnan(value):
            lines.append(f"{name:<{name_width}} FAILED")
            continue
        filled = round(width * value / peak)
        bar = ["█"] * filled + [" "] * (width - filled)
        if ref_col is not None and 0 <= ref_col < width:
            bar[ref_col] = "|" if ref_col >= filled else "┃"
        lines.append(f"{name:<{name_width}} "
                     f"{''.join(bar)} {value:.{precision}f}")
    return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional summary for normalized IPCs.

    NaN inputs — the marker for a FAILED or empty cell — poison the
    result to NaN rather than silently dropping out: a summary that
    quietly excludes failures overstates the run.  Callers that want a
    partial mean must filter NaN themselves and say they did (see
    :meth:`repro.experiments.runner.ExperimentResult.render`).
    """
    values = list(values)
    if any(math.isnan(v) for v in values):
        return float("nan")
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
