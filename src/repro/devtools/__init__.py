"""Development tooling that ships with the repository.

Nothing under :mod:`repro.devtools` is imported by the simulator or the
experiment harness at runtime — these are maintainer-facing programs
(static analysis, calibration helpers) that happen to live inside the
package so they can be run from any checkout or install via
``python -m repro.devtools.<tool>``.
"""
