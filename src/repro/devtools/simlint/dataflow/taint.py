"""Taint propagation: nondeterminism labels through values and calls.

The lattice element for one local is a set of labels.  Concrete labels
come from :mod:`~repro.devtools.simlint.dataflow.catalog` (wall-clock,
randomness); the synthetic ``param:<i>`` tokens track which parameters
a value derives from, which is what makes the analysis compositional:

* a function's :class:`TaintSummary` says which labels its return
  value carries (``returns``), which parameters flow into the return
  value (``param_flows``), and which parameters reach a sink inside it
  or below it (``param_sinks``),
* callers substitute argument taint into those summaries, so a
  wall-clock read two helper hops away still lands in the right
  ``SimStats`` field — and the finding is reported at the call that
  passed the tainted value, which is the line a human needs to see.

Propagation through expressions is deliberately conservative: any
operator, f-string, container display or *unresolved* call forwards
the union of its operands' taint.  ``str(time.time())`` is still a
wall-clock value; laundering through formatting must not clear it.

Sinks (SL010): stores into ``SimStats`` / ``SimCell`` / ``TraceEvent``
attributes, arguments to those constructors, and arguments to
``cell_key``.  Sink objects are recognised by their *bare in-tree
class/function name* so fixture trees that mirror the package layout
behave exactly like the real one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.devtools.simlint.dataflow import catalog
from repro.devtools.simlint.dataflow.callgraph import CallSite, FunctionInfo
from repro.devtools.simlint.dataflow.cfg import CFG, iterate_forward
from repro.devtools.simlint.dataflow.symbols import (DefId, Resolver,
                                                     split_def_id)

#: Classes whose instances are determinism-critical: storing a tainted
#: value into them (attribute or constructor argument) is the sink.
SINK_CLASSES: Dict[str, str] = {
    "SimStats": "a SimStats field",
    "SimCell": "a SimCell (cell-key) input",
    "TraceEvent": "a trace-event payload",
}

#: Functions whose arguments are determinism-critical.
SINK_FUNCTIONS: Dict[str, str] = {
    "cell_key": "a cell_key input",
}

_PARAM_PREFIX = "param:"

Labels = FrozenSet[str]
_EMPTY: Labels = frozenset()


def param_token(index: int) -> str:
    return f"{_PARAM_PREFIX}{index}"


def _split_labels(labels: Labels) -> Tuple[Set[str], Set[int]]:
    """(concrete labels, parameter indices) in one taint set."""
    concrete: Set[str] = set()
    params: Set[int] = set()
    for label in labels:
        if label.startswith(_PARAM_PREFIX):
            params.add(int(label[len(_PARAM_PREFIX):]))
        else:
            concrete.add(label)
    return concrete, params


@dataclass
class TaintSummary:
    """Compositional taint behaviour of one function."""

    #: Concrete labels the return value always carries.
    returns: Set[str] = field(default_factory=set)
    #: Parameter indices that flow into the return value.
    param_flows: Set[int] = field(default_factory=set)
    #: Parameter index -> sink description it (transitively) reaches.
    param_sinks: Dict[int, str] = field(default_factory=dict)

    def merge(self, other: "TaintSummary") -> bool:
        """Union *other* in; True when anything grew (monotone)."""
        grew = (not other.returns <= self.returns
                or not other.param_flows <= self.param_flows
                or not set(other.param_sinks) <= set(self.param_sinks))
        self.returns |= other.returns
        self.param_flows |= other.param_flows
        for index, sink in other.param_sinks.items():
            self.param_sinks.setdefault(index, sink)
        return grew

    def to_dict(self) -> Dict[str, object]:
        return {"returns": sorted(self.returns),
                "param_flows": sorted(self.param_flows),
                "param_sinks": {str(k): v
                                for k, v in self.param_sinks.items()}}

    @classmethod
    def from_dict(cls, payload: Optional[Dict]) -> "TaintSummary":
        if not payload:
            return cls()
        return cls(returns=set(payload.get("returns", [])),
                   param_flows=set(payload.get("param_flows", [])),
                   param_sinks={int(k): v for k, v
                                in payload.get("param_sinks", {}).items()})


@dataclass(frozen=True)
class TaintFinding:
    """One SL010 hit, serialisable into FunctionInfo records."""

    line: int
    col: int
    label: str
    sink: str
    detail: str = ""

    def message(self) -> str:
        via = f" {self.detail}" if self.detail else ""
        return (f"{self.label} value flows into {self.sink}{via}; "
                f"derive it from the simulation seed/clock instead")

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col, "label": self.label,
                "sink": self.sink, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: Dict) -> "TaintFinding":
        return cls(line=payload["line"], col=payload["col"],
                   label=payload["label"], sink=payload["sink"],
                   detail=payload.get("detail", ""))


def analyze_function(info: FunctionInfo, resolver: Resolver,
                     types: Dict[str, DefId],
                     summaries: Dict[DefId, TaintSummary],
                     functions: Dict[DefId, FunctionInfo],
                     ) -> Tuple[TaintSummary, List[TaintFinding]]:
    """One intraprocedural pass with the current callee summaries.

    Runs the worklist to a per-function fixed point, then one recording
    sweep over the final states to extract the summary and the sink
    findings.  Monotone in ``summaries``, so the interprocedural
    driver can iterate this to a global fixed point.
    """
    if info.node is None:
        return TaintSummary.from_dict(info.summary), []
    analyzer = _FunctionTaint(info, resolver, types, summaries, functions)
    return analyzer.run()


class _FunctionTaint:
    def __init__(self, info: FunctionInfo, resolver: Resolver,
                 types: Dict[str, DefId],
                 summaries: Dict[DefId, TaintSummary],
                 functions: Dict[DefId, FunctionInfo]) -> None:
        self.info = info
        self.resolver = resolver
        self.types = types
        self.summaries = summaries
        self.functions = functions
        #: (line, col) -> resolved call site, from the extraction pass.
        self.sites: Dict[Tuple[int, int], CallSite] = {
            (site.line, site.col): site for site in info.calls}
        self.returns: Labels = _EMPTY
        self.param_sinks: Dict[int, str] = {}
        self.findings: Set[TaintFinding] = set()
        self._record = False

    # -- driver --------------------------------------------------------------

    def run(self) -> Tuple[TaintSummary, List[TaintFinding]]:
        cfg = CFG.build(self.info.node)
        initial = {name: frozenset([param_token(index)])
                   for index, name in enumerate(self.info.params)}
        in_states = iterate_forward(cfg, self._transfer, _join_envs,
                                    initial)
        self._record = True
        for index, stmt in cfg.statements():
            env = dict(in_states.get(index, initial))
            self._transfer(index, stmt, env)
        self._record = False
        concrete, params = _split_labels(self.returns)
        summary = TaintSummary(returns=concrete, param_flows=params,
                               param_sinks=dict(self.param_sinks))
        return summary, sorted(self.findings,
                               key=lambda f: (f.line, f.col, f.sink))

    # -- transfer ------------------------------------------------------------

    def _transfer(self, index: int, stmt: ast.stmt,
                  env: Dict[str, Labels]) -> Dict[str, Labels]:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env) \
                | self._load(stmt.target, env)
            self._assign(stmt.target, value, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._eval(stmt.iter, env), env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                if self._record:
                    self.returns |= value
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env[stmt.name] = _EMPTY
        return env

    def _assign(self, target: ast.AST, value: Labels,
                env: Dict[str, Labels]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, env)
        elif isinstance(target, ast.Attribute):
            if self._record:
                self._check_attr_sink(target, value)
            key = self._attr_key(target)
            if key is not None:
                env[key] = value
        elif isinstance(target, ast.Subscript) \
                and isinstance(target.value, ast.Name):
            name = target.value.id
            env[name] = env.get(name, _EMPTY) | value

    def _load(self, target: ast.AST, env: Dict[str, Labels]) -> Labels:
        if isinstance(target, ast.Name):
            return env.get(target.id, _EMPTY)
        if isinstance(target, ast.Attribute):
            key = self._attr_key(target)
            if key is not None:
                return env.get(key, _EMPTY)
        return _EMPTY

    @staticmethod
    def _attr_key(attr: ast.Attribute) -> Optional[str]:
        """A stable env key for one-level attribute chains."""
        if isinstance(attr.value, ast.Name):
            return f"{attr.value.id}.{attr.attr}"
        return None

    # -- expression taint ----------------------------------------------------

    def _eval(self, node: ast.AST, env: Dict[str, Labels]) -> Labels:
        if isinstance(node, ast.Name):
            return env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            key = self._attr_key(node)
            if key is not None and key in env:
                return env[key]
            return self._eval(node.value, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, (ast.Constant, ast.Lambda)):
            return _EMPTY
        out = _EMPTY
        for child in ast.iter_child_nodes(node):
            out |= self._eval(child, env)
        return out

    def _eval_call(self, call: ast.Call, env: Dict[str, Labels]) -> Labels:
        arg_taints = [self._eval(arg, env) for arg in call.args]
        kw_taints = [(kw.arg, self._eval(kw.value, env))
                     for kw in call.keywords]
        site = self.sites.get((call.lineno, call.col_offset))
        func_taint = _EMPTY
        if not isinstance(call.func, (ast.Name, ast.Attribute)):
            func_taint = self._eval(call.func, env)
        everything = func_taint
        for taint in arg_taints:
            everything |= taint
        for _, taint in kw_taints:
            everything |= taint
        if site is None:
            return everything  # unresolvable shape: stay conservative
        self._check_call_sinks(call, site, arg_taints, kw_taints)
        if site.external is not None:
            label = catalog.source_label(site.external)
            if label is not None:
                return frozenset([label])
            return everything  # str()/round()/json.dumps() launder nothing
        if site.target is None:
            return everything
        if self.resolver.class_info(site.target) is not None:
            return _EMPTY  # a constructed object; arg sinks checked above
        summary = self.summaries.get(site.target)
        if summary is None:
            return everything
        out: Labels = frozenset(summary.returns)
        offset = 1 if site.instance_call else 0
        callee_params = self._callee_params(site.target)
        for position, taint in enumerate(arg_taints):
            index = position + offset
            if index in summary.param_flows:
                out |= taint
            self._apply_param_sink(summary, index, taint, call, site)
        for name, taint in kw_taints:
            if name is None or callee_params is None:
                if taint:
                    out |= taint  # **kwargs: conservative
                continue
            try:
                index = callee_params.index(name)
            except ValueError:
                continue
            if index in summary.param_flows:
                out |= taint
            self._apply_param_sink(summary, index, taint, call, site)
        return out

    def _callee_params(self, target: DefId) -> Optional[List[str]]:
        info = self.functions.get(target)
        return info.params if info is not None else None

    # -- sinks ---------------------------------------------------------------

    def _apply_param_sink(self, summary: TaintSummary, index: int,
                          taint: Labels, call: ast.Call,
                          site: CallSite) -> None:
        sink = summary.param_sinks.get(index)
        if sink is None or not taint:
            return
        concrete, params = _split_labels(taint)
        detail = f"via {site.text}()" if site.text else ""
        if self._record:
            for label in sorted(concrete):
                self.findings.add(TaintFinding(
                    line=call.lineno, col=call.col_offset, label=label,
                    sink=sink, detail=detail))
        for param in params:
            self.param_sinks.setdefault(param, sink)

    def _check_call_sinks(self, call: ast.Call, site: CallSite,
                          arg_taints: List[Labels],
                          kw_taints: List[Tuple[Optional[str], Labels]],
                          ) -> None:
        """Arguments to sink constructors/functions may not be tainted."""
        sink = self._sink_of(site)
        if sink is None:
            return
        for taint in arg_taints:
            self._sink_hit(call, taint, sink)
        for _, taint in kw_taints:
            self._sink_hit(call, taint, sink)

    def _sink_of(self, site: CallSite) -> Optional[str]:
        name = ""
        if site.target is not None:
            _, qualname = split_def_id(site.target)
            name = qualname.rsplit(".", 1)[-1]
        elif site.text:
            name = site.text.rsplit(".", 1)[-1]
        if name in SINK_CLASSES:
            return SINK_CLASSES[name]
        if name in SINK_FUNCTIONS:
            return SINK_FUNCTIONS[name]
        return None

    def _sink_hit(self, call: ast.Call, taint: Labels,
                  sink: str) -> None:
        if not taint:
            return
        concrete, params = _split_labels(taint)
        if self._record:
            for label in sorted(concrete):
                self.findings.add(TaintFinding(
                    line=call.lineno, col=call.col_offset,
                    label=label, sink=sink))
        for param in params:
            self.param_sinks.setdefault(param, sink)

    def _check_attr_sink(self, target: ast.Attribute,
                         value: Labels) -> None:
        """``obj.field = tainted`` where obj is a sink-class instance."""
        if not value:
            return
        cls_id = self._receiver_class(target.value)
        if cls_id is None:
            return
        _, qualname = split_def_id(cls_id)
        sink = SINK_CLASSES.get(qualname.rsplit(".", 1)[-1])
        if sink is None:
            return
        concrete, params = _split_labels(value)
        for label in sorted(concrete):
            self.findings.add(TaintFinding(
                line=target.lineno, col=target.col_offset,
                label=label, sink=sink))
        for param in params:
            self.param_sinks.setdefault(param, sink)

    def _receiver_class(self, base: ast.AST) -> Optional[DefId]:
        if isinstance(base, ast.Name):
            if base.id == "self" and self.info.class_id is not None:
                return self.info.class_id
            return self.types.get(base.id)
        if isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id == "self" \
                and self.info.class_id is not None:
            return self.resolver.attr_type(self.info.class_id, base.attr)
        return None


def _join_envs(envs: List[Dict[str, Labels]]) -> Dict[str, Labels]:
    if len(envs) == 1:
        return dict(envs[0])
    out: Dict[str, Labels] = {}
    for env in envs:
        for name, labels in env.items():
            out[name] = out.get(name, _EMPTY) | labels
    return out
