"""Incremental analysis cache keyed on file content hashes.

One JSON file holds, per module, the content hash it was analysed at
plus everything the orchestrator needs to skip re-analysis: the symbol
table, the serialised :class:`FunctionInfo` records (call sites, taint
summaries, cached SL010/SL013 findings), pool entry points, and the
module's in-tree import dependencies.

Invalidation is the reverse-dependency closure: a module is re-analysed
when its own text changed *or* any module it (transitively) imports
changed or disappeared.  Dependencies of unchanged modules are read
from the cache itself — same text means same imports, so the cached
edges are exact for them, and changed modules are already invalid.

The cache is an optimisation, never a correctness input: a missing,
unreadable, corrupt or schema-mismatched file degrades to a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from pathlib import Path
from typing import Dict, Optional, Set

#: Bump when any serialised record shape changes.
SCHEMA_VERSION = 1

#: Default cache file name, created next to the lint root.
DEFAULT_CACHE_NAME = ".simlint-cache.json"


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class AnalysisCache:
    """Load/store of per-module analysis records."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, Dict]:
        """Cached records by module name; {} when cold or unusable."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict) \
                or payload.get("schema") != SCHEMA_VERSION:
            return {}
        modules = payload.get("modules")
        return modules if isinstance(modules, dict) else {}

    def save(self, records: Dict[str, Dict]) -> None:
        """Atomic write; failure to persist is not a lint failure."""
        payload = {"schema": SCHEMA_VERSION, "modules": records}
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


def invalid_modules(hashes: Dict[str, str],
                    cached: Dict[str, Dict]) -> Set[str]:
    """Module names needing re-analysis for the current project state.

    *hashes* maps every current module to its content hash; *cached*
    is :meth:`AnalysisCache.load` output.  Returns current modules
    whose text changed, that are new, or that transitively depend on a
    changed/deleted module.
    """
    changed = {name for name, digest in hashes.items()
               if cached.get(name, {}).get("hash") != digest}
    deleted = set(cached) - set(hashes)
    reverse: Dict[str, Set[str]] = {}
    for name, record in cached.items():
        for dep in record.get("deps", []):
            reverse.setdefault(dep, set()).add(name)
    invalid: Set[str] = set(changed) | deleted
    queue = deque(invalid)
    while queue:
        module = queue.popleft()
        for dependent in reverse.get(module, ()):  # callers of module
            if dependent not in invalid:
                invalid.add(dependent)
                queue.append(dependent)
    return invalid & set(hashes)


def default_cache_path(root: Path) -> Optional[Path]:
    """Where the CLI keeps the cache for a lint rooted at *root*."""
    base = root if root.is_dir() else root.parent
    return base / DEFAULT_CACHE_NAME
