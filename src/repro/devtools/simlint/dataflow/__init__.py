"""Project-wide dataflow analysis for simlint.

PR 4's rules were per-module pattern matchers: SL001 only saw a
wall-clock read *textually inside* the core packages, SL009 only a
blocking call *directly inside* a service coroutine.  One helper one
module away escaped both.  This subpackage closes that gap with a
small, dependency-free (``ast`` only) dataflow engine layered on the
existing :class:`~repro.devtools.simlint.engine.Project` model:

``symbols``
    Per-module symbol tables and an import resolver that follows
    aliases and package re-exports to in-tree definitions, plus
    attribute-type inference (``self.journal = journal`` with an
    annotated parameter types the attribute).
``cfg``
    An intraprocedural statement-level control-flow graph with a
    reaching *must-pass* analysis (used by SL013's "a journal fsync
    dominates the 202 send") and the worklist driver the taint
    propagation runs on.
``callgraph``
    Function extraction and call-site resolution — plain calls,
    ``module.func``, ``self.method`` through in-tree classes, and
    attribute calls through inferred attribute types — folded into a
    project call graph with reachability fixed points (transitive
    blocking for SL011, transitive ``os.fsync`` for SL013).
``taint``
    A label lattice (wall-clock, ambient randomness) propagated
    through assignments, returns and cross-module calls via function
    summaries, with sink detection for SL010 (``SimStats`` fields,
    ``cell_key``/``SimCell`` inputs, ``TraceEvent`` payloads).
``cache``
    An incremental analysis cache keyed on file content hashes: a warm
    re-lint re-analyzes only changed modules and their call-graph
    dependents, loading everything else from the cached records.
``analysis``
    The orchestrator: :func:`get_analysis` memoizes one
    :class:`~repro.devtools.simlint.dataflow.analysis.ProjectAnalysis`
    per project, which every dataflow rule shares.
"""

from repro.devtools.simlint.dataflow.analysis import (ProjectAnalysis,
                                                      get_analysis)
from repro.devtools.simlint.dataflow.cache import AnalysisCache

__all__ = ["AnalysisCache", "ProjectAnalysis", "get_analysis"]
