"""Symbol tables and cross-module name resolution.

Everything here answers one question for the rest of the engine: *what
does this name refer to, project-wide?*  The answer is an in-tree
definition id — ``"repro.service.jobs:JobManager"`` for a class,
``"repro.service.jobs:JobManager.submit"`` for a function — or an
external dotted name (``"time.sleep"``) when the chain leaves the tree.

Resolution deliberately follows the two idioms this repo actually
uses:

* import aliases, including package re-exports (``from repro.service
  import JobManager`` resolves through ``repro/service/__init__.py``'s
  own ``from repro.service.jobs import JobManager``), and
* attribute types inferred from ``__init__`` bodies — ``self.journal =
  journal`` where the parameter is annotated ``journal: JobJournal``
  types the attribute, which is how ``self.manager.submit(...)``
  resolves to a method of an in-tree class.

No general type inference is attempted; an unresolvable name simply
resolves to ``None`` and the dataflow stays conservative about it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.devtools.simlint.astutil import dotted_name, import_map

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.devtools.simlint.engine import Project, SourceModule

#: ``module:qualname`` definition id (function, method or class).
DefId = str


def def_id(module: str, qualname: str) -> DefId:
    return f"{module}:{qualname}"


def split_def_id(def_: DefId) -> tuple:
    module, _, qualname = def_.partition(":")
    return module, qualname


@dataclass
class ClassInfo:
    """One in-tree class: bases, methods, inferred attribute types."""

    name: str
    module: str
    lineno: int = 0
    #: Base classes as written (resolved to in-tree ids where possible).
    bases: List[str] = field(default_factory=list)
    #: Directly defined method names.
    methods: List[str] = field(default_factory=list)
    #: ``attr -> DefId of an in-tree class`` inferred from ``__init__``.
    attr_types: Dict[str, DefId] = field(default_factory=dict)

    @property
    def id(self) -> DefId:
        return def_id(self.module, self.name)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "module": self.module,
                "lineno": self.lineno, "bases": list(self.bases),
                "methods": list(self.methods),
                "attr_types": dict(self.attr_types)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ClassInfo":
        return cls(name=payload["name"], module=payload["module"],
                   lineno=payload.get("lineno", 0),
                   bases=list(payload.get("bases", [])),
                   methods=list(payload.get("methods", [])),
                   attr_types=dict(payload.get("attr_types", {})))


#: Constructors whose module-level result is a synchronisation object.
_LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
})

#: Constructors whose module-level result is an open OS handle.
_HANDLE_CONSTRUCTORS = frozenset({
    "open", "socket", "socketpair", "TemporaryFile",
    "NamedTemporaryFile", "popen",
})

#: Constructors/displays whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
})


@dataclass
class ModuleSymbols:
    """Top-level bindings of one module, for cross-module lookup."""

    name: str
    #: Locally bound name -> qualified import target (``import_map``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Top-level function names defined here.
    functions: List[str] = field(default_factory=list)
    #: Top-level classes defined here.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level variable -> ``lock`` / ``handle`` / ``mutable`` /
    #: ``plain``, for the fork-safety analysis (SL012).
    global_kinds: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "imports": dict(self.imports),
                "functions": list(self.functions),
                "classes": {name: info.to_dict()
                            for name, info in self.classes.items()},
                "global_kinds": dict(self.global_kinds)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ModuleSymbols":
        return cls(name=payload["name"],
                   imports=dict(payload.get("imports", {})),
                   functions=list(payload.get("functions", [])),
                   classes={name: ClassInfo.from_dict(item)
                            for name, item
                            in payload.get("classes", {}).items()},
                   global_kinds=dict(payload.get("global_kinds", {})))


def classify_global(value: Optional[ast.expr]) -> str:
    """``lock`` / ``handle`` / ``mutable`` / ``plain`` for a module-level
    binding's value expression."""
    if value is None:
        return "plain"
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return "mutable"
    if isinstance(value, ast.Call):
        parts = dotted_name(value.func) or []
        tail = parts[-1] if parts else ""
        if tail in _LOCK_CONSTRUCTORS:
            return "lock"
        if tail in _HANDLE_CONSTRUCTORS:
            return "handle"
        if tail in _MUTABLE_CONSTRUCTORS:
            return "mutable"
    return "plain"


def module_symbols(module: "SourceModule",
                   project: "Project") -> ModuleSymbols:
    """Extract the top-level symbol table of *module*."""
    symbols = ModuleSymbols(name=module.name,
                            imports=import_map(module.tree))
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions.append(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            symbols.classes[stmt.name] = _class_info(
                stmt, module.name, symbols.imports)
        elif isinstance(stmt, ast.Assign):
            kind = classify_global(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    symbols.global_kinds[target.id] = kind
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            symbols.global_kinds[stmt.target.id] = \
                classify_global(stmt.value)
    return symbols


def _class_info(cls: ast.ClassDef, module_name: str,
                imports: Dict[str, str]) -> ClassInfo:
    info = ClassInfo(name=cls.name, module=module_name, lineno=cls.lineno)
    for base in cls.bases:
        parts = dotted_name(base)
        if parts:
            info.bases.append(".".join(parts))
    init: Optional[ast.FunctionDef] = None
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(stmt.name)
            if stmt.name == "__init__":
                init = stmt
    if init is not None:
        info.attr_types = _init_attr_types(init)
    return info


def _init_attr_types(init: ast.FunctionDef) -> Dict[str, str]:
    """``self.attr`` types readable straight off an ``__init__`` body.

    Two shapes are recognised: ``self.x = param`` where the parameter
    carries an annotation, and ``self.x = ClassName(...)``.  The values
    recorded here are *raw* dotted names; the resolver turns them into
    in-tree ids lazily, once every module's symbols exist.
    """
    param_annotations: Dict[str, str] = {}
    args = list(init.args.posonlyargs) + list(init.args.args) \
        + list(init.args.kwonlyargs)
    for arg in args:
        if arg.annotation is not None:
            parts = dotted_name(_unwrap_optional(arg.annotation))
            if parts:
                param_annotations[arg.arg] = ".".join(parts)
    types: Dict[str, str] = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id in param_annotations:
            types[target.attr] = param_annotations[value.id]
        elif isinstance(value, ast.Call):
            parts = dotted_name(value.func)
            if parts:
                types[target.attr] = ".".join(parts)
    return types


def _unwrap_optional(annotation: ast.AST) -> ast.AST:
    """``Optional[X]`` / ``X | None`` -> ``X`` (one level)."""
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        if base and base[-1] == "Optional":
            return annotation.slice
    if isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return side
    return annotation


class Resolver:
    """Project-wide name resolution over every module's symbols."""

    #: Re-export chains longer than this are cycles, not code.
    MAX_HOPS = 8

    def __init__(self, symbols: Dict[str, ModuleSymbols]) -> None:
        self.symbols = symbols

    # -- dotted-name resolution ---------------------------------------------

    def resolve_qualified(self, qualified: str) -> Optional[DefId]:
        """An absolute dotted name -> in-tree definition id, if any.

        ``repro.service.jobs.JobManager.submit`` splits into the longest
        module prefix present in the project plus a symbol path, and
        import aliases / package re-exports are followed (bounded).
        """
        seen = 0
        while qualified is not None and seen < self.MAX_HOPS:
            seen += 1
            module, symbol_path = self._split(qualified)
            if module is None:
                return None
            symbols = self.symbols[module]
            if not symbol_path:
                return None  # a bare module, not a definition
            head = symbol_path[0]
            if head in symbols.classes:
                if len(symbol_path) == 1:
                    return def_id(module, head)
                if len(symbol_path) == 2 \
                        and symbol_path[1] in symbols.classes[head].methods:
                    return def_id(module, f"{head}.{symbol_path[1]}")
                return None
            if head in symbols.functions and len(symbol_path) == 1:
                return def_id(module, head)
            if head in symbols.imports:
                # A re-export: follow the alias with the tail appended.
                qualified = ".".join([symbols.imports[head]]
                                     + symbol_path[1:])
                continue
            return None
        return None

    def resolve_in_module(self, module_name: str,
                          dotted: List[str]) -> Optional[DefId]:
        """A dotted reference *as written in module_name* -> definition.

        The head is looked up first among the module's own top-level
        definitions, then through its imports.
        """
        symbols = self.symbols.get(module_name)
        if symbols is None or not dotted:
            return None
        head = dotted[0]
        if head in symbols.functions and len(dotted) == 1:
            return def_id(module_name, head)
        if head in symbols.classes:
            if len(dotted) == 1:
                return def_id(module_name, head)
            if len(dotted) == 2 \
                    and dotted[1] in symbols.classes[head].methods:
                return def_id(module_name, f"{head}.{dotted[1]}")
            return None
        if head in symbols.imports:
            return self.resolve_qualified(
                ".".join([symbols.imports[head]] + dotted[1:]))
        return None

    def resolve_class(self, module_name: str,
                      dotted_or_raw: str) -> Optional[ClassInfo]:
        """A class reference (raw dotted text) -> its :class:`ClassInfo`."""
        resolved = self.resolve_in_module(module_name,
                                          dotted_or_raw.split("."))
        if resolved is None:
            return None
        return self.class_info(resolved)

    # -- class helpers ------------------------------------------------------

    def class_info(self, class_id: DefId) -> Optional[ClassInfo]:
        module, qualname = split_def_id(class_id)
        symbols = self.symbols.get(module)
        if symbols is None:
            return None
        return symbols.classes.get(qualname)

    def resolve_method(self, class_id: DefId,
                       method: str) -> Optional[DefId]:
        """``class_id.method`` with a single-inheritance MRO walk."""
        seen = 0
        current: Optional[DefId] = class_id
        while current is not None and seen < self.MAX_HOPS:
            seen += 1
            info = self.class_info(current)
            if info is None:
                return None
            if method in info.methods:
                return def_id(info.module, f"{info.name}.{method}")
            current = None
            for base in info.bases:
                resolved = self.resolve_in_module(info.module,
                                                  base.split("."))
                if resolved is not None and self.class_info(resolved):
                    current = resolved
                    break
        return None

    def attr_type(self, class_id: DefId, attr: str) -> Optional[DefId]:
        """Inferred in-tree type of ``<class_id instance>.attr``."""
        info = self.class_info(class_id)
        if info is None:
            return None
        raw = info.attr_types.get(attr)
        if raw is None:
            return None
        resolved = self.resolve_in_module(info.module, raw.split("."))
        if resolved is not None and self.class_info(resolved) is not None:
            return resolved
        return None

    # -- internals ----------------------------------------------------------

    def _split(self, qualified: str) -> tuple:
        """Longest in-project module prefix + remaining symbol path."""
        parts = qualified.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.symbols:
                return module, parts[cut:]
        return None, []


def build_symbols(project: "Project") -> Dict[str, ModuleSymbols]:
    """Symbol tables for every module in *project*."""
    return {module.name: module_symbols(module, project)
            for module in project.modules}
