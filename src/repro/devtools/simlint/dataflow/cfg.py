"""Intraprocedural control-flow graph over function statements.

One :class:`CFG` node per simple statement (statement-level granularity
is plenty at lint scale and keeps dominance arguments readable).
Compound statements contribute their headers as nodes and their bodies
as subgraphs; ``try`` bodies additionally get conservative exception
edges — *every* statement inside a ``try`` may jump to every handler,
and the jump happens *before* the statement's effect, which is exactly
the pessimism a must-pass analysis needs.

Two consumers:

* :func:`must_pass` — the forward "all paths from entry pass through a
  marked statement first" analysis behind SL013 (a journal fsync must
  dominate the 202 send on every path), and
* :func:`iterate_forward` — a generic worklist driver the taint
  propagation uses with its own transfer function and join.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

#: Virtual node ids for function entry/exit.
ENTRY = -1
EXIT = -2


@dataclass
class Node:
    """One statement in the CFG."""

    index: int
    stmt: ast.stmt
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)


class CFG:
    """Statement-level CFG of one function body."""

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}
        self._entry_succs: Set[int] = set()

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, func: ast.FunctionDef) -> "CFG":
        cfg = cls()
        builder = _Builder(cfg)
        tails = builder.block(func.body, frozenset([ENTRY]))
        builder.connect(tails, EXIT)
        return cfg

    def add(self, stmt: ast.stmt) -> int:
        index = len(self.nodes)
        self.nodes[index] = Node(index=index, stmt=stmt)
        return index

    def edge(self, src: int, dst: int) -> None:
        if src == ENTRY:
            if dst >= 0:
                self._entry_succs.add(dst)
            return
        if src < 0 or dst == EXIT:
            return
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)

    @property
    def entry_succs(self) -> Set[int]:
        return set(self._entry_succs)

    def statements(self) -> Iterable[Tuple[int, ast.stmt]]:
        for index, node in self.nodes.items():
            yield index, node.stmt


class _Builder:
    """Recursive-descent CFG construction.

    ``block`` threads a frozenset of *dangling* predecessor ids through
    the statement list and returns the tails that fall off the end.
    ``break``/``continue``/``return``/``raise`` terminate their path
    (break/continue edges resolve against the innermost loop).
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._loop_stack: List[Dict[str, object]] = []
        #: Handler entry nodes of the innermost enclosing ``try``
        #: blocks; every statement inside gets edges to them.
        self._handler_stack: List[List[int]] = []

    def connect(self, sources: Iterable[int], target: int) -> None:
        for src in sources:
            self.cfg.edge(src, target)

    def block(self, body: List[ast.stmt],
              preds: frozenset) -> frozenset:
        current = preds
        for stmt in body:
            if not current:
                break  # unreachable code after return/raise/break
            current = self.statement(stmt, current)
        return current

    def statement(self, stmt: ast.stmt,
                  preds: frozenset) -> frozenset:
        node = self.cfg.add(stmt)
        self.connect(preds, node)
        # Conservative exception edges: control may leave for a handler
        # before this statement's effect lands.
        for handlers in self._handler_stack:
            for handler in handlers:
                self.cfg.edge(node, handler)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return frozenset([node])  # a definition, not control flow
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return frozenset()
        if isinstance(stmt, ast.Break):
            frame = self._innermost_loop()
            if frame is not None:
                frame["breaks"].append(node)  # type: ignore[union-attr]
            return frozenset()
        if isinstance(stmt, ast.Continue):
            frame = self._innermost_loop()
            if frame is not None:
                self.cfg.edge(node, frame["head"])  # type: ignore[arg-type]
            return frozenset()
        if isinstance(stmt, ast.If):
            then_tails = self.block(stmt.body, frozenset([node]))
            else_tails = self.block(stmt.orelse, frozenset([node])) \
                if stmt.orelse else frozenset([node])
            return then_tails | else_tails
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, node)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, node)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.block(stmt.body, frozenset([node]))
        if isinstance(stmt, ast.Match):
            tails: frozenset = frozenset()
            exhaustive = False
            for case in stmt.cases:
                tails |= self.block(case.body, frozenset([node]))
                if isinstance(case.pattern, ast.MatchAs) \
                        and case.pattern.pattern is None:
                    exhaustive = True  # a bare wildcard arm
            if not exhaustive:
                tails |= frozenset([node])
            return tails
        return frozenset([node])

    def _loop(self, stmt: ast.stmt, head: int) -> frozenset:
        frame: Dict[str, object] = {"head": head, "breaks": []}
        self._loop_stack.append(frame)
        body_tails = self.block(
            stmt.body, frozenset([head]))  # type: ignore[attr-defined]
        self._loop_stack.pop()
        self.connect(body_tails, head)  # back edge
        exits = frozenset([head]) | frozenset(frame["breaks"])
        orelse = getattr(stmt, "orelse", None)
        if orelse:
            else_tails = self.block(orelse, frozenset([head]))
            exits = frozenset(frame["breaks"]) | else_tails
        return exits

    def _try(self, stmt: ast.Try, head: int) -> frozenset:
        handler_heads: List[int] = []
        handler_tails: frozenset = frozenset()
        # Materialise handler entry nodes first so body statements can
        # point at them; a handler body is a block of its own.
        pending: List[Tuple[ast.ExceptHandler, int]] = []
        for handler in stmt.handlers:
            entry = self.cfg.add(handler)
            handler_heads.append(entry)
            pending.append((handler, entry))
        self._handler_stack.append(handler_heads)
        body_tails = self.block(stmt.body, frozenset([head]))
        self._handler_stack.pop()
        # The head itself may raise (e.g. the `try` line's context); be
        # conservative and let it reach the handlers too.
        for entry in handler_heads:
            self.cfg.edge(head, entry)
        for handler, entry in pending:
            handler_tails |= self.block(handler.body, frozenset([entry]))
        else_tails = self.block(stmt.orelse, body_tails) \
            if stmt.orelse else body_tails
        merged = else_tails | handler_tails
        if stmt.finalbody:
            return self.block(stmt.finalbody, merged or frozenset([head]))
        return merged

    def _innermost_loop(self) -> Optional[Dict[str, object]]:
        return self._loop_stack[-1] if self._loop_stack else None


def must_pass(cfg: CFG, marked: Set[int]) -> Dict[int, bool]:
    """For each node: do *all* entry paths pass a marked node first?

    Forward must-analysis with intersection at joins.  A marked node
    protects its successors, not itself — the mark lands *after* the
    statement executes, matching "the fsync happened before the send".
    Entry starts unprotected; conservative exception edges out of a
    ``try`` body carry the pre-statement state automatically because
    protection is only added on the *out* state of a marked node.
    """
    protected_in: Dict[int, bool] = {index: True for index in cfg.nodes}
    entry_succs = cfg.entry_succs
    changed = True
    while changed:
        changed = False
        for index in sorted(cfg.nodes):
            node = cfg.nodes[index]
            incoming: List[bool] = []
            if index in entry_succs:
                incoming.append(False)  # the raw path from entry
            for pred in node.preds:
                incoming.append(protected_in[pred] or pred in marked)
            # A node with no incoming edges at all is unreachable;
            # vacuously protected (nothing flows through it).
            new_in = all(incoming) if incoming else True
            if new_in != protected_in[index]:
                protected_in[index] = new_in
                changed = True
    return protected_in


def iterate_forward(cfg: CFG,
                    transfer: Callable[[int, ast.stmt, dict], dict],
                    join: Callable[[List[dict]], dict],
                    initial: dict,
                    max_rounds: int = 50) -> Dict[int, dict]:
    """Generic forward worklist analysis; returns each node's IN state.

    ``transfer(index, stmt, state)`` must return a *new* state dict;
    ``join`` merges predecessor OUT states.  Convergence is bounded by
    ``max_rounds`` sweeps — taint lattices here are tiny finite sets,
    so the bound is a backstop, not a tuning knob.
    """
    in_states: Dict[int, dict] = {}
    out_states: Dict[int, dict] = {}
    order = sorted(cfg.nodes)
    entry_succs = cfg.entry_succs
    for _ in range(max_rounds):
        changed = False
        for index in order:
            node = cfg.nodes[index]
            incoming = [out_states[pred] for pred in node.preds
                        if pred in out_states]
            if index in entry_succs or not node.preds:
                incoming.append(initial)
            state = join(incoming) if incoming else dict(initial)
            if in_states.get(index) != state:
                in_states[index] = state
                changed = True
            out = transfer(index, node.stmt, dict(state))
            if out_states.get(index) != out:
                out_states[index] = out
                changed = True
        if not changed:
            break
    return in_states
