"""Canonical catalogues of nondeterminism sources and blocking calls.

These sets used to live inline in the SL001/SL009 rule modules; the
dataflow engine needs them too (taint sources, transitive-blocking
targets), and rules import from *here* so the engine never has to
import a rule module (which would cycle through the registry).

Labels are the taint lattice's alphabet: a value is tainted by the set
of labels of the sources it (transitively) came from.
"""

from __future__ import annotations

#: Taint labels.
WALLCLOCK = "wall-clock"
RANDOM = "randomness"

#: Exact qualified callables whose *return value* is a wall-clock read.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Exact qualified callables whose return value is ambient entropy.
RANDOM_CALLS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: Prefixes banned wholesale as entropy: module-level ``random.*``
#: draws from the shared unseeded generator, and everything in
#: ``secrets`` is entropy by definition.
RANDOM_PREFIXES = ("random.", "secrets.")

#: The allowed exceptions under the random prefixes (seeded generators
#: are the sanctioned pattern).
RANDOM_ALLOWED = frozenset({"random.Random"})


def source_label(qualified: str) -> str | None:
    """The taint label *qualified* produces, or None if untainted."""
    if qualified in WALLCLOCK_CALLS:
        return WALLCLOCK
    if qualified in RANDOM_CALLS:
        return RANDOM
    if qualified in RANDOM_ALLOWED:
        return None
    if qualified.startswith(RANDOM_PREFIXES):
        return RANDOM
    return None


#: Exact qualified calls that block the calling thread (SL009/SL011).
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "urllib.request.urlopen",
})

#: Qualified-name prefixes whose every call is a blocking primitive.
BLOCKING_PREFIXES = (
    "subprocess.",
    "socket.",
    "http.client.",
)


def is_blocking(qualified: str) -> bool:
    return qualified in BLOCKING_CALLS \
        or qualified.startswith(BLOCKING_PREFIXES)


#: Modules whose functions block *by design* and are exempt from the
#: transitive-blocking walk (SL011): fault injection exists to stall
#: the pipeline on purpose, guarded by its own enable flag.
BLOCKING_EXEMPT_MODULES = frozenset({
    "repro.experiments.faults",
})
