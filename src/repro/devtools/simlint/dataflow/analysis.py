"""The dataflow orchestrator: one shared analysis per lint run.

:func:`get_analysis` memoizes one :class:`ProjectAnalysis` per
:class:`~repro.devtools.simlint.engine.Project` instance, so the four
dataflow rules (SL010-SL013) share a single pass.  The analysis runs
in phases:

1. **Symbols** — per-module symbol tables (from the incremental cache
   for unchanged modules, freshly extracted otherwise) and the
   project-wide :class:`Resolver`.
2. **Extraction** — :class:`FunctionInfo` records with resolved call
   sites, again cache-or-fresh.  ``reanalyzed`` records exactly which
   modules went through fresh extraction — the incremental tests
   assert on it.
3. **Reachability** — two call-graph fixed points over *all* records:
   transitive blocking (SL011) with per-function witness chains, and
   transitive ``os.fsync`` (feeds SL013's journal detection).
4. **Taint** — the interprocedural summary fixed point, then one
   recording pass per fresh function collecting SL010 findings.
5. **Ack ordering** — per fresh function, the CFG must-pass check that
   a journalling call dominates every 202 send (SL013 findings).
6. **Persist** — updated records written back through the cache.

Findings computed here are stored on the records (and therefore
cached); the rule classes only translate them into engine findings.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.devtools.simlint.dataflow import catalog
from repro.devtools.simlint.dataflow.cache import (AnalysisCache,
                                                   content_hash,
                                                   invalid_modules)
from repro.devtools.simlint.dataflow.callgraph import (FunctionExtractor,
                                                       FunctionInfo,
                                                       PoolEntry,
                                                       local_types)
from repro.devtools.simlint.dataflow.cfg import CFG, must_pass
from repro.devtools.simlint.dataflow.symbols import (DefId, ModuleSymbols,
                                                     Resolver, module_symbols,
                                                     split_def_id)
from repro.devtools.simlint.dataflow.taint import (TaintFinding,
                                                   TaintSummary,
                                                   analyze_function)
from repro.devtools.simlint.astutil import dotted_name

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.devtools.simlint.engine import Project


@dataclass
class BlockingChain:
    """Witness for "this function transitively blocks"."""

    #: The blocking primitive at the end of the chain (``time.sleep``).
    primitive: str
    #: Line *inside this function* where the chain starts (the direct
    #: blocking call, or the call into the blocking callee).
    line: int
    col: int
    #: Next hop, None when the primitive is called directly.
    callee: Optional[DefId] = None


class ProjectAnalysis:
    """All dataflow facts for one project, computed once."""

    def __init__(self, project: "Project",
                 cache: Optional[AnalysisCache] = None) -> None:
        self.project = project
        self._cache = cache
        cached = cache.load() if cache is not None else {}
        self._hashes = {module.name: content_hash(module.text)
                        for module in project.modules}
        #: Module names re-extracted this run (changed + dependents).
        self.reanalyzed: Set[str] = invalid_modules(self._hashes, cached)

        self.symbols: Dict[str, ModuleSymbols] = {}
        self.functions_by_module: Dict[str, List[FunctionInfo]] = {}
        self.pool_entries: List[Tuple[str, PoolEntry]] = []
        self._pool_by_module: Dict[str, List[PoolEntry]] = {}
        self._load_symbols(cached)
        self.resolver = Resolver(self.symbols)
        self._load_functions(cached)
        self.functions: Dict[DefId, FunctionInfo] = {
            info.id: info
            for infos in self.functions_by_module.values()
            for info in infos}

        self._rcallers = self._reverse_calls()
        self.blocking_chain: Dict[DefId, BlockingChain] = {}
        self._compute_blocking_reach()
        self.journal_reach: Set[DefId] = self._compute_journal_reach()
        self._compute_taint()
        self._compute_ack()
        self._persist()

    # -- phase 1/2: symbols and functions ------------------------------------

    def _load_symbols(self, cached: Dict[str, Dict]) -> None:
        for module in self.project.modules:
            record = cached.get(module.name)
            if module.name not in self.reanalyzed and record is not None:
                self.symbols[module.name] = ModuleSymbols.from_dict(
                    record["symbols"])
            else:
                self.symbols[module.name] = module_symbols(
                    module, self.project)

    def _load_functions(self, cached: Dict[str, Dict]) -> None:
        for module in self.project.modules:
            record = cached.get(module.name)
            if module.name not in self.reanalyzed and record is not None:
                infos = [FunctionInfo.from_dict(item)
                         for item in record.get("functions", [])]
                pools = [PoolEntry.from_dict(item)
                         for item in record.get("pool_entries", [])]
            else:
                extractor = FunctionExtractor(
                    module, self.symbols[module.name], self.resolver)
                infos, pools = extractor.extract()
            self.functions_by_module[module.name] = infos
            self._pool_by_module[module.name] = pools
            self.pool_entries.extend(
                (module.name, entry) for entry in pools)

    # -- phase 3: call-graph reachability ------------------------------------

    def _reverse_calls(self) -> Dict[DefId, List[Tuple[DefId, int, int]]]:
        reverse: Dict[DefId, List[Tuple[DefId, int, int]]] = {}
        for fid, info in self.functions.items():
            for site in info.calls:
                if site.target is not None:
                    reverse.setdefault(site.target, []).append(
                        (fid, site.line, site.col))
        return reverse

    def _compute_blocking_reach(self) -> None:
        queue: deque = deque()
        for fid, info in self.functions.items():
            if info.module in catalog.BLOCKING_EXEMPT_MODULES:
                continue
            if info.blocking:
                line, col, qualified = min(info.blocking)
                self.blocking_chain[fid] = BlockingChain(
                    primitive=qualified, line=line, col=col)
                queue.append(fid)
        while queue:
            fid = queue.popleft()
            chain = self.blocking_chain[fid]
            for caller, line, col in self._rcallers.get(fid, ()):
                if caller in self.blocking_chain:
                    continue
                if self.functions[caller].module \
                        in catalog.BLOCKING_EXEMPT_MODULES:
                    continue
                self.blocking_chain[caller] = BlockingChain(
                    primitive=chain.primitive, line=line, col=col,
                    callee=fid)
                queue.append(caller)

    def blocking_path(self, fid: DefId) -> List[str]:
        """Human-readable witness: callee hops ending at the primitive."""
        path: List[str] = []
        seen: Set[DefId] = set()
        current: Optional[DefId] = fid
        while current is not None and current not in seen:
            seen.add(current)
            chain = self.blocking_chain.get(current)
            if chain is None:
                break
            if chain.callee is None:
                path.append(chain.primitive)
                break
            module, qualname = split_def_id(chain.callee)
            path.append(f"{module}.{qualname}")
            current = chain.callee
        return path

    def _compute_journal_reach(self) -> Set[DefId]:
        reach: Set[DefId] = set()
        queue: deque = deque()
        for fid, info in self.functions.items():
            for site in info.calls:
                if site.external == "os.fsync":
                    reach.add(fid)
                    queue.append(fid)
                    break
        while queue:
            fid = queue.popleft()
            for caller, _, _ in self._rcallers.get(fid, ()):
                if caller not in reach:
                    reach.add(caller)
                    queue.append(caller)
        return reach

    # -- phase 4: taint ------------------------------------------------------

    def _compute_taint(self) -> None:
        summaries: Dict[DefId, TaintSummary] = {}
        fresh: List[DefId] = []
        for fid, info in self.functions.items():
            if info.node is None:
                summaries[fid] = TaintSummary.from_dict(info.summary)
            else:
                summaries[fid] = TaintSummary()
                fresh.append(fid)
        types: Dict[DefId, Dict[str, DefId]] = {
            fid: local_types(self.functions[fid].node,
                             self.functions[fid].module,
                             self.functions[fid].class_id,
                             self.resolver)
            for fid in fresh}
        # Direct sources seed the first round implicitly (analyze reads
        # them off the AST); iterate to the interprocedural fixed point.
        fresh_set = set(fresh)
        queue: deque = deque(fresh)
        queued = set(fresh)
        rounds = 0
        limit = max(64, 8 * len(fresh) or 64)
        while queue and rounds < limit * 4:
            rounds += 1
            fid = queue.popleft()
            queued.discard(fid)
            info = self.functions[fid]
            summary, _ = analyze_function(info, self.resolver,
                                          types[fid], summaries,
                                          self.functions)
            if summaries[fid].merge(summary):
                for caller, _, _ in self._rcallers.get(fid, ()):
                    if caller in fresh_set and caller not in queued:
                        queue.append(caller)
                        queued.add(caller)
        for fid in fresh:
            info = self.functions[fid]
            info.summary = summaries[fid].to_dict()
            _, findings = analyze_function(info, self.resolver,
                                           types[fid], summaries,
                                           self.functions)
            info.taint_findings = [item.to_dict() for item in findings]
        self.summaries = summaries

    def taint_findings(self, module_name: str
                       ) -> Iterator[Tuple[FunctionInfo, TaintFinding]]:
        for info in self.functions_by_module.get(module_name, []):
            for payload in info.taint_findings:
                yield info, TaintFinding.from_dict(payload)

    # -- phase 5: ack-implies-journal (SL013) --------------------------------

    def _compute_ack(self) -> None:
        for module_name in self.reanalyzed:
            for info in self.functions_by_module.get(module_name, []):
                if info.node is not None:
                    info.ack_findings = self._ack_findings(info)

    def _ack_findings(self, info: FunctionInfo) -> List[Dict]:
        sites = {(site.line, site.col): site for site in info.calls}
        cfg = CFG.build(info.node)
        marked: Set[int] = set()
        sends: Dict[int, Tuple[int, int, str]] = {}
        for index, stmt in cfg.statements():
            journals = False
            send: Optional[Tuple[int, int, str]] = None
            for node in _own_exprs(stmt):
                if isinstance(node, ast.Call):
                    site = sites.get((node.lineno, node.col_offset))
                    if self._call_journals(site):
                        journals = True
                    hit = self._send_202(node, site)
                    if hit is not None:
                        send = hit
            if isinstance(stmt, ast.Return) \
                    and _returns_202(stmt.value):
                send = (stmt.lineno, stmt.col_offset,
                        "returning a 202 response")
            if journals:
                marked.add(index)
            elif send is not None:
                sends[index] = send
        if not sends:
            return []
        protected = must_pass(cfg, marked)
        return [{"line": line, "col": col, "what": what}
                for index, (line, col, what) in sorted(sends.items())
                if not protected.get(index, False)]

    def _call_journals(self, site) -> bool:
        if site is None:
            return False
        if site.external == "os.fsync":
            return True
        if site.target is not None and site.target in self.journal_reach:
            return True
        # Lexical fallback: any ``*.journal*.method(...)`` call counts
        # as journalling even when the receiver could not be typed —
        # conservative in the quiet direction for an ordering check.
        parts = site.text.split(".") if site.text else []
        return any("journal" in part for part in parts[:-1])

    @staticmethod
    def _send_202(call: ast.Call, site) -> Optional[Tuple[int, int, str]]:
        tail = ""
        if site is not None and site.text:
            tail = site.text.rsplit(".", 1)[-1]
        else:
            parts = dotted_name(call.func)
            tail = parts[-1] if parts else ""
        if "send" not in tail.lower():
            return None
        has_202 = any(isinstance(arg, ast.Constant) and arg.value == 202
                      for arg in call.args)
        has_202 = has_202 or any(
            isinstance(kw.value, ast.Constant) and kw.value.value == 202
            for kw in call.keywords)
        if not has_202:
            return None
        return (call.lineno, call.col_offset, f"{tail}(202, ...)")

    def ack_findings(self, module_name: str
                     ) -> Iterator[Tuple[FunctionInfo, Dict]]:
        for info in self.functions_by_module.get(module_name, []):
            for payload in info.ack_findings:
                yield info, payload

    # -- phase 6: persistence ------------------------------------------------

    def _persist(self) -> None:
        if self._cache is None:
            return
        records: Dict[str, Dict] = {}
        for module in self.project.modules:
            name = module.name
            records[name] = {
                "hash": self._hashes[name],
                "deps": sorted(self._module_deps(name)),
                "symbols": self.symbols[name].to_dict(),
                "functions": [info.to_dict()
                              for info in self.functions_by_module[name]],
                "pool_entries": [entry.to_dict()
                                 for entry in self._pool_by_module[name]],
            }
        self._cache.save(records)

    def _module_deps(self, name: str) -> Set[str]:
        """In-tree modules whose change must invalidate *name*."""
        deps: Set[str] = set()
        for qualified in self.symbols[name].imports.values():
            module, _ = self.resolver._split(qualified)
            if module is not None and module != name:
                deps.add(module)
        return deps


def _own_exprs(stmt: ast.AST) -> Iterator[ast.AST]:
    """Expressions belonging to *stmt* itself, not its sub-statements.

    CFG nodes for compound statements represent only the header; their
    bodies are separate nodes, so scanning the full subtree here would
    double-count (a journal call inside an ``if`` body would mark the
    ``if`` header).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        roots: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(stmt, ast.ExceptHandler):
        roots = [stmt.type] if stmt.type is not None else []
    elif isinstance(stmt, ast.Match):
        roots = [stmt.subject]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        roots = []
    else:
        roots = [stmt]
    for root in roots:
        stack: List[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


def _returns_202(value: Optional[ast.expr]) -> bool:
    return (isinstance(value, ast.Tuple) and bool(value.elts)
            and isinstance(value.elts[0], ast.Constant)
            and value.elts[0].value == 202)


#: One analysis per project instance; keyed by identity because a
#: Project is immutable for the duration of a run.
_MEMO: Dict[int, ProjectAnalysis] = {}


def get_analysis(project: "Project") -> ProjectAnalysis:
    """The shared analysis for *project*, computing it on first use.

    The incremental cache is picked up from ``project.analysis_cache``
    (an :class:`AnalysisCache` the CLI attaches); library callers that
    never attach one get a plain uncached run.
    """
    existing = _MEMO.get(id(project))
    if existing is not None and existing.project is project:
        return existing
    cache = getattr(project, "analysis_cache", None)
    analysis = ProjectAnalysis(project, cache=cache)
    _MEMO.clear()
    _MEMO[id(project)] = analysis
    return analysis
