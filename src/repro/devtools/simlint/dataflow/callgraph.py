"""Function extraction, call-site resolution and the project call graph.

Every function and method in the project (nested defs included) becomes
one serialisable :class:`FunctionInfo` holding exactly what the global
phases need: resolved call sites, direct blocking/source calls, uses of
module-level state, and (filled in later by the taint phase) a
:class:`~repro.devtools.simlint.dataflow.taint.TaintSummary`.

Call resolution covers the shapes this repo writes:

* ``helper()`` — same-module functions and imported names,
* ``mod.func()`` / ``mod.Class(...)`` — through the import map,
* ``self.method()`` — method resolution on the enclosing in-tree class
  (single-inheritance MRO walk),
* ``self.attr.method()`` / ``var.method()`` — through attribute types
  inferred from ``__init__`` and local ``var = ClassName(...)`` /
  annotated-parameter types.

Anything else resolves to ``None`` and the analyses stay conservative.
Calls *inside nested plain defs* belong to the nested function's own
info, never the parent's — a nested ``def`` is the sanctioned
``run_in_executor`` idiom and must not leak its callees into the
enclosing coroutine's call edges (SL009's contract, kept project-wide).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.devtools.simlint.dataflow import catalog
from repro.devtools.simlint.dataflow.symbols import (DefId, ModuleSymbols,
                                                     Resolver, def_id)
from repro.devtools.simlint.astutil import dotted_name

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.devtools.simlint.engine import SourceModule

#: Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})

#: Pool dispatch methods whose first positional argument is a worker
#: entry point.
POOL_DISPATCH = frozenset({
    "apply_async", "apply", "map", "map_async", "imap",
    "imap_unordered", "starmap", "starmap_async", "submit",
})


@dataclass
class CallSite:
    """One call expression, as resolved as we could make it."""

    line: int
    col: int
    #: In-tree definition id of the callee (function, method or class).
    target: Optional[DefId] = None
    #: External qualified name (``time.sleep``) when the chain leaves
    #: the tree; None when unresolvable either way.
    external: Optional[str] = None
    #: The call as written, for messages (``self.manager.submit``).
    text: str = ""
    #: True for ``obj.method(...)`` where the receiver is an instance —
    #: the callee's ``self`` occupies parameter index 0.
    instance_call: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col, "target": self.target,
                "external": self.external, "text": self.text,
                "instance_call": self.instance_call}

    @classmethod
    def from_dict(cls, payload: Dict) -> "CallSite":
        return cls(line=payload["line"], col=payload["col"],
                   target=payload.get("target"),
                   external=payload.get("external"),
                   text=payload.get("text", ""),
                   instance_call=payload.get("instance_call", False))


@dataclass
class GlobalUse:
    """One use of module-level state from inside a function."""

    module: str        # module owning the global
    name: str          # the global's name
    line: int
    col: int
    store: bool = False      # rebound via ``global`` + assignment
    mutate: bool = False     # mutated in place (append/update/[k]=...)

    def to_dict(self) -> Dict[str, object]:
        return {"module": self.module, "name": self.name,
                "line": self.line, "col": self.col,
                "store": self.store, "mutate": self.mutate}

    @classmethod
    def from_dict(cls, payload: Dict) -> "GlobalUse":
        return cls(module=payload["module"], name=payload["name"],
                   line=payload["line"], col=payload["col"],
                   store=payload.get("store", False),
                   mutate=payload.get("mutate", False))


@dataclass
class PoolEntry:
    """A function handed to a worker pool as an entry point."""

    target: DefId
    line: int
    via: str            # "initializer", "dispatch", "process-target"

    def to_dict(self) -> Dict[str, object]:
        return {"target": self.target, "line": self.line, "via": self.via}

    @classmethod
    def from_dict(cls, payload: Dict) -> "PoolEntry":
        return cls(target=payload["target"], line=payload["line"],
                   via=payload["via"])


@dataclass
class FunctionInfo:
    """Everything the global phases know about one function."""

    module: str
    qualname: str
    lineno: int
    end_lineno: int
    col: int
    is_async: bool = False
    is_nested: bool = False
    #: Enclosing class id for methods, else None.
    class_id: Optional[DefId] = None
    params: List[str] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: Direct blocking-primitive calls: (line, col, qualified).
    blocking: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Direct taint-source calls: (line, col, qualified, label).
    sources: List[Tuple[int, int, str, str]] = field(default_factory=list)
    global_uses: List[GlobalUse] = field(default_factory=list)
    #: Filled by the taint phase (serialised summary dict).
    summary: Optional[Dict] = None
    #: SL010 findings discovered inside this function (dicts).
    taint_findings: List[Dict] = field(default_factory=list)
    #: SL013 findings discovered inside this function (dicts).
    ack_findings: List[Dict] = field(default_factory=list)
    #: The AST node — only present for freshly analysed modules.
    node: Optional[ast.AST] = field(default=None, repr=False, compare=False)

    @property
    def id(self) -> DefId:
        return def_id(self.module, self.qualname)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module, "qualname": self.qualname,
            "lineno": self.lineno, "end_lineno": self.end_lineno,
            "col": self.col, "is_async": self.is_async,
            "is_nested": self.is_nested, "class_id": self.class_id,
            "params": list(self.params),
            "calls": [call.to_dict() for call in self.calls],
            "blocking": [list(item) for item in self.blocking],
            "sources": [list(item) for item in self.sources],
            "global_uses": [use.to_dict() for use in self.global_uses],
            "summary": self.summary,
            "taint_findings": list(self.taint_findings),
            "ack_findings": list(self.ack_findings),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FunctionInfo":
        return cls(
            module=payload["module"], qualname=payload["qualname"],
            lineno=payload["lineno"], end_lineno=payload["end_lineno"],
            col=payload["col"], is_async=payload.get("is_async", False),
            is_nested=payload.get("is_nested", False),
            class_id=payload.get("class_id"),
            params=list(payload.get("params", [])),
            calls=[CallSite.from_dict(item)
                   for item in payload.get("calls", [])],
            blocking=[tuple(item) for item in payload.get("blocking", [])],
            sources=[tuple(item) for item in payload.get("sources", [])],
            global_uses=[GlobalUse.from_dict(item)
                         for item in payload.get("global_uses", [])],
            summary=payload.get("summary"),
            taint_findings=list(payload.get("taint_findings", [])),
            ack_findings=list(payload.get("ack_findings", [])),
        )


def own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk *func*'s body without descending into nested defs/lambdas.

    A nested ``def`` statement itself *is* yielded (it belongs to the
    parent's scope — the parent binds the name), but its body is not.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class FunctionExtractor:
    """Builds :class:`FunctionInfo` records for one module."""

    def __init__(self, module: "SourceModule", symbols: ModuleSymbols,
                 resolver: Resolver) -> None:
        self.module = module
        self.symbols = symbols
        self.resolver = resolver
        self.functions: List[FunctionInfo] = []
        self.pool_entries: List[PoolEntry] = []

    def extract(self) -> Tuple[List[FunctionInfo], List[PoolEntry]]:
        self._walk_body(self.module.tree.body, prefix="", class_id=None,
                        nested=False)
        # Module-level pool registrations (rare but legal).
        self._collect_pool_entries(self.module.tree, module_level=True)
        return self.functions, self.pool_entries

    # -- traversal ----------------------------------------------------------

    def _walk_body(self, body: List[ast.stmt], prefix: str,
                   class_id: Optional[DefId], nested: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, prefix, class_id, nested)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}{stmt.name}"
                cid = def_id(self.module.name, qual) if not nested else None
                self._walk_body(stmt.body, prefix=f"{qual}.",
                                class_id=cid, nested=nested)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                # Conditionally defined functions still exist.
                sub: List[ast.stmt] = list(getattr(stmt, "body", []))
                sub += list(getattr(stmt, "orelse", []))
                sub += list(getattr(stmt, "finalbody", []))
                for handler in getattr(stmt, "handlers", []):
                    sub += list(handler.body)
                self._walk_body(sub, prefix, class_id, nested)

    def _function(self, func: ast.AST, prefix: str,
                  class_id: Optional[DefId], nested: bool) -> None:
        qualname = f"{prefix}{func.name}"
        info = FunctionInfo(
            module=self.module.name, qualname=qualname,
            lineno=func.lineno,
            end_lineno=getattr(func, "end_lineno", func.lineno),
            col=func.col_offset,
            is_async=isinstance(func, ast.AsyncFunctionDef),
            is_nested=nested, class_id=class_id,
            params=[arg.arg for arg in _all_args(func.args)],
            node=func,
        )
        types = local_types(func, self.module.name, class_id,
                            self.resolver)
        scope = _FunctionScope(func)
        own = list(own_statements(func))
        nested_names = {
            node.name for node in own
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
        globals_seen: Set[Tuple[str, str, int, int, bool, bool]] = set()
        for node in own:
            if isinstance(node, ast.Call):
                site = self.resolve_call(node, class_id, types,
                                         parent_qual=qualname,
                                         nested=nested_names)
                info.calls.append(site)
                if site.external is not None:
                    if catalog.is_blocking(site.external):
                        info.blocking.append(
                            (node.lineno, node.col_offset, site.external))
                    label = catalog.source_label(site.external)
                    if label is not None:
                        info.sources.append((node.lineno, node.col_offset,
                                             site.external, label))
                self._collect_pool_entry(node)
            self._collect_global_use(scope, node, globals_seen)
        info.global_uses = [
            GlobalUse(module=m, name=n, line=ln, col=c, store=st,
                      mutate=mu)
            for (m, n, ln, c, st, mu) in sorted(globals_seen)]
        self.functions.append(info)
        # Nested defs become their own records.
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_direct_child_scope(func, node):
                    self._function(node, f"{qualname}.", None, True)

    @staticmethod
    def _is_direct_child_scope(parent: ast.AST, child: ast.AST) -> bool:
        """True when *child* is nested in *parent* with no def between."""
        for node in own_statements(parent):
            if node is child:
                return True
        return False

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, call: ast.Call, class_id: Optional[DefId],
                     types: Dict[str, DefId],
                     parent_qual: str = "",
                     nested: Optional[Set[str]] = None) -> CallSite:
        parts = dotted_name(call.func)
        site = CallSite(line=call.lineno, col=call.col_offset,
                        text=".".join(parts) if parts else "")
        if not parts:
            return site
        if nested and len(parts) == 1 and parts[0] in nested:
            # A call to a helper defined inside this very function.
            site.target = def_id(self.module.name,
                                 f"{parent_qual}.{parts[0]}")
            return site
        target, instance = self.resolve_parts(parts, class_id, types)
        if target is not None:
            site.target = target
            site.instance_call = instance
            return site
        # External: resolve the head through the import map.
        imported = self.symbols.imports.get(parts[0])
        if imported is not None:
            site.external = ".".join([imported] + parts[1:])
        elif parts[0] in ("open",):
            site.external = parts[0]
        return site

    def resolve_parts(self, parts: List[str], class_id: Optional[DefId],
                      types: Dict[str, DefId]
                      ) -> Tuple[Optional[DefId], bool]:
        """(resolved target, receiver-is-an-instance) for a dotted call."""
        head = parts[0]
        if head == "self" and class_id is not None:
            if len(parts) == 2:
                return (self.resolver.resolve_method(class_id, parts[1]),
                        True)
            if len(parts) == 3:
                attr_cls = self.resolver.attr_type(class_id, parts[1])
                if attr_cls is not None:
                    return (self.resolver.resolve_method(attr_cls,
                                                         parts[2]), True)
            return (None, False)
        if head in types and len(parts) == 2:
            return (self.resolver.resolve_method(types[head], parts[1]),
                    True)
        return (self.resolver.resolve_in_module(self.module.name, parts),
                False)

    # -- pool entry points --------------------------------------------------

    def _collect_pool_entries(self, tree: ast.AST,
                              module_level: bool) -> None:
        body = tree.body if module_level else [tree]
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    self._collect_pool_entry(node)

    def _collect_pool_entry(self, call: ast.Call) -> None:
        func_parts = dotted_name(call.func) or []
        tail = func_parts[-1] if func_parts else ""
        for keyword in call.keywords:
            if keyword.arg in ("initializer", "target"):
                target = self._entry_target(keyword.value)
                if target is not None:
                    via = ("initializer" if keyword.arg == "initializer"
                           else "process-target")
                    self.pool_entries.append(
                        PoolEntry(target=target, line=call.lineno,
                                  via=via))
        if tail in POOL_DISPATCH and call.args:
            target = self._entry_target(call.args[0])
            if target is not None:
                self.pool_entries.append(
                    PoolEntry(target=target, line=call.lineno,
                              via="dispatch"))

    def _entry_target(self, node: ast.AST) -> Optional[DefId]:
        parts = dotted_name(node)
        if not parts:
            return None
        return self.resolver.resolve_in_module(self.module.name, parts)

    # -- global state uses --------------------------------------------------

    def _collect_global_use(self, scope: "_FunctionScope", node: ast.AST,
                            seen: Set[Tuple]) -> None:
        """Record interesting uses of module-level state.

        Interesting means: any use of a lock or open handle, any
        in-place mutation of a mutable container, and any rebinding
        through ``global``.  Plain reads of plain constants are noise
        and deliberately not recorded.
        """
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                if node.id in scope.locals:
                    return  # a local shadows the global
                owner = self._global_owner(node.id)
                if owner is not None and owner[2] in ("lock", "handle"):
                    seen.add((owner[0], owner[1], node.lineno,
                              node.col_offset, False, False))
            elif node.id in scope.declared_global:
                owner = self._global_owner(node.id)
                if owner is not None:
                    seen.add((owner[0], owner[1], node.lineno,
                              node.col_offset, True, False))
        elif isinstance(node, ast.Call):
            parts = dotted_name(node.func)
            if parts and len(parts) == 2 and parts[-1] in MUTATORS \
                    and parts[0] not in scope.locals:
                owner = self._global_owner(parts[0])
                if owner is not None and owner[2] == "mutable":
                    seen.add((owner[0], owner[1], node.lineno,
                              node.col_offset, False, True))
        elif isinstance(node, ast.Subscript) \
                and isinstance(node.ctx, (ast.Store, ast.Del)) \
                and isinstance(node.value, ast.Name) \
                and node.value.id not in scope.locals:
            owner = self._global_owner(node.value.id)
            if owner is not None and owner[2] == "mutable":
                seen.add((owner[0], owner[1], node.lineno,
                          node.col_offset, False, True))

    def _global_owner(self, name: str) -> Optional[Tuple[str, str, str]]:
        """(owning module, global name, kind) for *name*, if it is one."""
        kind = self.symbols.global_kinds.get(name)
        if kind is not None:
            return (self.module.name, name, kind)
        imported = self.symbols.imports.get(name)
        if imported is None:
            return None
        # A from-import of a module-level *variable* of an in-tree
        # module: resolve the module prefix and look the kind up there.
        module, _, symbol = imported.rpartition(".")
        other = self.resolver.symbols.get(module)
        if other is None or not symbol:
            return None
        kind = other.global_kinds.get(symbol)
        if kind is None:
            return None
        return (module, symbol, kind)


class _FunctionScope:
    """Names that are local to one function body (shadow the globals)."""

    def __init__(self, func: ast.AST) -> None:
        self.declared_global: Set[str] = set()
        self.locals: Set[str] = {arg.arg for arg in _all_args(func.args)}
        for node in own_statements(func):
            if isinstance(node, ast.Global):
                self.declared_global.update(node.names)
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Store):
                self.locals.add(node.id)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                self.locals.add(node.name)  # a nested def binds locally
        self.locals -= self.declared_global


def _all_args(args: ast.arguments) -> List[ast.arg]:
    out = list(args.posonlyargs) + list(args.args)
    if args.vararg:
        out.append(args.vararg)
    out += list(args.kwonlyargs)
    if args.kwarg:
        out.append(args.kwarg)
    return out


def local_types(func: ast.AST, module_name: str,
                class_id: Optional[DefId],
                resolver: Resolver) -> Dict[str, DefId]:
    """Flow-insensitive local variable types for call/sink resolution.

    Parameter annotations and ``x = ClassName(...)`` assignments that
    resolve to in-tree classes; nothing else.
    """
    from repro.devtools.simlint.dataflow.symbols import _unwrap_optional
    types: Dict[str, DefId] = {}

    def resolve_annotation(annotation: ast.AST) -> Optional[DefId]:
        parts = dotted_name(_unwrap_optional(annotation))
        if not parts:
            return None
        resolved = resolver.resolve_in_module(module_name, parts)
        if resolved is not None and resolver.class_info(resolved):
            return resolved
        return None

    for arg in _all_args(func.args):
        if arg.annotation is not None:
            resolved = resolve_annotation(arg.annotation)
            if resolved is not None:
                types[arg.arg] = resolved
    for node in own_statements(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            parts = dotted_name(node.value.func)
            if parts:
                resolved = resolver.resolve_in_module(module_name, parts)
                if resolved is not None and resolver.class_info(resolved):
                    types[node.targets[0].id] = resolved
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            resolved = resolve_annotation(node.annotation)
            if resolved is not None:
                types[node.target.id] = resolved
    return types
