"""simlint — AST-based invariant checker for the repro codebase.

Six repository-specific rules, each guarding a contract that previously
existed only as a runtime test (and in two cases as a fixed production
bug):

========  ==============================================================
SL001     determinism: no wall-clock or ambient randomness in
          ``repro.core`` / ``repro.mop`` / ``repro.memory``
SL002     layering: the model layer never eagerly imports
          ``repro.trace`` / ``repro.experiments`` / ``repro.cli``
SL003     picklability: exceptions survive the executor's worker-pool
          boundary (the DeadlockError bug)
SL004     stats schema: every ``SimStats`` counter is surfaced by an
          accessor
SL005     cache key: every ``SimCell``/``MachineConfig`` field is hashed
          or explicitly excluded (the ``max_cycles`` bug)
SL006     exception hygiene: no bare ``except:`` / swallowed
          ``BaseException`` outside the fault harness
========  ==============================================================

Run it as ``repro lint`` or ``python -m repro.devtools.simlint``;
suppress a single line with ``# simlint: disable=SL001`` (see
``docs/invariants.md``).
"""

from repro.devtools.simlint.engine import (
    Finding,
    Project,
    REGISTRY,
    Rule,
    SourceError,
    SourceModule,
    all_rules,
    lint_paths,
    load_modules,
    register,
    run_rules,
)
from repro.devtools.simlint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "Project",
    "REGISTRY",
    "Rule",
    "SourceError",
    "SourceModule",
    "all_rules",
    "lint_paths",
    "load_modules",
    "register",
    "render_json",
    "render_text",
    "run_rules",
]
