"""Name/import AST helpers shared by rules *and* the dataflow engine.

These used to live in :mod:`repro.devtools.simlint.rules.common`, but
importing any ``rules.*`` submodule executes the ``rules`` package
init, which imports every rule module — and the dataflow rules import
the dataflow engine.  The engine therefore takes these helpers from
here, keeping the import graph acyclic:

    astutil  <-  dataflow  <-  rules.*  <-  rules (package init)
       ^------------------------'

:mod:`rules.common` re-exports them, so rule code keeps its idiom.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map each locally bound name to the qualified thing it imports.

    ``import time``                → ``{"time": "time"}``
    ``import os.path``             → ``{"os": "os"}``
    ``import numpy.random as npr`` → ``{"npr": "numpy.random"}``
    ``from time import time``      → ``{"time": "time.time"}``
    ``from datetime import datetime as dt`` →
    ``{"dt": "datetime.datetime"}``
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    # `import a.b` binds `a`.
                    root = alias.name.split(".")[0]
                    names[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue    # relative imports never hit stdlib modules
            for alias in node.names:
                local = alias.asname or alias.name
                names[local] = f"{node.module}.{alias.name}"
    return names


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]`` for Name/Attribute chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_qualified(node: ast.AST,
                      imports: Dict[str, str]) -> Optional[str]:
    """Qualified dotted name of *node*, resolved through *imports*.

    Returns None when the chain does not start at an imported name —
    locals shadowing a module name therefore cannot false-positive.
    """
    parts = dotted_name(node)
    if not parts:
        return None
    qualified = imports.get(parts[0])
    if qualified is None:
        return None
    return ".".join([qualified] + parts[1:])
