"""The simlint engine: source model, rule registry, suppressions, runner.

simlint is an AST-based invariant checker for *this* repository.  Where
ruff enforces generic Python hygiene, simlint enforces the repro-specific
contracts that only ever existed as runtime tests before: determinism of
the simulated core, lazy trace imports, picklable worker exceptions,
stats-schema completeness, cache-key completeness, and no swallowed
exceptions.  Each contract is a :class:`Rule` with a stable ``SLxxx``
code; findings can be suppressed per line with::

    something_suspicious()  # simlint: disable=SL001
    another_thing()         # simlint: disable=SL001,SL006
    escape_hatch()          # simlint: disable=all

The engine is dependency-free (``ast`` + ``tokenize`` only) so it runs
anywhere the simulator runs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

#: Matches the per-line suppression directive.  ``all`` disables every
#: rule on the line; otherwise a comma-separated list of codes.
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``end_line`` is the last physical line of the reported statement
    (defaults to ``line``); suppression directives anywhere within
    that span apply, so a disable comment on the closing line of a
    multi-line call works.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    end_line: int = 0

    @property
    def span_end(self) -> int:
        return max(self.end_line, self.line)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"{self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------

@dataclass
class SourceModule:
    """One parsed Python file plus the metadata rules key off.

    ``name`` is the dotted module path *within the scanned tree* — for
    ``<root>/src/repro/core/stats.py`` it is ``repro.core.stats``.  Rules
    scope themselves by this name, so fixture trees that mirror the
    package layout are linted exactly like the real one.
    """

    path: Path
    rel: str
    name: str
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def in_package(self, *prefixes: str) -> bool:
        """True if this module lives under any of the dotted *prefixes*."""
        for prefix in prefixes:
            if self.name == prefix or self.name.startswith(prefix + "."):
                return True
        return False

    def suppressed_codes(self, line: int,
                         end_line: Optional[int] = None) -> frozenset:
        """Codes disabled by a directive within lines [*line*, *end_line*].

        A multi-line statement is suppressible from any of its physical
        lines — in particular the closing line, which is where a
        directive naturally lands on a wrapped call.
        """
        last = max(end_line or line, line)
        codes: set = set()
        for current in range(max(line, 1),
                             min(last, len(self.lines)) + 1):
            match = _SUPPRESS_RE.search(self.lines[current - 1])
            if match:
                codes.update(token.strip()
                             for token in match.group(1).split(",")
                             if token.strip())
        return frozenset(codes)


class Project:
    """Every module the current lint run can see."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: List[SourceModule] = list(modules)
        self._by_name: Dict[str, SourceModule] = {
            module.name: module for module in self.modules}
        self._by_rel: Dict[str, SourceModule] = {
            module.rel: module for module in self.modules}

    def module(self, name: str) -> Optional[SourceModule]:
        return self._by_name.get(name)

    def module_for_rel(self, rel: str) -> Optional[SourceModule]:
        return self._by_rel.get(rel)

    def in_package(self, *prefixes: str) -> Iterator[SourceModule]:
        for module in self.modules:
            if module.in_package(*prefixes):
                yield module


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for *path* relative to the scan *root*.

    A ``src`` layout component is stripped, so both ``repo/`` and
    ``repo/src/`` roots produce ``repro.core.stats``-style names.
    """
    parts = list(path.relative_to(root).with_suffix("").parts)
    while parts and parts[0] in ("src",):
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class SourceError(Exception):
    """A file could not be read or parsed (reported, never swallowed)."""

    def __init__(self, path: Path, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = path
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.path, self.reason))


def load_modules(paths: Sequence[Path],
                 root: Optional[Path] = None) -> Project:
    """Parse every ``.py`` file under *paths* into a :class:`Project`.

    *root* anchors dotted module names; it defaults to the common parent
    of *paths* (so linting ``src/repro`` names modules ``repro.*``).
    Unparseable files raise :class:`SourceError` — a syntax error in the
    tree is itself a finding-worthy event, not something to skip.
    """
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules = []
    for file in files:
        anchor = _anchor_for(file, root)
        try:
            text = file.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(file))
        except (OSError, SyntaxError, ValueError) as exc:
            raise SourceError(file, str(exc)) from exc
        modules.append(SourceModule(
            path=file,
            rel=str(file),
            name=_module_name(file, anchor),
            text=text,
            tree=tree,
            lines=text.splitlines(),
        ))
    return Project(modules)


def _anchor_for(file: Path, root: Optional[Path]) -> Path:
    """Directory dotted names are computed from, for one file."""
    if root is not None:
        return Path(root)
    # Walk up past every package directory (those holding an
    # __init__.py); the first non-package ancestor anchors the name.
    current = file.parent
    while (current / "__init__.py").exists() and current.parent != current:
        current = current.parent
    return current


# ---------------------------------------------------------------------------
# Rules and the registry
# ---------------------------------------------------------------------------

class Rule:
    """Base class: one invariant with a stable code.

    Subclasses set ``code``/``name``/``description`` and implement either
    :meth:`check_module` (called once per module) or :meth:`check`
    (called once per project) — whichever matches the rule's granularity.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self.check_module(module, project)

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        return iter(())

    def finding(self, module: SourceModule, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(code=self.code, message=message, path=module.rel,
                       line=line,
                       col=getattr(node, "col_offset", 0),
                       end_line=getattr(node, "end_lineno", line) or line)


#: ``code -> rule class`` for every registered rule.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to :data:`REGISTRY`."""
    if not rule_cls.code:
        raise ValueError(f"{rule_cls.__name__} has no code")
    if rule_cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by code."""
    _load_builtin_rules()
    return [REGISTRY[code]() for code in sorted(REGISTRY)]


def _load_builtin_rules() -> None:
    # Import for the registration side effect; idempotent.
    from repro.devtools.simlint import rules as _rules  # noqa: F401


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def run_rules(project: Project,
              select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run (optionally a subset of) the registered rules over *project*.

    Per-line ``# simlint: disable=...`` directives are honoured here, so
    every reporter sees the same post-suppression finding list.  Findings
    come back sorted by location then code — stable for golden tests.
    """
    wanted = {code.strip() for code in select} if select else None
    findings: List[Finding] = []
    for rule in all_rules():
        if wanted is not None and rule.code not in wanted:
            continue
        for finding in rule.check(project):
            module = project.module_for_rel(finding.path)
            if module is not None:
                disabled = module.suppressed_codes(finding.line,
                                                   finding.span_end)
                if finding.code in disabled or "all" in disabled:
                    continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(paths: Sequence[Path], root: Optional[Path] = None,
               select: Optional[Iterable[str]] = None,
               cache: Optional[object] = None) -> List[Finding]:
    """Convenience wrapper: load *paths* and run the rules.

    *cache*, when given, is an
    :class:`~repro.devtools.simlint.dataflow.cache.AnalysisCache` the
    dataflow rules pick up for incremental re-analysis; library calls
    default to uncached (hermetic) runs.
    """
    project = load_modules(paths, root=root)
    if cache is not None:
        project.analysis_cache = cache
    return run_rules(project, select=select)
