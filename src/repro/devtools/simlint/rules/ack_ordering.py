"""SL013 — a 202 acknowledgement implies the job was journalled first.

The job service's crash-recovery contract (the reason the journal
exists): once a client has seen ``202 Accepted``, a restart must
replay the job.  That is only true if the journal record is fsynced
*before* the acknowledgement leaves the process — on **every** control
-flow path, including early returns and exception handlers.  A branch
that acks first and journals after (or never) is exactly the
regression that silently voids recovery while every happy-path test
stays green.

The check is a CFG dominance argument, per function in
:mod:`repro.service`:

* **sends** are statements returning a ``(202, ...)`` response tuple
  or calling a ``*send*``-named callee with a literal ``202``;
* **journal writes** are calls whose resolved callee transitively
  reaches ``os.fsync`` (the call graph knows ``manager.submit ->
  journal.accept -> _append -> os.fsync``), plus a conservative
  lexical fallback for untyped ``*.journal.*(...)`` receivers;
* the engine's must-pass analysis then asks: does every path from
  function entry to the send pass through a journal write first?
  Exception edges out of a ``try`` body carry the *pre-statement*
  state, so a journal call inside ``try`` does not protect the
  handler path that acks anyway.

Any send statement not dominated by a journal write is a finding.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.simlint.dataflow.analysis import get_analysis
from repro.devtools.simlint.engine import Finding, Project, Rule, register

#: Only the service layer makes acknowledgement promises.
SCOPE = ("repro.service",)


@register
class AckOrderingRule(Rule):
    code = "SL013"
    name = "ack-implies-journal"
    description = (
        "every control-flow path in repro.service that sends a 202 "
        "acknowledgement must pass a journal write (transitive "
        "os.fsync) first; ack-before-journal voids crash recovery"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = get_analysis(project)
        for module in project.in_package(*SCOPE):
            for info, payload in analysis.ack_findings(module.name):
                yield Finding(
                    code=self.code,
                    message=(
                        f"in {info.qualname}: {payload['what']} is "
                        f"reachable without a preceding journal write "
                        f"on some path; fsync the journal record "
                        f"before acknowledging"),
                    path=module.rel,
                    line=payload["line"],
                    col=payload["col"],
                )
