"""SL011 — service coroutines may not block *transitively* either.

SL009 catches ``time.sleep`` written directly inside an ``async def``
of :mod:`repro.service`; it is documented as lexical and blind to a
coroutine calling a sync helper that blocks.  This rule closes that
gap: starting from every coroutine in the service layer it walks the
project call graph (plain calls, ``self.method``, attribute calls
through inferred types, cross-module helpers) and reports the
coroutine if any reachable in-tree callee invokes a blocking primitive
from the same catalogue SL009 uses.

The finding points at the *call inside the coroutine* that starts the
chain, and the message spells out the witness path down to the
primitive, so the fix (``run_in_executor`` or an async equivalent) is
obvious at the right line.

Deliberate scope cuts:

* Direct blocking calls are SL009's findings; this rule only reports
  chains with at least one hop, so a single bug never double-reports.
* :mod:`repro.experiments.faults` is exempt as a callee — fault
  injection stalls the pipeline *on purpose*, behind its own enable
  flag; flagging it would just teach people to sprinkle suppressions.
* Nested plain ``def``s keep their sanctioned ``run_in_executor``
  role: handing one to an executor creates no call edge, while
  *calling* it directly from the coroutine does — and is then
  correctly reported.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.simlint.dataflow.analysis import get_analysis
from repro.devtools.simlint.engine import Finding, Project, Rule, register

#: The async service layer this rule polices (same scope as SL009).
SCOPE = ("repro.service",)


@register
class TransitiveBlockingRule(Rule):
    code = "SL011"
    name = "transitive-blocking"
    description = (
        "repro.service coroutines may not reach a blocking primitive "
        "through any chain of in-tree calls (closes SL009's "
        "direct-call-only gap)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = get_analysis(project)
        for module in project.in_package(*SCOPE):
            for info in analysis.functions_by_module.get(module.name, []):
                if not info.is_async:
                    continue
                chain = analysis.blocking_chain.get(info.id)
                if chain is None or chain.callee is None:
                    continue  # clean, or direct (SL009 reports those)
                path = " -> ".join(analysis.blocking_path(info.id))
                yield Finding(
                    code=self.code,
                    message=(
                        f"coroutine '{info.qualname}' blocks the event "
                        f"loop transitively: {path}; run the helper in "
                        f"an executor or use an async equivalent"),
                    path=module.rel,
                    line=chain.line,
                    col=chain.col,
                )
