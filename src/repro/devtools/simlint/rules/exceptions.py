"""SL006 — no bare ``except:`` and no swallowed ``BaseException``.

A bare ``except:`` (or ``except BaseException:`` without a re-raise)
eats ``KeyboardInterrupt`` and ``SystemExit`` — in this codebase that
turns Ctrl-C during a grid run into a worker that *keeps simulating*,
and hides the executor's own control-flow exceptions.  The few places
that legitimately need to intercept everything (the fault-injection
harness, whose whole job is to misbehave on purpose) are exempted by
module, and any other deliberate use can carry a per-line suppression
that documents itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)

#: Modules allowed to intercept everything: the fault-injection harness
#: exists to simulate arbitrary misbehaviour.
EXEMPT_MODULES = ("repro.experiments.faults",)


def _mentions_base_exception(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Attribute):
        return node.attr == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_mentions_base_exception(elt) for elt in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True if the handler body contains any ``raise`` of its own
    (nested function bodies do not count — they run later, if ever)."""
    stack = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class ExceptionHygieneRule(Rule):
    code = "SL006"
    name = "exception-hygiene"
    description = (
        "no bare `except:` and no `except BaseException:` that fails to "
        "re-raise, anywhere outside the fault-injection harness"
    )

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        if module.in_package(*EXEMPT_MODULES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit"
                    " — catch a concrete exception type (SimulationError,"
                    " OSError, ...) instead")
            elif _mentions_base_exception(node.type) \
                    and not _reraises(node):
                yield self.finding(
                    module, node,
                    "`except BaseException:` without a re-raise swallows "
                    "interpreter control-flow exceptions; re-raise, or "
                    "catch Exception")
