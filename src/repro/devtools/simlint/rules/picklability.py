"""SL003 — every exception must survive the worker-pool boundary.

The executor ships worker failures back to the dispatcher as pickled
payloads; an exception whose ``__init__`` signature diverges from the
``args`` it hands to ``Exception.__init__`` either explodes on unpickle
(``TypeError: __init__() missing ... arguments`` — the PR 2
``DeadlockError`` bug) or silently drops its diagnostic payload on the
floor.  Default exception pickling reconstructs via ``cls(*self.args)``,
so a class is safe only when one of these holds:

* it defines no custom ``__init__`` (``args`` is the constructor call);
* its ``__init__`` forwards **exactly its own parameters, in order** to
  ``super().__init__(...)``;
* it defines ``__reduce__`` (or ``__reduce_ex__`` /
  ``__getnewargs__``) rebuilding the full payload.

This rule finds exception classes (transitively, by base-name reachability
within the linted tree) that satisfy none of the above.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)
from repro.devtools.simlint.rules.common import class_methods

#: Methods whose presence means the author took over pickling.
_PICKLE_HOOKS = frozenset({
    "__reduce__", "__reduce_ex__", "__getnewargs__", "__getnewargs_ex__",
    "__getstate__",
})

#: Base names that seed "this is an exception" reachability.  Matching is
#: by final identifier, which is exactly how humans name these things.
_SEED_MARKERS = ("Error", "Exception", "Warning")
_SEED_EXACT = frozenset({"BaseException", "KeyboardInterrupt", "SystemExit"})


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)      # e.g. pickle.PicklingError
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def _looks_exceptional(name: str) -> bool:
    return name in _SEED_EXACT or name.endswith(_SEED_MARKERS)


def _exception_classes(project: Project
                       ) -> Iterator[Tuple[SourceModule, ast.ClassDef]]:
    """Every class def that is (transitively) an exception type."""
    classes: List[Tuple[SourceModule, ast.ClassDef]] = []
    bases: Dict[str, List[str]] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                classes.append((module, node))
                bases.setdefault(node.name, []).extend(_base_names(node))
    exceptional: Set[str] = {
        name for name in bases if _looks_exceptional(name)}
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name in exceptional:
                continue
            if any(_looks_exceptional(parent) or parent in exceptional
                   for parent in parents):
                exceptional.add(name)
                changed = True
    for module, node in classes:
        if node.name in exceptional:
            yield module, node


def _super_init_args(init: ast.FunctionDef) -> Optional[List[str]]:
    """Positional ``Name`` args of the ``super().__init__(...)`` call.

    None when there is no such call, or when the call is too clever to
    verify statically (starred args, keywords, computed expressions).
    """
    for node in ast.walk(init):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "__init__"):
            continue
        value = func.value
        is_super = (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "super")
        is_explicit_base = isinstance(value, ast.Name)
        if not (is_super or is_explicit_base):
            continue
        if node.keywords:
            return None
        args = node.args
        if is_explicit_base:
            # BaseClass.__init__(self, ...) — drop the explicit self.
            args = args[1:]
        names = []
        for arg in args:
            if not isinstance(arg, ast.Name):
                return None
            names.append(arg.id)
        return names
    return None


@register
class PicklabilityRule(Rule):
    code = "SL003"
    name = "picklability"
    description = (
        "exception classes must round-trip through pickle: forward the "
        "full __init__ signature to super().__init__, or define "
        "__reduce__ (the executor ships worker exceptions across the "
        "pool boundary)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module, cls in _exception_classes(project):
            methods = class_methods(cls)
            if _PICKLE_HOOKS & set(methods):
                continue
            init = methods.get("__init__")
            if init is None:
                continue
            params = [arg.arg for arg in init.args.args[1:]]
            if not params and not init.args.kwonlyargs:
                continue
            if init.args.vararg is not None:
                # *args passthroughs are self-describing; trust them.
                continue
            if init.args.kwonlyargs:
                yield self._finding(
                    module, cls,
                    "keyword-only __init__ parameters cannot be rebuilt "
                    "by default exception pickling (cls(*args))")
                continue
            forwarded = _super_init_args(init)
            if forwarded == params:
                continue
            if forwarded is None:
                why = ("__init__ never forwards its arguments to "
                       "super().__init__ verbatim")
            else:
                missing = [p for p in params if p not in forwarded]
                why = (f"super().__init__ receives {forwarded!r} but "
                       f"__init__ takes {params!r}"
                       + (f" — {', '.join(missing)} would be lost or "
                          f"crash on unpickle" if missing else ""))
            yield self._finding(module, cls, why)

    def _finding(self, module: SourceModule, cls: ast.ClassDef,
                 why: str) -> Finding:
        return self.finding(
            module, cls,
            f"exception {cls.name} will not survive pickling across the "
            f"worker-pool boundary: {why}; define __reduce__ returning "
            f"(type(self), (<full payload>)) like DeadlockError does",
        )
