"""SL010 — nondeterminism may not *flow* into determinism-critical data.

SL001 bans wall-clock and entropy reads textually inside the core
packages; it is blind to a value that takes one helper hop.  This rule
runs the project-wide taint analysis instead: every value produced by
a wall-clock or ambient-randomness source is labelled, the label is
propagated through assignments, returns and cross-module calls (via
function summaries), and a finding fires when a labelled value reaches
one of the determinism-critical sinks, no matter how many functions it
passed through on the way:

* a ``SimStats`` field (attribute store or constructor argument) —
  stats must replay bit-identically across runs and processes,
* a ``cell_key`` input / ``SimCell`` field — a timestamp in the cache
  key silently splits the result cache,
* a ``TraceEvent`` payload — traces are diffed byte-for-byte.

The historical bug class: a "how long did this take" measurement
assigned into a stats counter via a helper, invisible to SL001 because
the ``time.perf_counter()`` sat in ``repro.perf`` where SL007 allows
it.  Timing belongs in the executor's wall-time fields, never in
simulated state.

Findings are reported at the statement where the tainted value meets
the sink — the line a human must edit.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.simlint.dataflow.analysis import get_analysis
from repro.devtools.simlint.engine import Finding, Project, Rule, register


@register
class TaintDeterminismRule(Rule):
    code = "SL010"
    name = "taint-determinism"
    description = (
        "wall-clock/randomness-tainted values may not flow into "
        "SimStats fields, cell keys (SimCell/cell_key) or trace-event "
        "payloads, regardless of how many helper calls they pass "
        "through"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = get_analysis(project)
        for module in project.modules:
            for info, taint in analysis.taint_findings(module.name):
                yield Finding(
                    code=self.code,
                    message=f"in {info.qualname}: {taint.message()}",
                    path=module.rel,
                    line=taint.line,
                    col=taint.col,
                )
