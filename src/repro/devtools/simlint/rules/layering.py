"""SL002 — the core never imports observability or harness layers eagerly.

PR 3's contract: an untraced simulation must never pay for (or even
import) :mod:`repro.trace` — the bench harness asserts
``"repro.trace" not in sys.modules`` after a plain run.  More broadly,
the dependency arrow points one way: ``core/mop/memory/isa`` are the
model; ``trace``, ``experiments`` and ``cli`` consume them.  A stray
top-level import from a lower layer both inverts the architecture and
reintroduces the eager-import cost this codebase already fought to
remove.

Lazy imports inside functions are fine (that *is* the sanctioned
pattern), as are ``if TYPE_CHECKING:`` blocks — annotations are strings
under ``from __future__ import annotations``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)
from repro.devtools.simlint.rules.common import eager_statements

#: Model-layer packages that must not know about the layers above.
SCOPE = ("repro.core", "repro.mop", "repro.memory", "repro.isa")

#: Packages the model layer may only import lazily (inside a function)
#: or for type checking.
FORBIDDEN = ("repro.trace", "repro.experiments", "repro.cli")


def _forbidden_target(name: str) -> str:
    """The forbidden package *name* belongs to, or '' if allowed."""
    for target in FORBIDDEN:
        if name == target or name.startswith(target + "."):
            return target
    return ""


@register
class LayeringRule(Rule):
    code = "SL002"
    name = "layering"
    description = (
        "repro.core/mop/memory/isa must not import repro.trace, "
        "repro.experiments or repro.cli at module import time; use a "
        "function-local import or an `if TYPE_CHECKING:` block"
    )

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        if not module.in_package(*SCOPE):
            return
        for stmt in eager_statements(module.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    target = _forbidden_target(alias.name)
                    if target:
                        yield self._finding(module, stmt, alias.name, target)
            elif isinstance(stmt, ast.ImportFrom) and stmt.level == 0 \
                    and stmt.module is not None:
                target = _forbidden_target(stmt.module)
                if target:
                    yield self._finding(module, stmt, stmt.module, target)
                    continue
                # `from repro import trace` binds the subpackage too.
                if stmt.module == "repro":
                    for alias in stmt.names:
                        target = _forbidden_target(f"repro.{alias.name}")
                        if target:
                            yield self._finding(
                                module, stmt, f"repro.{alias.name}", target)

    def _finding(self, module: SourceModule, stmt: ast.stmt,
                 imported: str, target: str) -> Finding:
        return self.finding(
            module, stmt,
            f"eager import of {imported} from the model layer "
            f"({module.name}); {target} must only be imported lazily "
            f"inside the function that needs it (untraced runs must "
            f"never load it) or under `if TYPE_CHECKING:`",
        )
