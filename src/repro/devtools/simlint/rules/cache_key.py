"""SL005 — the result-cache key must cover every cell parameter.

The on-disk cache returns yesterday's stats whenever a cell hashes the
same; a ``SimCell`` field that changes simulation behaviour but is
missing from :func:`repro.experiments.executor.cell_key` makes two
*different* simulations collide — the PR 2 ``max_cycles`` bug, where a
truncated run could satisfy a full-length request from cache.  The fix
pattern is structural, so this rule enforces it structurally:

* every ``SimCell`` dataclass field must be referenced inside
  ``cell_key`` (hashed into the payload), **or** listed in the module's
  ``CACHE_KEY_EXCLUDED`` frozenset — the documented set of
  presentation-only fields (today: ``label``);
* the ``config`` field must be hashed via ``asdict(cell.config)`` so
  every present *and future* ``MachineConfig`` field participates
  automatically (hashing ``str(config)`` or a hand-picked field list
  would drift the same way);
* exclusions that are not (or are no longer) ``SimCell`` fields are
  flagged as stale, so the exclusion set cannot rot either.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           register)
from repro.devtools.simlint.rules.common import (dataclass_fields,
                                                 string_constants)

EXECUTOR_MODULE = "repro.experiments.executor"
CELL_CLASS = "SimCell"
KEY_FUNCTION = "cell_key"
EXCLUSION_NAME = "CACHE_KEY_EXCLUDED"


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_function(tree: ast.Module,
                   name: str) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _find_exclusions(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == EXCLUSION_NAME
                        for t in node.targets):
            return node
    return None


@register
class CacheKeyRule(Rule):
    code = "SL005"
    name = "cache-key"
    description = (
        "every SimCell field must be hashed into cell_key() or listed in "
        "CACHE_KEY_EXCLUDED; MachineConfig must enter the key via "
        "asdict(cell.config) so new config fields can never be forgotten"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        module = project.module(EXECUTOR_MODULE)
        if module is None:
            return
        cell_cls = _find_class(module.tree, CELL_CLASS)
        key_func = _find_function(module.tree, KEY_FUNCTION)
        if cell_cls is None or key_func is None:
            return
        fields = dataclass_fields(cell_cls)

        exclusions_node = _find_exclusions(module.tree)
        excluded = (string_constants(exclusions_node.value)
                    if exclusions_node is not None else frozenset())

        receiver = (key_func.args.args[0].arg
                    if key_func.args.args else "cell")
        hashed = set()
        config_via_asdict = False
        for node in ast.walk(key_func):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == receiver:
                hashed.add(node.attr)
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "asdict":
                for arg in node.args:
                    if isinstance(arg, ast.Attribute) \
                            and arg.attr == "config" \
                            and isinstance(arg.value, ast.Name) \
                            and arg.value.id == receiver:
                        config_via_asdict = True

        for name, node in fields.items():
            if name in excluded:
                if name in hashed:
                    yield self.finding(
                        module, exclusions_node or node,
                        f"SimCell.{name} is listed in {EXCLUSION_NAME} "
                        f"but also referenced in {KEY_FUNCTION}() — "
                        f"remove one; a field cannot be both hashed and "
                        f"excluded")
                continue
            if name not in hashed:
                yield self.finding(
                    module, node,
                    f"SimCell.{name} is not hashed into "
                    f"{KEY_FUNCTION}() and not listed in "
                    f"{EXCLUSION_NAME}; two cells differing only in "
                    f"{name} would collide in the result cache (the "
                    f"max_cycles/CACHE_SCHEMA=2 bug)")
        if "config" in fields and "config" not in excluded \
                and not config_via_asdict:
            yield self.finding(
                module, key_func,
                f"{KEY_FUNCTION}() must hash the machine configuration "
                f"via asdict({receiver}.config) so every MachineConfig "
                f"field — present and future — participates in the key")
        for name in sorted(excluded - set(fields)):
            yield self.finding(
                module, exclusions_node,
                f"{EXCLUSION_NAME} entry {name!r} is not a SimCell "
                f"field — stale exclusion; delete it")
