"""SL007 — wall-clock timing stays in the measurement layer.

With ``repro perf`` gating CI on measured throughput, a stray
``time.perf_counter()`` in the model or analysis layers is worse than a
style problem: it is an unmeasured, unguarded timing side channel — a
convenient place for ad-hoc benchmarking prints to creep in, skew the
very numbers the perf profiles track, and (in the deterministic layers)
threaten bit-identical replay.  This rule confines wall-clock reads to
the three places that *are* the measurement layer:

* :mod:`repro.perf` — the profiling subsystem itself,
* :mod:`repro.experiments` — the executor's cell timing and timeouts,
* :mod:`repro.service` — the job server's deadlines, drain timeouts
  and client polling/backoff (SL009 separately keeps blocking calls
  out of its coroutines),
* ``benchmarks/`` — the pytest bench harness.

:mod:`repro.core`, :mod:`repro.mop` and :mod:`repro.memory` are *not*
re-checked here: SL001 already polices them (with a stricter ban that
includes randomness), and double-reporting the same call under two codes
would make every determinism finding noisier, not safer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)
from repro.devtools.simlint.rules.common import import_map, resolve_qualified

#: The sanctioned measurement layer (plus the service layer, whose
#: deadlines and backoff are wall-clock by nature).
ALLOWED = ("repro.perf", "repro.experiments", "repro.service",
           "benchmarks")

#: SL001's beat — skipped here so one bad call yields one finding.
DELEGATED = ("repro.core", "repro.mop", "repro.memory")

#: Qualified wall-clock reads this rule confines.
BANNED = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
})


@register
class TimingLayerRule(Rule):
    code = "SL007"
    name = "timing-layer"
    description = (
        "wall-clock reads (time.time / time.perf_counter / ...) only in "
        "the measurement layer: repro.perf, repro.experiments, "
        "repro.service and benchmarks/"
    )

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        if module.in_package(*ALLOWED) or module.in_package(*DELEGATED):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = resolve_qualified(node.func, imports)
            if qualified in BANNED:
                yield self.finding(
                    module, node,
                    f"wall-clock read {qualified}() outside the "
                    f"measurement layer; timing belongs in repro.perf / "
                    f"repro.experiments / repro.service / benchmarks — "
                    f"pass measured durations in as data instead",
                )
