"""SL009 — no blocking calls inside ``repro.service`` coroutines.

The job server's resilience story (admission control, per-connection
deadlines, graceful drain) rests on one invariant: the event loop is
never blocked.  A single ``time.sleep`` or synchronous
``subprocess.run`` inside a coroutine stalls *every* connection and
job session at once — the whole class of bug the service exists to
prevent in its clients.  This rule statically bans the common blocking
primitives inside ``async def`` bodies of :mod:`repro.service`:

* ``time.sleep`` — use ``await asyncio.sleep(...)``,
* synchronous :mod:`subprocess` calls — use
  ``asyncio.create_subprocess_exec``,
* blocking socket/HTTP ops (``socket.*``, ``http.client.*``,
  ``urllib.request.urlopen``) — use ``asyncio.open_connection`` or
  ship the work to a thread.

Scope and limits, deliberately:

* Only *coroutine bodies* are checked.  The synchronous CLI client
  (:mod:`repro.service.client`) blocks by design — it runs in the
  operator's process, not the server's event loop — and the journal's
  ``fsync`` runs in plain methods the manager calls knowingly.
* Plain ``def`` functions nested inside a coroutine are exempt: the
  sanctioned way to block is precisely to define one and hand it to
  ``loop.run_in_executor(...)``.
* This is a lexical check; it cannot trace a coroutine calling a sync
  helper that blocks.  It catches the direct, common cases cheaply.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.dataflow import catalog
from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)
from repro.devtools.simlint.rules.common import import_map, resolve_qualified

#: The async service layer this rule polices.
SCOPE = ("repro.service",)

#: Exact qualified calls that block the calling thread.  Shared with
#: the dataflow engine so SL011's transitive walk bans exactly what
#: this rule bans directly.
BANNED_CALLS = catalog.BLOCKING_CALLS

#: Qualified-name prefixes whose every call is a blocking primitive.
BANNED_PREFIXES = catalog.BLOCKING_PREFIXES

#: What to suggest instead, keyed by the offending root.
_HINTS = {
    "time.sleep": "await asyncio.sleep(...)",
    "subprocess.": "asyncio.create_subprocess_exec(...)",
    "socket.": "asyncio.open_connection(...) / start_server(...)",
    "http.client.": "asyncio.open_connection(...) or a worker thread",
    "urllib.request.urlopen": "a worker thread via loop.run_in_executor",
}


def _hint(qualified: str) -> str:
    for root, hint in _HINTS.items():
        if qualified == root or qualified.startswith(root):
            return hint
    return "an asyncio equivalent"  # pragma: no cover - exhaustive above


def _coroutine_statements(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk *func*'s body without descending into nested ``def``s.

    A nested plain ``def`` is the ``run_in_executor`` idiom — it blocks
    on a worker thread, which is sanctioned.  Nested ``async def``s are
    visited on their own by the caller's module walk.
    """
    stack: list = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a nested def is its own scope, not this coroutine
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingInCoroutineRule(Rule):
    code = "SL009"
    name = "no-blocking-in-service-coroutines"
    description = (
        "no blocking calls (time.sleep, sync subprocess, socket/HTTP "
        "ops) inside repro.service coroutines; the event loop must "
        "never stall"
    )

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        if not module.in_package(*SCOPE):
            return
        imports = import_map(module.tree)
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _coroutine_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                qualified = resolve_qualified(node.func, imports)
                if qualified is None:
                    continue
                if qualified in BANNED_CALLS \
                        or qualified.startswith(BANNED_PREFIXES):
                    yield self.finding(
                        module, node,
                        f"blocking call {qualified}() inside coroutine "
                        f"{func.name}() stalls the whole event loop; "
                        f"use {_hint(qualified)}",
                    )
