"""SL012 — pool worker entry points may not capture host process state.

Functions handed to a worker pool (``initializer=...``, ``Process(
target=...)``, or dispatched via ``apply_async``/``map``/``submit``)
execute in a child process.  Under ``fork`` they inherit a snapshot of
the host's module globals — a held lock forks *held* and deadlocks the
child; an open handle forks into a shared file offset; a mutated cache
diverges silently from the parent's.  Under ``spawn`` the globals are
re-imported fresh and any mutation made by the host is simply gone.
Either way, a worker that touches module-level mutable state, locks or
open handles depends on which start method it got.

This rule finds every pool entry point in the project, walks its call
closure through the call graph, and reports:

* any use of a module-level lock/synchronisation object,
* any use of a module-level open handle,
* any in-place mutation of a module-level mutable container,
* any rebinding of a module global (``global x; x = ...``).

Workers must receive state through their arguments (that is what the
``initializer`` arguments are for) or rebuild it per-process — the
pattern :mod:`repro.experiments.executor` already follows.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Set

from repro.devtools.simlint.dataflow.analysis import get_analysis
from repro.devtools.simlint.dataflow.symbols import DefId
from repro.devtools.simlint.engine import Finding, Project, Rule, register


@register
class ForkSafetyRule(Rule):
    code = "SL012"
    name = "fork-safety"
    description = (
        "pool worker entry points (initializer=, Process target=, "
        "apply_async/map/submit callees) may not use module-level "
        "locks, open handles, or mutate module-level state anywhere "
        "in their call closure"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        analysis = get_analysis(project)
        reported: Set[tuple] = set()
        for _, entry in analysis.pool_entries:
            for fid in _closure(analysis, entry.target):
                info = analysis.functions.get(fid)
                if info is None:
                    continue
                owner = project.module(info.module)
                if owner is None:
                    continue
                for use in info.global_uses:
                    symbols = analysis.symbols.get(use.module)
                    kind = symbols.global_kinds.get(use.name, "plain") \
                        if symbols is not None else "plain"
                    what = _violation(kind, use.store, use.mutate)
                    if what is None:
                        continue
                    key = (fid, use.module, use.name, use.line, use.col)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        code=self.code,
                        message=(
                            f"pool worker '{info.qualname}' (entry via "
                            f"{entry.via}) {what} module-level "
                            f"{_noun(kind)} '{use.name}'; pass state "
                            f"through worker arguments or rebuild it "
                            f"per-process"),
                        path=owner.rel,
                        line=use.line,
                        col=use.col,
                    )


def _closure(analysis, root: DefId) -> Iterator[DefId]:
    seen: Set[DefId] = {root}
    queue: deque = deque([root])
    while queue:
        fid = queue.popleft()
        yield fid
        info = analysis.functions.get(fid)
        if info is None:
            continue
        for site in info.calls:
            if site.target is not None and site.target not in seen:
                seen.add(site.target)
                queue.append(site.target)


def _violation(kind: str, store: bool, mutate: bool):
    """What the worker did wrong, or None when the use is benign."""
    if kind in ("lock", "handle"):
        return "captures"
    if store:
        return "rebinds"
    if kind == "mutable" and mutate:
        return "mutates"
    return None


def _noun(kind: str) -> str:
    return {"lock": "lock", "handle": "open handle",
            "mutable": "mutable state"}.get(kind, "state")
