"""SL008 — numpy stays confined to the ``repro.core.backend`` package.

The pure-Python golden reference is the portable model: it must import
and run on a bare interpreter, which is exactly what the default CI lane
proves by running the suite without numpy installed.  The vectorized
kernel is an *optional* backend behind :mod:`repro.core.backend`'s lazy
loaders, so that package (and only that package) may import numpy —
anywhere else, even a function-local ``import numpy`` would make a code
path silently numpy-dependent and break the reference's portability
contract the moment someone calls it.

Unlike SL002 this is a *total* confinement rule: lazy imports are not a
sanctioned escape hatch, because the backend registry is already the one
sanctioned lazy boundary.  Tests and benchmarks are out of scope (they
live outside ``src/repro``); the parity suite guards its numpy use with
an availability skip instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)

#: The only package allowed to import numpy.
ALLOWED_PACKAGE = "repro.core.backend"


def _is_numpy(name: str) -> bool:
    return name == "numpy" or name.startswith("numpy.")


@register
class NumpyConfinementRule(Rule):
    code = "SL008"
    name = "numpy-confinement"
    description = (
        "numpy may only be imported inside repro.core.backend (lazily "
        "loaded when the numpy backend is selected); everywhere else "
        "the model must stay dependency-free, even in function-local "
        "imports"
    )

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        if module.in_package(ALLOWED_PACKAGE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _is_numpy(alias.name):
                        yield self._finding(module, node, alias.name)
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module is not None and _is_numpy(node.module):
                yield self._finding(module, node, node.module)

    def _finding(self, module: SourceModule, node: ast.stmt,
                 imported: str) -> Finding:
        return self.finding(
            module, node,
            f"import of {imported} outside {ALLOWED_PACKAGE} "
            f"({module.name}); the golden reference must run without "
            f"numpy — route vectorized code through the backend "
            f"registry instead",
        )
