"""Shared AST helpers for simlint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Map each locally bound name to the qualified thing it imports.

    ``import time``                → ``{"time": "time"}``
    ``import os.path``             → ``{"os": "os"}``
    ``import numpy.random as npr`` → ``{"npr": "numpy.random"}``
    ``from time import time``      → ``{"time": "time.time"}``
    ``from datetime import datetime as dt`` →
    ``{"dt": "datetime.datetime"}``
    """
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    # `import a.b` binds `a`.
                    root = alias.name.split(".")[0]
                    names[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue    # relative imports never hit stdlib modules
            for alias in node.names:
                local = alias.asname or alias.name
                names[local] = f"{node.module}.{alias.name}"
    return names


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]`` for Name/Attribute chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_qualified(node: ast.AST,
                      imports: Dict[str, str]) -> Optional[str]:
    """Qualified dotted name of *node*, resolved through *imports*.

    Returns None when the chain does not start at an imported name —
    locals shadowing a module name therefore cannot false-positive.
    """
    parts = dotted_name(node)
    if not parts:
        return None
    qualified = imports.get(parts[0])
    if qualified is None:
        return None
    return ".".join([qualified] + parts[1:])


def is_type_checking_test(test: ast.AST) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def eager_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executed at import time.

    Descends into class bodies, ``try``/``with`` blocks and ``if``
    branches (import-time control flow) but not into function bodies
    (deferred) or ``if TYPE_CHECKING:`` bodies (never executed).
    """
    def walk(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.If):
                if not is_type_checking_test(stmt.test):
                    yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, ast.With):
                yield from walk(stmt.body)
    return walk(tree.body)


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly defined methods of *cls*, by name."""
    return {stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def dataclass_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Annotated instance fields of a (data)class body, by name.

    Skips private names and ``ClassVar`` annotations.
    """
    fields: Dict[str, ast.AnnAssign] = {}
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields[stmt.target.id] = stmt
    return fields


def self_attribute_reads(func: ast.FunctionDef,
                         self_name: str = "self") -> frozenset:
    """Names of attributes accessed on *self_name* inside *func*."""
    reads = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == self_name:
            reads.add(node.attr)
    return frozenset(reads)


def string_constants(node: ast.AST) -> frozenset:
    """Every string literal anywhere under *node*."""
    return frozenset(
        child.value for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str))
