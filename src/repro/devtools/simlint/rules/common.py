"""Shared AST helpers for simlint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

# Name/import resolution helpers live in astutil (outside the rules
# package) so the dataflow engine can use them without triggering this
# package's rule imports; re-exported here for rule code.
from repro.devtools.simlint.astutil import (  # noqa: F401
    dotted_name, import_map, resolve_qualified)


def is_type_checking_test(test: ast.AST) -> bool:
    """True for ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def eager_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executed at import time.

    Descends into class bodies, ``try``/``with`` blocks and ``if``
    branches (import-time control flow) but not into function bodies
    (deferred) or ``if TYPE_CHECKING:`` bodies (never executed).
    """
    def walk(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.If):
                if not is_type_checking_test(stmt.test):
                    yield from walk(stmt.body)
                yield from walk(stmt.orelse)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                yield from walk(stmt.body)
                for handler in stmt.handlers:
                    yield from walk(handler.body)
                yield from walk(stmt.orelse)
                yield from walk(stmt.finalbody)
            elif isinstance(stmt, ast.With):
                yield from walk(stmt.body)
    return walk(tree.body)


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """Directly defined methods of *cls*, by name."""
    return {stmt.name: stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}


def dataclass_fields(cls: ast.ClassDef) -> Dict[str, ast.AnnAssign]:
    """Annotated instance fields of a (data)class body, by name.

    Skips private names and ``ClassVar`` annotations.
    """
    fields: Dict[str, ast.AnnAssign] = {}
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields[stmt.target.id] = stmt
    return fields


def self_attribute_reads(func: ast.FunctionDef,
                         self_name: str = "self") -> frozenset:
    """Names of attributes accessed on *self_name* inside *func*."""
    reads = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == self_name:
            reads.add(node.attr)
    return frozenset(reads)


def string_constants(node: ast.AST) -> frozenset:
    """Every string literal anywhere under *node*."""
    return frozenset(
        child.value for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str))
