"""SL004 — every ``SimStats`` counter must be surfaced by an accessor.

``SimStats`` is the schema of record: the result cache serializes it
with ``dataclasses.asdict`` and rebuilds it with ``SimStats(**payload)``,
and the report/metrics layers read it only through its methods and
properties.  A counter that the pipeline increments but no ``SimStats``
accessor (``summary()``, a property, ``replay_causes()``,
``mop_funnel()``, ...) ever reads is schema drift: it silently bloats
every cache entry and checkpoint line while being invisible in every
rendered table — the counter *looks* collected but nobody can see it.

This rule parses the ``SimStats`` class in ``repro.core.stats`` and
flags any public dataclass field never read as ``self.<field>`` inside
one of its own methods.  Genuinely write-only bookkeeping fields can be
acknowledged explicitly with ``# simlint: disable=SL004`` on the field's
definition line — the suppression then documents the decision in place.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           register)
from repro.devtools.simlint.rules.common import (class_methods,
                                                 dataclass_fields,
                                                 self_attribute_reads)

#: Where the schema lives and what it is called.
STATS_MODULE = "repro.core.stats"
STATS_CLASS = "SimStats"


@register
class StatsSchemaRule(Rule):
    code = "SL004"
    name = "stats-schema"
    description = (
        "every public SimStats dataclass field must be read by at least "
        "one SimStats method/property (summary(), a derived metric, a "
        "breakdown dict); write-only counters are invisible schema drift"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        module = project.module(STATS_MODULE)
        if module is None:
            return
        stats_cls = None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == STATS_CLASS:
                stats_cls = node
                break
        if stats_cls is None:
            return
        fields = dataclass_fields(stats_cls)
        reads: set = set()
        for method in class_methods(stats_cls).values():
            reads |= self_attribute_reads(method)
        for name, node in fields.items():
            if name not in reads:
                yield self.finding(
                    module, node,
                    f"SimStats.{name} is never read by any SimStats "
                    f"accessor — surface it in summary() or a derived "
                    f"metric (or acknowledge write-only status with a "
                    f"suppression on this line)",
                )
