"""SL001 — the simulated core must be a pure function of its inputs.

The whole reproduction rests on bit-identical serial/parallel runs (the
executor assembles results in input order and diffs byte-for-byte, and
the result cache replays stats across processes and days).  One
``time.time()`` tie-breaker or module-level ``random.random()`` inside
the timing model silently breaks that contract in ways the runtime tests
only catch when the schedule happens to wobble.  This rule bans ambient
wall-clock and randomness sources from :mod:`repro.core`,
:mod:`repro.mop` and :mod:`repro.memory`.

Seeded generators are the sanctioned pattern: construct
``random.Random(seed)`` and thread it explicitly (as
:mod:`repro.workloads.synthetic` does — workloads are outside this
rule's scope precisely because they do it right).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.simlint.dataflow import catalog
from repro.devtools.simlint.engine import (Finding, Project, Rule,
                                           SourceModule, register)
from repro.devtools.simlint.rules.common import import_map, resolve_qualified

#: Packages that must stay deterministic.
SCOPE = ("repro.core", "repro.mop", "repro.memory")

#: Exact qualified callables that read wall-clock or entropy.  The
#: catalogue is shared with the dataflow engine (SL010 taints the same
#: sources this rule bans textually); ``time.sleep`` rides along here
#: because a sleeping core is as schedule-dependent as a clock read.
BANNED = catalog.WALLCLOCK_CALLS | catalog.RANDOM_CALLS \
    | frozenset({"time.sleep"})

#: Prefixes banned wholesale: the module-level ``random.*`` functions all
#: draw from the shared, unseeded global generator, and everything in
#: ``secrets`` is entropy by definition.
BANNED_PREFIXES = catalog.RANDOM_PREFIXES

#: The allowed exceptions under the banned prefixes.
ALLOWED = catalog.RANDOM_ALLOWED


@register
class DeterminismRule(Rule):
    code = "SL001"
    name = "determinism"
    description = (
        "no wall-clock reads or ambient randomness inside the simulated "
        "core (repro.core / repro.mop / repro.memory); pass seeds and "
        "cycle counts instead"
    )

    def check_module(self, module: SourceModule,
                     project: Project) -> Iterator[Finding]:
        if not module.in_package(*SCOPE):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = resolve_qualified(node.func, imports)
            if qualified is None:
                continue
            if qualified in ALLOWED:
                continue
            if qualified in BANNED or qualified.startswith(BANNED_PREFIXES):
                yield self.finding(
                    module, node,
                    f"nondeterministic call {qualified}() in the simulated "
                    f"core; results must be a pure function of (trace, "
                    f"config, seed) — thread a seeded random.Random or the "
                    f"cycle counter instead",
                )
