"""Built-in simlint rules.

Importing this package registers every rule with the engine registry
(:data:`repro.devtools.simlint.engine.REGISTRY`).  Each module holds one
rule, named after the invariant it guards:

========  =====================================================
SL001     determinism — no wall-clock or ambient randomness in
          the simulated core
SL002     layering — core never imports trace/experiments/cli
          eagerly
SL003     picklability — exceptions survive the worker-pool
          boundary
SL004     stats schema — every SimStats counter is surfaced
SL005     cache key — every SimCell/MachineConfig field is hashed
          or excluded
SL006     no bare ``except:`` / swallowed ``BaseException``
SL007     timing layer — wall-clock reads only in repro.perf,
          repro.experiments and benchmarks/
SL008     numpy confinement — numpy imports only inside
          repro.core.backend (the reference model stays
          dependency-free)
SL009     no blocking calls (time.sleep, sync subprocess,
          socket/HTTP ops) inside repro.service coroutines
SL010     taint determinism — wall-clock/random values may not
          *flow* into SimStats, cell keys or trace payloads,
          through any number of helper calls (dataflow)
SL011     transitive blocking — service coroutines may not reach
          a blocking primitive through the call graph (dataflow)
SL012     fork safety — pool worker entry points may not capture
          module-level locks/handles or mutate module globals
          (dataflow)
SL013     ack-implies-journal — every path sending 202 passes a
          journal fsync first (CFG dominance, dataflow)
========  =====================================================

The SL010-SL013 modules share one project-wide analysis
(:mod:`repro.devtools.simlint.dataflow`), computed on first use and
memoized per project.
"""

from repro.devtools.simlint.rules import (  # noqa: F401
    ack_ordering,
    blocking,
    cache_key,
    determinism,
    exceptions,
    fork_safety,
    layering,
    numpy_confinement,
    picklability,
    stats_schema,
    taint_determinism,
    timing,
    transitive_blocking,
)
