"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import List

from repro.devtools.simlint.engine import Finding, all_rules


def render_text(findings: List[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding + a tally."""
    if not findings:
        return "simlint: clean"
    lines = [finding.render() for finding in findings]
    by_code: dict = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    tally = ", ".join(f"{code} x{count}"
                      for code, count in sorted(by_code.items()))
    lines.append(f"simlint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Stable JSON document: rule catalogue + findings + totals."""
    document = {
        "tool": "simlint",
        "rules": {
            rule.code: {"name": rule.name, "description": rule.description}
            for rule in all_rules()
        },
        "findings": [finding.as_dict() for finding in findings],
        "total": len(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)
