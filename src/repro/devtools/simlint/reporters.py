"""Finding reporters: human text, machine JSON, and SARIF for CI."""

from __future__ import annotations

import json
from typing import List

from repro.devtools.simlint.engine import Finding, all_rules


def render_text(findings: List[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding + a tally."""
    if not findings:
        return "simlint: clean"
    lines = [finding.render() for finding in findings]
    by_code: dict = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    tally = ", ".join(f"{code} x{count}"
                      for code, count in sorted(by_code.items()))
    lines.append(f"simlint: {len(findings)} finding(s) ({tally})")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """Stable JSON document: rule catalogue + findings + totals."""
    document = {
        "tool": "simlint",
        "rules": {
            rule.code: {"name": rule.name, "description": rule.description}
            for rule in all_rules()
        },
        "findings": [finding.as_dict() for finding in findings],
        "total": len(findings),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(findings: List[Finding]) -> str:
    """SARIF 2.1.0 log, suitable for GitHub code-scanning upload.

    The full rule catalogue is always embedded (code scanning uses it
    to render rule help even for rules with zero results); result
    locations use forward-slash repo-relative URIs.
    """
    rules = all_rules()
    rule_index = {rule.code: index for index, rule in enumerate(rules)}
    driver = {
        "name": "simlint",
        "informationUri":
            "https://github.com/paper-repro/macro-op-scheduling",
        "rules": [
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": "error"},
            }
            for rule in rules
        ],
    }
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        "endLine": finding.span_end,
                    },
                },
            }],
        })
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
    return json.dumps(document, indent=2, sort_keys=True)
