"""simlint command line: ``python -m repro.devtools.simlint`` / ``repro lint``.

Exit status: 0 clean, 1 findings, 2 operational error (unreadable or
syntactically invalid source).

The dataflow rules (SL010-SL013) use an incremental cache by default
(``.simlint-cache.json`` next to the lint root): a warm re-lint
re-analyzes only modules whose content hash changed plus their
call-graph dependents.  ``--no-cache`` forces a cold run; the cache is
an optimisation only and never changes findings.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.devtools.simlint.dataflow.cache import (AnalysisCache,
                                                   default_cache_path)
from repro.devtools.simlint.engine import (Finding, SourceError, all_rules,
                                           lint_paths)
from repro.devtools.simlint.reporters import (render_json, render_sarif,
                                              render_text)


def _default_paths() -> List[Path]:
    """``src/repro`` from a checkout root, else the installed package."""
    checkout = Path("src") / "repro"
    if checkout.is_dir():
        return [checkout]
    import repro
    return [Path(repro.__file__).parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=("AST-based invariant checker for the repro codebase: "
                     "determinism and taint dataflow, layering, "
                     "picklability, schema and cache-key completeness, "
                     "exception hygiene, blocking and fork safety"),
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", help="report format")
    parser.add_argument("--select", default="",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--root", type=Path, default=None,
                        help="directory dotted module names are computed "
                             "from (default: inferred per file)")
    parser.add_argument("--output", type=Path, default=None, metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--sarif", type=Path, default=None, metavar="FILE",
                        help="additionally write a SARIF 2.1.0 log to "
                             "FILE (independent of --format, so one run "
                             "feeds both the gate and the upload)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental analysis cache "
                             "(force a cold dataflow run)")
    parser.add_argument("--cache-file", type=Path, default=None,
                        metavar="FILE",
                        help="incremental cache location (default: "
                             ".simlint-cache.json next to the lint root)")
    parser.add_argument("--changed", action="store_true",
                        help="report findings only for files changed "
                             "versus git HEAD (plus untracked files); "
                             "analysis still sees the whole tree")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _git_changed_files() -> Optional[Set[Path]]:
    """Changed-vs-HEAD plus untracked files, resolved; None on failure."""
    changed: Set[Path] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(command, capture_output=True,
                                  text=True, check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add(Path(line.strip()).resolve())
    return changed


def _filter_changed(findings: List[Finding],
                    changed: Set[Path]) -> List[Finding]:
    return [finding for finding in findings
            if Path(finding.path).resolve() in changed]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} [{rule.name}] {rule.description}")
        return 0
    paths = args.paths or _default_paths()
    select = [code for code in args.select.split(",") if code.strip()] \
        or None
    cache = None
    if not args.no_cache:
        cache_path = args.cache_file or default_cache_path(Path(paths[0]))
        if cache_path is not None:
            cache = AnalysisCache(cache_path)
    try:
        findings = lint_paths(paths, root=args.root, select=select,
                              cache=cache)
    except SourceError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    if args.changed:
        changed = _git_changed_files()
        if changed is None:
            print("simlint: error: --changed requires a git checkout",
                  file=sys.stderr)
            return 2
        findings = _filter_changed(findings, changed)
    renderers = {"text": render_text, "json": render_json,
                 "sarif": render_sarif}
    report = renderers[args.format](findings)
    print(report)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report + "\n")
    if args.sarif is not None:
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(render_sarif(findings) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
