"""simlint command line: ``python -m repro.devtools.simlint`` / ``repro lint``.

Exit status: 0 clean, 1 findings, 2 operational error (unreadable or
syntactically invalid source).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.simlint.engine import (SourceError, all_rules,
                                           lint_paths)
from repro.devtools.simlint.reporters import render_json, render_text


def _default_paths() -> List[Path]:
    """``src/repro`` from a checkout root, else the installed package."""
    checkout = Path("src") / "repro"
    if checkout.is_dir():
        return [checkout]
    import repro
    return [Path(repro.__file__).parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=("AST-based invariant checker for the repro codebase: "
                     "determinism, layering, picklability, schema and "
                     "cache-key completeness, exception hygiene"),
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", help="report format")
    parser.add_argument("--select", default="",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--root", type=Path, default=None,
                        help="directory dotted module names are computed "
                             "from (default: inferred per file)")
    parser.add_argument("--output", type=Path, default=None, metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} [{rule.name}] {rule.description}")
        return 0
    paths = args.paths or _default_paths()
    select = [code for code in args.select.split(",") if code.strip()] \
        or None
    try:
        findings = lint_paths(paths, root=args.root, select=select)
    except SourceError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    report = (render_json(findings) if args.format == "json"
              else render_text(findings))
    print(report)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
