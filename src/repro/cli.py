"""Command-line driver: run simulations and regenerate paper results.

Installed as ``repro-sim`` (see pyproject).  Examples::

    repro-sim run gap --scheduler macro-op --insts 10000
    repro-sim run vector_sum --scheduler 2-cycle     # kernels work too
    repro-sim run gap --trace gap.jsonl --trace-limit 20000
    repro-sim trace gap.jsonl --start 100 --count 16
    repro-sim figure 14 --insts 8000 --jobs 4
    repro-sim figure 6 --benchmarks gap,vortex
    repro-sim table 2
    repro-sim report --jobs 4
    repro-sim cache info
    repro-sim list
    repro serve --port 8537       # simulation-as-a-service job server
    repro submit --benchmarks gap,vortex --schedulers base,macro-op --wait
    repro status <job-id>         # per-cell progress
    repro result <job-id>         # merged grid (JSON)
    repro cancel <job-id>
    repro lint                    # simlint static invariant checker
    repro lint --format json --select SL001,SL002
    repro perf run --quick        # write BENCH_<sha>.json
    repro perf check --baseline BENCH_baseline.json
    repro perf report             # BENCH_*.json trajectory as markdown

``figure``/``table``/``report`` fan their simulation grids out over
``--jobs`` worker processes and cache per-cell results on disk
(``--no-cache`` to disable, ``--cache-dir`` / ``REPRO_CACHE_DIR`` to
relocate, ``repro-sim cache clear`` to wipe).  Tables are byte-identical
for any ``--jobs`` value; the executor summary goes to stderr.

Fault tolerance: a cell that keeps crashing, hanging past
``--cell-timeout`` (or ``REPRO_CELL_TIMEOUT``), or killing its worker is
retried ``--max-retries`` times and then rendered as ``FAILED`` in the
table while the rest of the grid completes; a failure report goes to
stderr and the exit code is 1.  ``--fail-fast`` aborts at the first lost
cell instead.

``serve`` runs the resilient job server (:mod:`repro.service`):
bounded admission queue with 429-style shedding, write-ahead journal
with crash recovery, in-flight dedup, graceful SIGTERM drain, and
``/healthz`` + ``/metrics``.  ``submit``/``status``/``result``/
``cancel`` are its client side; ``submit`` retries shed submissions
with backoff automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.core.backend import BACKEND_NAMES
from repro.experiments.executor import Executor, ResultCache
from repro.workloads import generate_trace, get_profile, profile_names
from repro.workloads.kernels import KERNELS, kernel_trace

_SCHEDULERS = {kind.value: kind for kind in SchedulerKind}
_FIGURES = {}


def _load_figures():
    if not _FIGURES:
        from repro.experiments import (figure6, figure7, figure13, figure14,
                                       figure15, figure16, table2)
        _FIGURES.update({
            "6": figure6, "7": figure7, "13": figure13, "14": figure14,
            "15": figure15, "16": figure16, "table2": table2,
        })
    return _FIGURES


def _add_executor_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=int, default=None,
                     help="parallel simulation workers "
                          "(default: CPU count; 1 = serial)")
    sub.add_argument("--no-cache", action="store_true",
                     help="skip the on-disk result cache")
    sub.add_argument("--cache-dir", default=None,
                     help="result cache directory (default: "
                          "$REPRO_CACHE_DIR or ~/.cache/repro)")
    sub.add_argument("--progress", action="store_true",
                     help="print one line per completed cell to stderr")
    sub.add_argument("--cell-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="per-cell wall-clock limit (default: "
                          "$REPRO_CELL_TIMEOUT or unlimited; needs "
                          "--jobs >= 2 to be enforceable)")
    sub.add_argument("--max-retries", type=int, default=2,
                     help="attempts beyond the first for a failed cell "
                          "(default: 2)")
    sub.add_argument("--fail-fast", action="store_true",
                     help="abort at the first cell that exhausts its "
                          "retries instead of rendering it as FAILED")
    sub.add_argument("--trace-dir", default=None, metavar="DIR",
                     help="write one JSONL pipeline trace per cell into "
                          "DIR (replay with 'repro-sim trace'); forces "
                          "real simulations past the cache")
    sub.add_argument("--trace-limit", type=int, default=None, metavar="N",
                     help="truncate each trace after N events")
    sub.add_argument("--profile-dir", default=None, metavar="DIR",
                     help="cProfile each cell into DIR/<cell>.prof "
                          "(inspect with 'python -m pstats')")
    sub.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                     help="simulation kernel for every cell (default: "
                          "each config's own backend field, i.e. "
                          "python); results are bit-identical and "
                          "share one cache entry")


def _executor_from(args) -> Executor:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return Executor(jobs=args.jobs, cache=cache, progress=args.progress,
                    cell_timeout=args.cell_timeout,
                    max_retries=args.max_retries,
                    fail_fast=args.fail_fast,
                    trace_dir=args.trace_dir,
                    trace_limit=args.trace_limit,
                    profile_dir=args.profile_dir,
                    backend=args.backend)


def _report_summary(executor: Executor) -> int:
    """Print the session summary (and failure table); pick the exit code."""
    if executor.total_summary.cells:
        print(executor.total_summary.render(), file=sys.stderr)
    failures = executor.failure_report()
    if failures:
        print(failures.render(), file=sys.stderr)
        return 1
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Macro-op scheduling (MICRO-36 2003) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    run.add_argument("workload",
                     help="benchmark profile name or kernel name")
    run.add_argument("--scheduler", default="macro-op",
                     choices=sorted(_SCHEDULERS))
    run.add_argument("--wakeup", default="wired-OR",
                     choices=[w.value for w in WakeupStyle])
    run.add_argument("--insts", type=int, default=10_000)
    run.add_argument("--iq-size", type=int, default=32,
                     help="issue queue entries; 0 = unrestricted")
    run.add_argument("--mop-size", type=int, default=2)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--backend", default="python", choices=BACKEND_NAMES,
                     help="simulation kernel (bit-identical results; "
                          "numpy adds vectorized scheduling and "
                          "idle-cycle fast-forward)")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="write a JSONL pipeline trace (replay with "
                          "'repro-sim trace FILE')")
    run.add_argument("--trace-limit", type=int, default=None, metavar="N",
                     help="truncate the trace after N events")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("number", choices=["6", "7", "13", "14", "15", "16"])
    fig.add_argument("--insts", type=int, default=6_000)
    fig.add_argument("--benchmarks", default="",
                     help="comma-separated subset (default: all 12)")
    _add_executor_flags(fig)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", choices=["2"])
    table.add_argument("--insts", type=int, default=6_000)
    table.add_argument("--benchmarks", default="")
    _add_executor_flags(table)

    report = sub.add_parser(
        "report", help="run the whole evaluation and print one document")
    report.add_argument("--insts", type=int, default=6_000)
    report.add_argument("--benchmarks", default="")
    report.add_argument("--sections", default="",
                        help="comma-separated section prefixes, e.g. "
                             "'figure 14,table 2'")
    _add_executor_flags(report)

    trace = sub.add_parser(
        "trace", help="render a pipeline diagram from a JSONL trace")
    trace.add_argument("file", help="trace written by --trace/--trace-dir")
    trace.add_argument("--start", type=int, default=0,
                       help="first op sequence number to show")
    trace.add_argument("--count", type=int, default=20,
                       help="how many ops to show")
    trace.add_argument("--width", type=int, default=64,
                       help="timeline width in cycles")

    lint = sub.add_parser(
        "lint", help="run the simlint static invariant checker")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: src/repro "
                           "in a checkout, else the installed package)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", dest="lint_format",
                      help="report format")
    lint.add_argument("--select", default="",
                      help="comma-separated rule codes (default: all)")
    lint.add_argument("--root", default=None,
                      help="directory dotted module names are computed "
                           "from (default: inferred per file)")
    lint.add_argument("--output", default=None, metavar="FILE",
                      help="also write the report to FILE")
    lint.add_argument("--sarif", default=None, metavar="FILE",
                      help="additionally write a SARIF 2.1.0 log to FILE")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the incremental analysis cache")
    lint.add_argument("--cache-file", default=None, metavar="FILE",
                      help="incremental cache location (default: "
                           ".simlint-cache.json next to the lint root)")
    lint.add_argument("--changed", action="store_true",
                      help="report findings only for files changed "
                           "versus git HEAD (plus untracked files)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    perf = sub.add_parser(
        "perf", help="continuous performance profiling and regression "
                     "gating (BENCH_<sha>.json profiles)")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    perf_run = perf_sub.add_parser(
        "run", help="measure the benchmark grid and write a profile")
    perf_run.add_argument("--quick", action="store_true",
                          help="CI lane: fewer benchmarks, instructions "
                               "and repetitions")
    perf_run.add_argument("--reps", type=int, default=None,
                          help="repetitions per target (default: 3 quick "
                               "/ 5 full)")
    perf_run.add_argument("--insts", type=int, default=None,
                          help="committed instructions per cell "
                               "(default: 1500 quick / 6000 full)")
    perf_run.add_argument("--benchmarks", default="",
                          help="comma-separated subset (default: "
                               "gap,vortex quick / all 12 full)")
    perf_run.add_argument("--jobs", type=int, default=1,
                          help="parallel workers per measurement run "
                               "(default 1: serial timing is the least "
                               "noisy)")
    perf_run.add_argument("--seed", type=int, default=1)
    perf_run.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                          help="simulation kernel to measure (default: "
                               "python); recorded in the profile, and "
                               "'perf check' refuses to compare "
                               "profiles from different kernels")
    perf_run.add_argument("--sha", default=None,
                          help="version label for the profile (default: "
                               "git short SHA, or $REPRO_PERF_SHA)")
    perf_run.add_argument("--out", default=None, metavar="FILE",
                          help="profile path (default: BENCH_<sha>.json "
                               "in the current directory)")

    perf_check = perf_sub.add_parser(
        "check", help="compare a candidate profile against the baseline "
                      "and exit 1 on regressions")
    perf_check.add_argument("--baseline", default=None, metavar="FILE",
                            help="baseline profile (default: "
                                 "BENCH_baseline.json)")
    perf_check.add_argument("--candidate", default=None, metavar="FILE",
                            help="candidate profile (default: measure a "
                                 "fresh one with the baseline's settings)")
    perf_check.add_argument("--threshold", type=float, default=None,
                            help="relative median change that counts as "
                                 "a regression (default 0.2 = 20%%)")
    perf_check.add_argument("--alpha", type=float, default=None,
                            help="rank-test significance level "
                                 "(default 0.05)")
    perf_check.add_argument("--no-normalize", action="store_true",
                            help="skip host-speed calibration "
                                 "normalization")

    perf_report = perf_sub.add_parser(
        "report", help="render the BENCH_*.json trajectory as markdown")
    perf_report.add_argument("profiles", nargs="*",
                             help="profile files (default: BENCH_*.json "
                                  "in --dir)")
    perf_report.add_argument("--dir", default=".",
                             help="directory to scan for BENCH_*.json "
                                  "(default: .)")
    perf_report.add_argument("--out", default=None, metavar="FILE",
                             help="also write the markdown to FILE")

    cache = sub.add_parser("cache",
                           help="inspect or clear the result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument("--cache-dir", default=None,
                       help="result cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache.add_argument("--max-entries", type=int, default=None,
                       help="LRU capacity to report/enforce for this "
                            "invocation (default: "
                            "$REPRO_CACHE_MAX_ENTRIES or unbounded)")

    serve = sub.add_parser(
        "serve", help="run the resilient simulation job server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8537,
                       help="listen port (0 = pick a free one; the "
                            "bound address is printed on startup)")
    serve.add_argument("--state-dir", default=".repro-service",
                       help="journal + shared result cache directory "
                            "(default: .repro-service) — keep it stable "
                            "across restarts or crash recovery cannot "
                            "find the journal")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="queued jobs admitted before submissions "
                            "are shed with a retryable 429 (default 32)")
    serve.add_argument("--sessions", type=int, default=2,
                       help="concurrent job sessions (default 2)")
    serve.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock limit per job (default: none)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="how long SIGTERM waits for running jobs "
                            "(default: forever; unfinished jobs stay "
                            "journaled either way)")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       help="LRU capacity of the shared result cache "
                            "(default: $REPRO_CACHE_MAX_ENTRIES or "
                            "unbounded)")
    serve.add_argument("--executor-jobs", type=int, default=2,
                       help="worker processes per job session "
                            "(default 2)")
    serve.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell wall-clock limit (default: "
                            "$REPRO_CELL_TIMEOUT or unlimited)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="attempts beyond the first per failed cell")

    def _add_client_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=8537)

    submit = sub.add_parser(
        "submit", help="submit an experiment grid to a job server")
    _add_client_flags(submit)
    submit.add_argument("--spec", default=None, metavar="FILE",
                        help="JSON job spec file ('-' for stdin); "
                             "overrides the flags below")
    submit.add_argument("--benchmarks", default="gap",
                        help="comma-separated benchmark names")
    submit.add_argument("--schedulers", default="base,macro-op",
                        help="comma-separated scheduler kinds; each "
                             "becomes one config column")
    submit.add_argument("--insts", type=int, default=None,
                        help="committed instructions per cell")
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes, then print "
                             "its result JSON")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="give up on --wait after SECONDS")

    status = sub.add_parser(
        "status", help="job status (all jobs when no id is given)")
    _add_client_flags(status)
    status.add_argument("job_id", nargs="?", default=None)

    result = sub.add_parser(
        "result", help="fetch a job's merged result grid as JSON")
    _add_client_flags(result)
    result.add_argument("job_id")

    cancel = sub.add_parser("cancel", help="cancel a queued/running job")
    _add_client_flags(cancel)
    cancel.add_argument("job_id")

    sub.add_parser("list", help="list benchmarks and kernels")
    return parser


def _cmd_run(args) -> int:
    if args.workload in KERNELS:
        trace = kernel_trace(args.workload)
    else:
        trace = generate_trace(get_profile(args.workload), args.insts,
                               seed=args.seed)
    config = MachineConfig(
        scheduler=_SCHEDULERS[args.scheduler],
        wakeup_style=WakeupStyle(args.wakeup),
        iq_size=None if args.iq_size == 0 else args.iq_size,
        mop_size=args.mop_size,
        backend=args.backend,
    )
    sink = None
    if args.trace:
        from repro.trace import JsonlTraceSink
        sink = JsonlTraceSink(args.trace, limit=args.trace_limit)
    try:
        stats = simulate(trace, config, sink=sink)
    finally:
        if sink is not None:
            sink.close()
    print(trace.summary())
    print(stats.summary())
    if sink is not None:
        note = f"trace: {sink.emitted} events -> {args.trace}"
        if sink.dropped:
            note += f" ({sink.dropped} past --trace-limit dropped)"
        print(note, file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from repro.core.pipeview import PipeViewer
    viewer = PipeViewer.from_jsonl(args.file)
    print(viewer.render(start=args.start, count=args.count,
                        width=args.width))
    print(viewer.summary())
    return 0


def _fail_fast_abort(executor: Executor, exc: Exception) -> int:
    print(f"fail-fast: {exc}", file=sys.stderr)
    _report_summary(executor)
    return 1


def _cmd_figure(args) -> int:
    from repro.experiments.executor import CellFailedError
    benchmarks = ([b.strip() for b in args.benchmarks.split(",") if b]
                  or None)
    executor = _executor_from(args)
    try:
        result = _load_figures()[args.number](benchmarks=benchmarks,
                                              num_insts=args.insts,
                                              executor=executor)
    except CellFailedError as exc:
        return _fail_fast_abort(executor, exc)
    print(result.render())
    return _report_summary(executor)


def _cmd_table(args) -> int:
    from repro.experiments.executor import CellFailedError
    benchmarks = ([b.strip() for b in args.benchmarks.split(",") if b]
                  or None)
    executor = _executor_from(args)
    try:
        result = _load_figures()["table2"](benchmarks=benchmarks,
                                           num_insts=args.insts,
                                           executor=executor)
    except CellFailedError as exc:
        return _fail_fast_abort(executor, exc)
    print(result.render())
    return _report_summary(executor)


def _cmd_report(args) -> int:
    from repro.experiments.executor import CellFailedError
    from repro.experiments.report import full_report
    benchmarks = ([b.strip() for b in args.benchmarks.split(",") if b]
                  or None)
    sections = ([s.strip() for s in args.sections.split(",") if s]
                or None)
    executor = _executor_from(args)
    try:
        document = full_report(benchmarks=benchmarks, num_insts=args.insts,
                               sections=sections, executor=executor)
    except CellFailedError as exc:
        return _fail_fast_abort(executor, exc)
    print(document)
    return _report_summary(executor)


def _cmd_lint(args) -> int:
    # Lazy import: the checker (and its rule registry) should cost
    # nothing unless asked for — the same contract simlint enforces on
    # repro.trace.
    from repro.devtools.simlint.cli import main as simlint_main
    argv = list(args.paths)
    argv += ["--format", args.lint_format]
    if args.select:
        argv += ["--select", args.select]
    if args.root:
        argv += ["--root", args.root]
    if args.output:
        argv += ["--output", args.output]
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.cache_file:
        argv += ["--cache-file", args.cache_file]
    if args.changed:
        argv += ["--changed"]
    if args.list_rules:
        argv += ["--list-rules"]
    return simlint_main(argv)


def _cmd_perf(args) -> int:
    # Lazy import: the measurement layer should cost nothing unless
    # asked for (same contract as repro.trace and simlint).
    handler = {
        "run": _cmd_perf_run,
        "check": _cmd_perf_check,
        "report": _cmd_perf_report,
    }[args.perf_command]
    return handler(args)


def _perf_benchmarks(spec: str):
    return [b.strip() for b in spec.split(",") if b.strip()] or None


def _cmd_perf_run(args) -> int:
    from pathlib import Path

    from repro.perf import collect_profile, save_profile

    def log(line: str) -> None:
        print(line, file=sys.stderr)

    profile = collect_profile(
        quick=args.quick,
        repetitions=args.reps,
        num_insts=args.insts,
        benchmarks=_perf_benchmarks(args.benchmarks),
        seed=args.seed,
        jobs=args.jobs,
        sha=args.sha,
        backend=args.backend,
        log=log,
    )
    out = Path(args.out) if args.out else None
    path = save_profile(profile, Path.cwd(), out=out)
    print(profile.summary())
    print(f"profile written: {path}")
    return 0


def _cmd_perf_check(args) -> int:
    from pathlib import Path

    from repro.perf import (DEFAULT_ALPHA, DEFAULT_BASELINE,
                            DEFAULT_THRESHOLD, PerfProfile, ProfileError,
                            check_profiles, collect_profile)

    baseline_file = Path(args.baseline or DEFAULT_BASELINE)
    try:
        baseline = PerfProfile.load(baseline_file)
    except ProfileError as exc:
        print(f"perf check: {exc}", file=sys.stderr)
        return 2
    if args.candidate:
        try:
            candidate = PerfProfile.load(Path(args.candidate))
        except ProfileError as exc:
            print(f"perf check: {exc}", file=sys.stderr)
            return 2
    else:
        # Measure a fresh candidate with the baseline's own settings so
        # the grids are comparable by construction.
        def log(line: str) -> None:
            print(line, file=sys.stderr)
        benchmarks = next(
            (t.benchmarks for t in baseline.targets.values()
             if t.benchmarks), None)
        candidate = collect_profile(
            quick=baseline.quick,
            repetitions=baseline.repetitions or None,
            num_insts=baseline.num_insts or None,
            benchmarks=benchmarks,
            seed=baseline.seed,
            jobs=baseline.jobs,
            log=log,
        )
    report = check_profiles(
        baseline, candidate,
        threshold=(args.threshold if args.threshold is not None
                   else DEFAULT_THRESHOLD),
        alpha=args.alpha if args.alpha is not None else DEFAULT_ALPHA,
        normalize=not args.no_normalize,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_perf_report(args) -> int:
    from pathlib import Path

    from repro.perf import (discover_profiles, load_profiles,
                            render_trajectory)

    if args.profiles:
        paths = [Path(p) for p in args.profiles]
    else:
        paths = discover_profiles(Path(args.dir), search_up=True)
    profiles = load_profiles(paths)
    if not profiles:
        print(f"perf report: no perf profiles (BENCH_*.json) under "
              f"{args.dir if not args.profiles else args.profiles}",
              file=sys.stderr)
        return 2
    document = render_trajectory(profiles)
    try:
        print(document)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(document + "\n")
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir, max_entries=args.max_entries)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.root}")
    else:
        info = cache.info()
        capacity = ("unbounded" if info["capacity"] is None
                    else str(info["capacity"]))
        print(f"cache dir: {info['root']}")
        print(f"entries:   {info['entries']}")
        print(f"size:      {info['size_bytes'] / 1024.0:.1f} KiB")
        print(f"capacity:  {capacity}")
        print(f"evictions: {info['evictions']}")
    return 0


def _cmd_serve(args) -> int:
    # Lazy import: the service layer costs nothing unless asked for
    # (same contract as simlint and repro.perf).
    from repro.service import run_server
    return run_server(host=args.host, port=args.port,
                      state_dir=args.state_dir,
                      queue_limit=args.queue_limit,
                      sessions=args.sessions,
                      job_timeout=args.job_timeout,
                      drain_timeout=args.drain_timeout,
                      cache_max_entries=args.cache_max_entries,
                      executor_jobs=args.executor_jobs,
                      cell_timeout=args.cell_timeout,
                      max_retries=args.max_retries)


def _client_from(args):
    from repro.service import ServiceClient
    return ServiceClient(host=args.host, port=args.port)


def _print_json(payload) -> None:
    import json
    print(json.dumps(payload, indent=2, sort_keys=True))


def _client_call(call) -> int:
    from repro.service import ServiceError
    try:
        payload = call()
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"timed out: {exc}", file=sys.stderr)
        return 1
    _print_json(payload)
    return 0


def _submit_spec(args) -> dict:
    import json
    if args.spec:
        if args.spec == "-":
            return json.loads(sys.stdin.read())
        with open(args.spec, encoding="utf-8") as handle:
            return json.load(handle)
    spec: dict = {
        "benchmarks": [b.strip() for b in args.benchmarks.split(",")
                       if b.strip()],
        "configs": {
            kind.strip(): {"scheduler": kind.strip()}
            for kind in args.schedulers.split(",") if kind.strip()},
        "seed": args.seed,
    }
    if args.insts is not None:
        spec["num_insts"] = args.insts
    return spec


def _cmd_submit(args) -> int:
    client = _client_from(args)
    spec = _submit_spec(args)

    def call():
        accepted = client.submit(spec)
        if not args.wait:
            return accepted
        client.wait(accepted["id"], timeout=args.timeout)
        return client.result(accepted["id"])

    return _client_call(call)


def _cmd_status(args) -> int:
    client = _client_from(args)
    if args.job_id:
        return _client_call(lambda: client.status(args.job_id))
    return _client_call(
        lambda: {"health": client.healthz(), **client.jobs()})


def _cmd_result(args) -> int:
    client = _client_from(args)
    return _client_call(lambda: client.result(args.job_id))


def _cmd_cancel(args) -> int:
    client = _client_from(args)
    return _client_call(lambda: client.cancel(args.job_id))


def _cmd_list(_args) -> int:
    print("benchmark profiles (synthetic SPEC CINT2000):")
    for name in profile_names():
        profile = get_profile(name)
        print(f"  {name:8s} paper base IPC {profile.paper_ipc_32:.2f}"
              f" / {profile.paper_ipc_unrestricted:.2f}")
    print("kernels (execution-driven):")
    for name in sorted(KERNELS):
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "run": _cmd_run,
        "figure": _cmd_figure,
        "table": _cmd_table,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "lint": _cmd_lint,
        "perf": _cmd_perf,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "result": _cmd_result,
        "cancel": _cmd_cancel,
        "list": _cmd_list,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
