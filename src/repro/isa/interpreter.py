"""Functional interpreter: executes a :class:`~repro.isa.assembler.Program`
and produces the dynamic operation trace consumed by the timing model.

The interpreter implements the architectural semantics (register file,
word-addressed memory, control flow) and emits :class:`DynInst` records with
*resolved* branch outcomes and memory addresses — exactly the information a
trace-driven timing simulator needs.  Stores are emitted cracked into their
``STORE_ADDR`` + ``STORE_DATA`` halves, matching the decode behaviour of the
modelled pipeline (Section 2.1).  Alpha-style no-ops are *emitted* here and
filtered by the pipeline decoder, mirroring the paper's note that no-ops are
filtered out by the decoder without executing them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.isa.assembler import Program
from repro.isa.instruction import DynInst, StaticInst, crack_store
from repro.isa.registers import NUM_ARCH_REGS, is_zero_reg


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program runs past ``max_ops`` without halting."""


class Interpreter:
    """Architectural-state executor for assembled programs.

    Args:
        program: the assembled program to run.
        max_ops: safety bound on emitted dynamic operations.
    """

    def __init__(self, program: Program, max_ops: int = 1_000_000) -> None:
        self.program = program
        self.max_ops = max_ops
        self.regs: List[float] = [0] * NUM_ARCH_REGS
        self.memory: Dict[int, float] = {}
        self.pc = 0
        self.halted = False
        self._seq = 0

    # -- architectural state helpers --------------------------------------

    def read_reg(self, reg: int) -> float:
        return 0 if is_zero_reg(reg) else self.regs[reg]

    def write_reg(self, reg: Optional[int], value: float) -> None:
        if reg is not None and not is_zero_reg(reg):
            self.regs[reg] = value

    # -- execution ---------------------------------------------------------

    def run(self) -> Iterator[DynInst]:
        """Yield the dynamic operation stream until ``halt`` or limit."""
        while not self.halted:
            if self._seq >= self.max_ops:
                raise ExecutionLimitExceeded(
                    f"program exceeded {self.max_ops} operations"
                )
            if not 0 <= self.pc < len(self.program):
                # Running off the end of the program is an implicit halt.
                self.halted = True
                return
            for op in self.step():
                yield op

    def step(self) -> List[DynInst]:
        """Execute the instruction at ``pc``; return its dynamic op(s)."""
        inst = self.program[self.pc]
        pc = self.pc
        handler = _HANDLERS.get(inst.mnemonic, _exec_default)
        ops = handler(self, inst, pc)
        self._seq += len(ops)
        return ops

    def _emit(
        self,
        inst: StaticInst,
        pc: int,
        taken: bool = False,
        target_pc: Optional[int] = None,
        mem_addr: Optional[int] = None,
    ) -> DynInst:
        return DynInst(
            seq=self._seq,
            pc=pc,
            op_class=inst.op_class,
            dest=inst.dest,
            srcs=inst.srcs,
            taken=taken,
            target_pc=target_pc,
            mem_addr=mem_addr,
            mnemonic=inst.mnemonic,
        )


# ---------------------------------------------------------------------------
# Semantic handlers.  Each returns the list of emitted dynamic ops and
# advances the interpreter PC.
# ---------------------------------------------------------------------------

def _int(value: float) -> int:
    return int(value)


_ALU_FUNCS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: _int(a) & _int(b),
    "or": lambda a, b: _int(a) | _int(b),
    "xor": lambda a, b: _int(a) ^ _int(b),
    "nor": lambda a, b: ~(_int(a) | _int(b)),
    "sll": lambda a, b: _int(a) << (_int(b) & 63),
    "srl": lambda a, b: _int(a) >> (_int(b) & 63),
    "sra": lambda a, b: _int(a) >> (_int(b) & 63),
    "slt": lambda a, b: 1 if a < b else 0,
    "sltu": lambda a, b: 1 if abs(_int(a)) < abs(_int(b)) else 0,
}

_ALUI_FUNCS = {
    "addi": lambda a, i: a + i,
    "subi": lambda a, i: a - i,
    "andi": lambda a, i: _int(a) & i,
    "ori": lambda a, i: _int(a) | i,
    "xori": lambda a, i: _int(a) ^ i,
    "slti": lambda a, i: 1 if a < i else 0,
    "slli": lambda a, i: _int(a) << (i & 63),
    "srli": lambda a, i: _int(a) >> (i & 63),
}

_FP_FUNCS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b if b else 0.0,
}

_BRANCH_FUNCS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bez": lambda a: a == 0,
    "bnz": lambda a: a != 0,
}


def _exec_alu(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    func = _ALU_FUNCS[inst.mnemonic]
    value = func(interp.read_reg(inst.srcs[0]), interp.read_reg(inst.srcs[1]))
    interp.write_reg(inst.dest, value)
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_alui(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    func = _ALUI_FUNCS[inst.mnemonic]
    value = func(interp.read_reg(inst.srcs[0]), inst.imm)
    interp.write_reg(inst.dest, value)
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_li(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    interp.write_reg(inst.dest, inst.imm)
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_mov(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    value = interp.read_reg(inst.srcs[0])
    if inst.mnemonic == "not":
        value = ~_int(value)
    interp.write_reg(inst.dest, value)
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_muldiv(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    a = interp.read_reg(inst.srcs[0])
    b = interp.read_reg(inst.srcs[1])
    if inst.mnemonic == "mul":
        value = _int(a) * _int(b)
    else:
        value = _int(a) // _int(b) if _int(b) else 0
    interp.write_reg(inst.dest, value)
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_fp(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    if inst.mnemonic == "fmov":
        value = interp.read_reg(inst.srcs[0])
    else:
        func = _FP_FUNCS[inst.mnemonic]
        value = func(interp.read_reg(inst.srcs[0]),
                     interp.read_reg(inst.srcs[1]))
    interp.write_reg(inst.dest, value)
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_load(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    addr = _int(interp.read_reg(inst.srcs[0])) + inst.imm
    interp.write_reg(inst.dest, interp.memory.get(addr, 0))
    interp.pc = pc + 1
    return [interp._emit(inst, pc, mem_addr=addr)]


def _exec_store(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    addr = _int(interp.read_reg(inst.srcs[0])) + inst.imm
    assert inst.store_src is not None
    interp.memory[addr] = interp.read_reg(inst.store_src)
    interp.pc = pc + 1
    addr_op, data_op = crack_store(
        seq=interp._seq,
        pc=pc,
        addr_srcs=inst.srcs,
        data_src=inst.store_src,
        mem_addr=addr,
    )
    return [addr_op, data_op]


def _exec_branch(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    func = _BRANCH_FUNCS[inst.mnemonic]
    values = [interp.read_reg(s) for s in inst.srcs]
    taken = bool(func(*values))
    assert inst.target is not None
    interp.pc = inst.target if taken else pc + 1
    return [interp._emit(inst, pc, taken=taken, target_pc=inst.target)]


def _exec_jump(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    assert inst.target is not None
    interp.pc = inst.target
    return [interp._emit(inst, pc, taken=True, target_pc=inst.target)]


def _exec_jr(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    target = _int(interp.read_reg(inst.srcs[0]))
    interp.pc = target
    return [interp._emit(inst, pc, taken=True, target_pc=target)]


def _exec_nop(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_halt(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    interp.halted = True
    interp.pc = pc + 1
    return [interp._emit(inst, pc)]


def _exec_default(interp: Interpreter, inst: StaticInst, pc: int) -> List[DynInst]:
    raise NotImplementedError(f"no semantics for {inst.mnemonic!r}")


_HANDLERS = {}
for _mn in _ALU_FUNCS:
    _HANDLERS[_mn] = _exec_alu
for _mn in _ALUI_FUNCS:
    _HANDLERS[_mn] = _exec_alui
for _mn in _FP_FUNCS:
    _HANDLERS[_mn] = _exec_fp
_HANDLERS.update(
    {
        "li": _exec_li,
        "mov": _exec_mov,
        "not": _exec_mov,
        "fmov": _exec_fp,
        "mul": _exec_muldiv,
        "div": _exec_muldiv,
        "lw": _exec_load,
        "flw": _exec_load,
        "sw": _exec_store,
        "fsw": _exec_store,
        "jmp": _exec_jump,
        "jr": _exec_jr,
        "nop": _exec_nop,
        "halt": _exec_halt,
    }
)
for _mn in _BRANCH_FUNCS:
    _HANDLERS[_mn] = _exec_branch


def run_program(program: Program, max_ops: int = 1_000_000) -> List[DynInst]:
    """Convenience wrapper: execute *program* and return its full trace."""
    return list(Interpreter(program, max_ops=max_ops).run())
