"""A small text assembler for the micro-ISA.

The assembler exists so that examples and tests can run *real programs*
through the timing model (execution-driven), complementing the synthetic
SPEC-like workload generators.  The language is deliberately tiny::

    # three-operand ALU:    add rd, rs, rt        (also sub/and/or/xor/
    #                                              nor/sll/srl/sra/slt)
    # immediate ALU:        addi rd, rs, imm      (also subi/andi/ori/
    #                                              xori/slti/slli/srli)
    # moves:                li rd, imm  /  mov rd, rs  /  not rd, rs
    # multiply/divide:      mul rd, rs, rt  /  div rd, rs, rt
    # floating point:       fadd fd, fs, ft  (also fsub/fmul/fdiv/fmov)
    # memory:               lw rd, imm(rs)   /  sw rv, imm(ra)
    #                       flw fd, imm(rs)  /  fsw fv, imm(ra)
    # control:              beq rs, rt, label   bne/blt/bge
    #                       bez rs, label       bnz
    #                       jmp label           jr rs         halt
    # misc:                 nop

Labels are ``name:`` on their own line or before an instruction.  ``#``
starts a comment.  The assembler resolves labels to instruction indices
(the PC unit is one instruction, as in SimpleScalar traces).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.registers import parse_reg


class AsmError(ValueError):
    """Raised on a malformed assembly line, with line number context."""


@dataclass
class Program:
    """An assembled program: instructions plus the label map."""

    insts: List[StaticInst] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, pc: int) -> StaticInst:
        return self.insts[pc]

    def disassemble(self) -> str:
        """Render the program with label annotations, for debugging."""
        by_pc: Dict[int, List[str]] = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines = []
        for pc, inst in enumerate(self.insts):
            for name in by_pc.get(pc, []):
                lines.append(f"{name}:")
            lines.append(f"  {pc:4d}: {inst}")
        return "\n".join(lines)


_R3_OPS = {
    "add", "sub", "and", "or", "xor", "nor",
    "sll", "srl", "sra", "slt", "sltu",
}
_RI_OPS = {"addi", "subi", "andi", "ori", "xori", "slti", "slli", "srli"}
_FP3_OPS = {"fadd": OpClass.FP_ALU, "fsub": OpClass.FP_ALU,
            "fmul": OpClass.FP_MULT, "fdiv": OpClass.FP_DIV}
_BR2_OPS = {"beq", "bne", "blt", "bge"}
_BR1_OPS = {"bez", "bnz"}

_MEM_RE = re.compile(r"^(-?\w+)\s*\(\s*(\w+)\s*\)$")


def _split_operands(rest: str) -> List[str]:
    return [p.strip() for p in rest.split(",") if p.strip()] if rest else []


def _parse_imm(tok: str, lineno: int) -> int:
    try:
        return int(tok, 0)
    except ValueError as exc:
        raise AsmError(f"line {lineno}: bad immediate {tok!r}") from exc


def _parse_mem(tok: str, lineno: int) -> Tuple[int, int]:
    """Parse ``imm(rs)`` into (imm, base register)."""
    match = _MEM_RE.match(tok)
    if not match:
        raise AsmError(f"line {lineno}: bad memory operand {tok!r}")
    return _parse_imm(match.group(1), lineno), parse_reg(match.group(2))


def assemble(text: str) -> Program:
    """Assemble *text* into a :class:`Program`.

    Runs two passes: the first collects labels and raw operand strings, the
    second resolves label references into instruction indices.
    """
    raw: List[Tuple[int, str, List[str]]] = []  # (lineno, mnemonic, operands)
    labels: Dict[str, int] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AsmError(f"line {lineno}: bad label {label!r}")
            if label in labels:
                raise AsmError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(raw)
            line = line.strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        raw.append((lineno, mnemonic, operands))

    def resolve(tok: str, lineno: int) -> int:
        if tok in labels:
            return labels[tok]
        return _parse_imm(tok, lineno)

    insts: List[StaticInst] = []
    for lineno, mn, ops in raw:
        insts.append(_encode(mn, ops, lineno, resolve))
    return Program(insts=insts, labels=labels)


def _encode(mn: str, ops: List[str], lineno: int, resolve) -> StaticInst:
    """Encode one instruction; *resolve* maps a label/immediate token."""
    if mn in _R3_OPS:
        _expect(ops, 3, mn, lineno)
        return StaticInst(mn, OpClass.INT_ALU, dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]), parse_reg(ops[2])))
    if mn in _RI_OPS:
        _expect(ops, 3, mn, lineno)
        return StaticInst(mn, OpClass.INT_ALU, dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]),),
                          imm=_parse_imm(ops[2], lineno))
    if mn == "li":
        _expect(ops, 2, mn, lineno)
        return StaticInst(mn, OpClass.INT_ALU, dest=parse_reg(ops[0]),
                          imm=_parse_imm(ops[1], lineno))
    if mn in ("mov", "not"):
        _expect(ops, 2, mn, lineno)
        return StaticInst(mn, OpClass.INT_ALU, dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]),))
    if mn == "mul":
        _expect(ops, 3, mn, lineno)
        return StaticInst(mn, OpClass.INT_MULT, dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]), parse_reg(ops[2])))
    if mn == "div":
        _expect(ops, 3, mn, lineno)
        return StaticInst(mn, OpClass.INT_DIV, dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]), parse_reg(ops[2])))
    if mn in _FP3_OPS:
        _expect(ops, 3, mn, lineno)
        return StaticInst(mn, _FP3_OPS[mn], dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]), parse_reg(ops[2])))
    if mn == "fmov":
        _expect(ops, 2, mn, lineno)
        return StaticInst(mn, OpClass.FP_ALU, dest=parse_reg(ops[0]),
                          srcs=(parse_reg(ops[1]),))
    if mn in ("lw", "flw"):
        _expect(ops, 2, mn, lineno)
        imm, base = _parse_mem(ops[1], lineno)
        return StaticInst(mn, OpClass.LOAD, dest=parse_reg(ops[0]),
                          srcs=(base,), imm=imm)
    if mn in ("sw", "fsw"):
        _expect(ops, 2, mn, lineno)
        imm, base = _parse_mem(ops[1], lineno)
        return StaticInst(mn, OpClass.STORE_ADDR, srcs=(base,), imm=imm,
                          store_src=parse_reg(ops[0]))
    if mn in _BR2_OPS:
        _expect(ops, 3, mn, lineno)
        return StaticInst(mn, OpClass.BRANCH,
                          srcs=(parse_reg(ops[0]), parse_reg(ops[1])),
                          target=resolve(ops[2], lineno))
    if mn in _BR1_OPS:
        _expect(ops, 2, mn, lineno)
        return StaticInst(mn, OpClass.BRANCH, srcs=(parse_reg(ops[0]),),
                          target=resolve(ops[1], lineno))
    if mn == "jmp":
        _expect(ops, 1, mn, lineno)
        return StaticInst(mn, OpClass.JUMP, target=resolve(ops[0], lineno))
    if mn == "jr":
        _expect(ops, 1, mn, lineno)
        return StaticInst(mn, OpClass.JUMP_INDIRECT,
                          srcs=(parse_reg(ops[0]),))
    if mn == "nop":
        _expect(ops, 0, mn, lineno)
        return StaticInst(mn, OpClass.NOP)
    if mn == "halt":
        _expect(ops, 0, mn, lineno)
        return StaticInst(mn, OpClass.SYSCALL)
    raise AsmError(f"line {lineno}: unknown mnemonic {mn!r}")


def _expect(ops: List[str], count: int, mn: str, lineno: int) -> None:
    if len(ops) != count:
        raise AsmError(
            f"line {lineno}: {mn} expects {count} operand(s), got {len(ops)}"
        )
