"""Architectural register conventions for the micro-ISA.

We use an Alpha-like register file: 32 integer registers ``r0``–``r31`` with
``r31`` hard-wired to zero, and 32 floating-point registers ``f0``–``f31``.
Both files share one flat architectural namespace (integer registers occupy
indices 0–31, floating-point registers 32–63) so the rename stage and the
MOP translation table can treat all registers uniformly.

Reads of the zero register are never data dependences and writes to it are
discarded, matching Alpha semantics; the dependence-analysis and rename code
rely on :func:`is_zero_reg` for this.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Index of the hard-wired integer zero register (Alpha ``r31``).
ZERO_REG = 31

#: First architectural index of the floating-point file.
FP_REG_BASE = NUM_INT_REGS

#: Index of the hard-wired floating-point zero register (Alpha ``f31``).
FP_ZERO_REG = FP_REG_BASE + 31


def is_zero_reg(reg: int) -> bool:
    """True when *reg* is a hard-wired zero register (Alpha r31/f31)."""
    return reg == ZERO_REG or reg == FP_ZERO_REG


def is_fp_reg(reg: int) -> bool:
    """True when *reg* indexes the floating-point file."""
    return reg >= FP_REG_BASE


def reg_name(reg: int) -> str:
    """Render an architectural register index as ``rN`` / ``fN``."""
    if reg < 0 or reg >= NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {reg}")
    if reg < FP_REG_BASE:
        return f"r{reg}"
    return f"f{reg - FP_REG_BASE}"


def parse_reg(name: str) -> int:
    """Parse ``rN`` / ``fN`` into an architectural register index."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"bad register name: {name!r}")
    try:
        idx = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name: {name!r}") from exc
    limit = NUM_INT_REGS if name[0] == "r" else NUM_FP_REGS
    if not 0 <= idx < limit:
        raise ValueError(f"register index out of range: {name!r}")
    return idx if name[0] == "r" else FP_REG_BASE + idx
