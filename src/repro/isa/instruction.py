"""Static and dynamic instruction records.

A :class:`StaticInst` is one instruction of a program: opcode, register
operands, immediate, and (for control flow) a target.  A :class:`DynInst` is
one *executed instance* of a static instruction: it carries the dynamic
sequence number, PC, the resolved control-flow outcome and memory address.
The timing model consumes streams of ``DynInst`` (from the functional
interpreter or from a synthetic workload generator) — this is the classic
trace-driven structure of SimpleScalar-style studies.

Stores are represented *cracked*: the decoder (or trace generator) emits a
``STORE_ADDR`` operation (the effective-address generation, a macro-op
candidate per Section 4.1) followed by a ``STORE_DATA`` operation that
retires the data at commit, mirroring the paper's Pentium 4–style store
split.  Only the ``STORE_ADDR`` half increments the committed instruction
count, so IPC remains in units of architectural instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.opcodes import (
    OpClass,
    execution_latency,
    is_control,
    is_mop_candidate,
    is_value_generating_candidate,
)
from repro.isa.registers import is_zero_reg, reg_name


@dataclass(frozen=True)
class StaticInst:
    """One instruction of a static program.

    Attributes:
        mnemonic: assembly mnemonic (``add``, ``lw``, ``beq``, ...).
        op_class: coarse operation class used by the timing model.
        dest: destination architectural register, or ``None``.
        srcs: source architectural registers (zero register included as
            written; dependence analysis filters it).
        imm: immediate operand, if any.
        target: static branch/jump target (instruction index), if any.
        store_src: for stores, the register holding the data to store; the
            decoder cracks it into the ``STORE_DATA`` operation.
    """

    mnemonic: str
    op_class: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    store_src: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.mnemonic]
        ops = []
        if self.dest is not None:
            ops.append(reg_name(self.dest))
        ops.extend(reg_name(s) for s in self.srcs)
        if self.store_src is not None:
            ops.append(reg_name(self.store_src))
        if self.target is not None:
            ops.append(f"@{self.target}")
        elif self.imm:
            ops.append(str(self.imm))
        if ops:
            parts.append(", ".join(ops))
        return " ".join(parts)


class DynInst:
    """One dynamically executed operation, as seen by the timing model.

    ``DynInst`` uses ``__slots__`` because timing runs create one per
    executed operation (tens of thousands per simulation).
    """

    __slots__ = (
        "seq",
        "pc",
        "op_class",
        "dest",
        "srcs",
        "taken",
        "target_pc",
        "fallthrough_pc",
        "mem_addr",
        "counts_as_inst",
        "mnemonic",
        "mispred_hint",
        "mem_hint",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op_class: OpClass,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        taken: bool = False,
        target_pc: Optional[int] = None,
        fallthrough_pc: Optional[int] = None,
        mem_addr: Optional[int] = None,
        counts_as_inst: bool = True,
        mnemonic: str = "",
        mispred_hint: Optional[bool] = None,
        mem_hint: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op_class = op_class
        self.dest = dest if dest is None or not is_zero_reg(dest) else None
        self.srcs = tuple(s for s in srcs if not is_zero_reg(s))
        self.taken = taken
        self.target_pc = target_pc
        self.fallthrough_pc = fallthrough_pc if fallthrough_pc is not None else pc + 1
        self.mem_addr = mem_addr
        self.counts_as_inst = counts_as_inst
        self.mnemonic = mnemonic or op_class.name.lower()
        # Synthetic-workload annotations.  ``mispred_hint`` pre-resolves
        # whether the frontend mispredicts this branch (None → ask the real
        # branch predictor); ``mem_hint`` pre-resolves the memory level a
        # load hits (0=DL1, 1=L2, 2=memory; None → ask the real caches).
        self.mispred_hint = mispred_hint
        self.mem_hint = mem_hint

    # -- classification helpers -------------------------------------------

    @property
    def has_dest(self) -> bool:
        return self.dest is not None

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store_addr(self) -> bool:
        return self.op_class is OpClass.STORE_ADDR

    @property
    def is_store_data(self) -> bool:
        return self.op_class is OpClass.STORE_DATA

    @property
    def is_branch(self) -> bool:
        return is_control(self.op_class)

    @property
    def is_conditional_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_mop_candidate(self) -> bool:
        """Macro-op candidate per Section 4.1."""
        return is_mop_candidate(self.op_class)

    @property
    def is_valuegen_candidate(self) -> bool:
        """Value-generating candidate (potential MOP head) per Section 4.1."""
        return is_value_generating_candidate(self.op_class, self.has_dest)

    @property
    def latency(self) -> int:
        """Functional-unit latency (memory access latency excluded)."""
        return execution_latency(self.op_class)

    @property
    def next_pc(self) -> int:
        """The architecturally correct next PC."""
        if self.taken and self.target_pc is not None:
            return self.target_pc
        return self.fallthrough_pc

    def __repr__(self) -> str:
        return (
            f"DynInst(seq={self.seq}, pc={self.pc}, {self.mnemonic},"
            f" dest={self.dest}, srcs={self.srcs})"
        )


def crack_store(
    seq: int,
    pc: int,
    addr_srcs: Tuple[int, ...],
    data_src: int,
    mem_addr: Optional[int] = None,
    fallthrough_pc: Optional[int] = None,
) -> Tuple[DynInst, DynInst]:
    """Crack a store into its ``STORE_ADDR`` + ``STORE_DATA`` operations.

    The address-generation half carries the committed-instruction count; the
    data half is the bookkeeping operation that writes memory at commit.
    Both share the store's PC so MOP pointers indexed by PC see one slot.
    """
    addr_op = DynInst(
        seq=seq,
        pc=pc,
        op_class=OpClass.STORE_ADDR,
        dest=None,
        srcs=addr_srcs,
        mem_addr=mem_addr,
        fallthrough_pc=fallthrough_pc,
        counts_as_inst=True,
        mnemonic="st.addr",
    )
    data_op = DynInst(
        seq=seq + 1,
        pc=pc,
        op_class=OpClass.STORE_DATA,
        dest=None,
        srcs=(data_src,),
        mem_addr=mem_addr,
        fallthrough_pc=fallthrough_pc,
        counts_as_inst=False,
        mnemonic="st.data",
    )
    return addr_op, data_op
