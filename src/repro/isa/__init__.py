"""Alpha-like micro-ISA used by the timing model.

The paper evaluates macro-op scheduling on the Alpha AXP ISA via a
SimpleScalar-derived simulator.  This package provides the minimal ISA
abstractions the timing model needs:

* :mod:`repro.isa.opcodes` — operation classes, execution latencies and the
  macro-op candidate classification of Section 4.1,
* :mod:`repro.isa.registers` — architectural register conventions,
* :mod:`repro.isa.instruction` — static and dynamic instruction records,
* :mod:`repro.isa.assembler` — a small text assembler for writing kernels,
* :mod:`repro.isa.interpreter` — a functional executor that turns a program
  into a dynamic instruction trace.
"""

from repro.isa.opcodes import (
    OpClass,
    execution_latency,
    is_control,
    is_mop_candidate,
    is_single_cycle,
    is_value_generating_candidate,
)
from repro.isa.registers import (
    FP_REG_BASE,
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    ZERO_REG,
    reg_name,
)
from repro.isa.instruction import DynInst, StaticInst

__all__ = [
    "OpClass",
    "execution_latency",
    "is_control",
    "is_mop_candidate",
    "is_single_cycle",
    "is_value_generating_candidate",
    "StaticInst",
    "DynInst",
    "NUM_ARCH_REGS",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "FP_REG_BASE",
    "ZERO_REG",
    "reg_name",
]
