"""Operation classes, latencies, and macro-op candidate classification.

Latencies follow Table 1 of the paper:

======================  =======
functional unit         latency
======================  =======
integer ALU             1
FP ALU                  2
integer multiply        3
integer divide          20
FP multiply             4
FP divide               24
======================  =======

Loads perform a 1-cycle address generation and then access the memory
hierarchy (DL1 hit latency 2 in the paper's configuration).  Stores are
decoded into two operations — an effective-address generation and the actual
store-data operation — mirroring the Pentium 4–style split described in
Section 2.1.

Macro-op *candidates* (Section 4.1) are the single-cycle operations:
single-cycle integer ALU, store address generation, and control (branch)
instructions.  Among those, instructions that produce a register value are
*value-generating* candidates: only they can be MOP heads, because only they
can have dependent instructions whose issue a pipelined (2-cycle) scheduler
would delay.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Coarse operation classes distinguished by the timing model."""

    INT_ALU = 0
    INT_MULT = 1
    INT_DIV = 2
    FP_ALU = 3
    FP_MULT = 4
    FP_DIV = 5
    LOAD = 6
    STORE_ADDR = 7
    STORE_DATA = 8
    BRANCH = 9
    JUMP = 10
    JUMP_INDIRECT = 11
    NOP = 12
    SYSCALL = 13


#: Execution latency per op class (Table 1).  ``LOAD`` shows only the
#: address-generation cycle; the memory access latency is added by the memory
#: hierarchy model.  ``STORE_DATA`` retires at commit and occupies no
#: execution latency in the scheduler beyond its single cycle.
_EXEC_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MULT: 3,
    OpClass.INT_DIV: 20,
    OpClass.FP_ALU: 2,
    OpClass.FP_MULT: 4,
    OpClass.FP_DIV: 24,
    OpClass.LOAD: 1,
    OpClass.STORE_ADDR: 1,
    OpClass.STORE_DATA: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.JUMP_INDIRECT: 1,
    OpClass.NOP: 1,
    OpClass.SYSCALL: 1,
}

#: Op classes that are macro-op candidates (Section 4.1): the single-cycle
#: operations a 1-cycle scheduling loop exists to serve.
_MOP_CANDIDATES = frozenset(
    {
        OpClass.INT_ALU,
        OpClass.STORE_ADDR,
        OpClass.BRANCH,
        OpClass.JUMP,
        OpClass.JUMP_INDIRECT,
    }
)

#: Control-flow op classes.
_CONTROL = frozenset({OpClass.BRANCH, OpClass.JUMP, OpClass.JUMP_INDIRECT})


def execution_latency(op_class: OpClass) -> int:
    """Return the functional-unit latency for *op_class* (Table 1)."""
    return _EXEC_LATENCY[op_class]


def is_single_cycle(op_class: OpClass) -> bool:
    """True when *op_class* executes in a single cycle.

    Loads are *not* single-cycle from the scheduler's perspective: their
    address generation takes one cycle but the memory access adds more, so
    they never require a 1-cycle scheduling loop (Section 4.1).
    """
    return op_class is not OpClass.LOAD and _EXEC_LATENCY[op_class] == 1


def is_control(op_class: OpClass) -> bool:
    """True for branch/jump op classes."""
    return op_class in _CONTROL


def is_mop_candidate(op_class: OpClass) -> bool:
    """True when *op_class* may participate in a macro-op (Section 4.1).

    Candidates are single-cycle ALU operations, store address generations,
    and control instructions.  Multi-cycle operations (loads, multiplies,
    floating point) already tolerate pipelined scheduling and are excluded.
    """
    return op_class in _MOP_CANDIDATES


def is_value_generating_candidate(op_class: OpClass, has_dest: bool) -> bool:
    """True when the instruction can be a MOP *head* (Section 4.1).

    A value-generating candidate both is a MOP candidate and writes a
    register, so dependent instructions exist whose wakeup a 2-cycle
    scheduler would delay.  Branches and store address generations produce no
    register value and can only ever be MOP tails.
    """
    return has_dest and op_class in _MOP_CANDIDATES
