"""Parallel experiment execution engine with fault tolerance and caching.

Every figure/table in the reproduction is an embarrassingly-parallel grid
of independent ``(benchmark, config)`` simulations.  This module is the
single funnel those simulations flow through:

* :class:`SimCell` — one simulation: a benchmark trace specification
  (profile name, instruction budget, seed) plus a :class:`MachineConfig`
  and the label it carries in the result table.
* :class:`ResultCache` — a content-addressed on-disk store of
  :class:`~repro.core.stats.SimStats`, keyed by a stable hash of the
  machine configuration, the *workload profile contents*, the seed and
  the instruction budget, so a re-run after a code-irrelevant change is
  near-instant while any parameter change misses cleanly.
* :class:`Executor` — fans cells out over :mod:`multiprocessing` workers
  (``jobs=1`` is a deterministic in-process serial fallback) and collects
  per-cell wall-clock timings into a :class:`RunSummary`.

Fault tolerance (the scheduling-loop analogy: recover the *mis-scheduled
unit*, never squash the whole pipeline):

* Workers never let exceptions escape — every attempt produces a
  :class:`CellOutcome` (ok / error / timeout / killed, with the exception
  type, message, traceback and attempt count).
* Per-cell wall-clock timeouts (``cell_timeout`` or the
  ``REPRO_CELL_TIMEOUT`` environment variable) are enforced by the
  dispatch loop; a pool hosting an expired cell is terminated and
  respawned, and innocent in-flight cells are re-queued without burning
  one of their retries.
* Abrupt worker death (OOM kill, ``os._exit``) is detected by watching
  worker pids/exit codes.  Because a shared pool cannot say *which* cell
  killed the worker, the in-flight set is re-run one cell at a time
  ("suspect isolation") so the culprit is identified deterministically
  and charged the retry, while bystanders complete unharmed.
* Failed attempts are retried up to ``max_retries`` times with
  exponential backoff; a plain exception that survives every pool retry
  gets one final **in-process** attempt, so a flaky pickling/pool issue
  degrades to ``jobs=1`` behavior instead of failing the cell.
* Completed cells are flushed to the :class:`ResultCache` (or, when
  caching is off, to an append-only :class:`RunCheckpoint` JSONL file —
  ``checkpoint=`` / ``REPRO_CHECKPOINT``) *as they finish*, so a re-run
  after a crash resumes from the survivors instead of restarting.
* Cells that exhaust every recovery path are returned as *absent* from
  ``run_cells`` results (``run_grid`` substitutes :class:`FailedStats`
  so figure math propagates NaN and tables render ``FAILED``), and are
  summarized in a :class:`FailureReport`.  ``fail_fast=True`` raises
  :class:`CellFailedError` at the first lost cell instead.

Deterministic fault *injection* for exercising all of the above lives in
:mod:`repro.experiments.faults` (``REPRO_FAULT_INJECT``).

Determinism contract: the seed travels with the cell, never with the
worker.  Each worker regenerates the trace from ``(profile, num_insts,
seed)`` and runs the same pure-Python simulation, so serial and parallel
runs are bit-identical and results can be assembled in input order
regardless of completion order.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import sys
import time
import traceback as traceback_module
import multiprocessing
import signal
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from multiprocessing import Pool
from pathlib import Path
from typing import (Any, AsyncIterator, Callable, Dict, Iterable, List,
                    Optional, Sequence, TextIO, Tuple)

from repro.core import MachineConfig, SimStats, simulate
from repro.core.pipeline import DeadlockError
from repro.workloads import generate_trace, get_profile, profile_names
from repro.workloads.trace import Trace

#: Default dynamic instruction budget per benchmark.  Small enough for a
#: pure-Python cycle simulator, large enough that the scheduler shapes are
#: stable (the paper simulates billions on native hardware; we match
#: shapes, not absolute counts).
DEFAULT_INSTS = 10_000

#: Bump when the cache entry layout or the meaning of a key changes.
#: 2: ``max_cycles`` joined the cell key.
#: 3: scheduler-observability counters joined ``SimStats`` (older entries
#:    would load with those fields silently zero).
#: 4: ``backend`` joined ``MachineConfig`` and is deliberately left out
#:    of the key — the backends are parity-tested bit-identical
#:    (tests/test_backend_parity.py), so both share one cached result.
CACHE_SCHEMA = 4

#: Per-process trace cache; workers inherit (fork) or refill (spawn) it.
_trace_cache: Dict[Tuple[str, int, int], Trace] = {}

#: Poll interval of the parallel dispatch loop, seconds.
_POLL_SECONDS = 0.005


def _pool_worker_init() -> None:
    """Reset signal state in a fresh pool worker.

    Workers forked from an asyncio host inherit its installed signal
    handlers and wakeup fd, which makes ``Pool.terminate()``'s SIGTERM
    a no-op Python callback instead of a kill — the worker survives and
    ``Pool.join()`` blocks forever (exactly the drain hang an async
    server must never have).  Restore the default disposition so
    terminate means terminate; ignore SIGINT so a ^C on the host is not
    amplified by every worker.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread / closed fd
        pass


def workload_trace(benchmark: str, num_insts: int = DEFAULT_INSTS,
                   seed: int = 1) -> Trace:
    """Return (and cache in-process) the synthetic trace for *benchmark*."""
    key = (benchmark, num_insts, seed)
    if key not in _trace_cache:
        _trace_cache[key] = generate_trace(
            get_profile(benchmark), num_insts, seed=seed)
    return _trace_cache[key]


# ---------------------------------------------------------------------------
# Cells and cache keys
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimCell:
    """One independent simulation in an experiment grid.

    ``max_cycles`` bounds the simulated cycle count per cell (the
    pipeline's deadlock watchdog still fires independently; this is the
    hard truncation bound passed through to
    :func:`repro.core.pipeline.simulate`).
    """

    benchmark: str
    label: str
    config: MachineConfig
    num_insts: int = DEFAULT_INSTS
    seed: int = 1
    max_cycles: Optional[int] = None

    @property
    def name(self) -> str:
        return f"{self.benchmark}/{self.label}"

    def trace(self) -> Trace:
        return workload_trace(self.benchmark, self.num_insts, self.seed)


@dataclass(frozen=True)
class CellInstrumentation:
    """Observability knobs that travel with a cell to its worker.

    ``trace_dir`` — write one JSONL stage-event trace per cell (named
    ``<benchmark>__<label>.jsonl``), truncated after ``trace_limit``
    events.  ``profile_dir`` — run each cell under :mod:`cProfile` and
    dump one ``.prof`` file per cell.  Both force a real simulation (the
    cache is not consulted — a cached result has no events to replay),
    though fresh results are still written back.
    """

    trace_dir: Optional[str] = None
    trace_limit: Optional[int] = None
    profile_dir: Optional[str] = None


#: SimCell fields deliberately left out of :func:`cell_key`, with why.
#: simlint's SL005 rule enforces that every other field is hashed, and
#: that entries here never drift out of sync with the dataclass.
#:
#: * ``label`` — pure presentation: the column header a result is shown
#:   under.  Two cells with different labels but identical parameters
#:   *should* share one cached simulation.
CACHE_KEY_EXCLUDED = frozenset({"label"})


def _cell_filename(cell: SimCell) -> str:
    """A filesystem-safe stem for per-cell artifact files."""
    name = f"{cell.benchmark}__{cell.label}"
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in name)


def cell_key(cell: SimCell) -> str:
    """Stable content hash identifying *cell*'s result.

    Hashes the full machine configuration and the *contents* of the
    workload profile (not just its name), so editing a profile or any
    config field invalidates exactly the affected cells.  Code changes
    are deliberately not part of the key — bump :data:`CACHE_SCHEMA`
    when simulator semantics change.
    """
    config = asdict(cell.config)
    # The simulation kernel is not part of the result's identity: the
    # backends are parity-tested bit-identical (CACHE_SCHEMA 4), so a
    # numpy-backed run may satisfy a python-backed request and vice
    # versa.  Were it hashed, every --backend flip would cold-start the
    # whole grid for identical numbers.
    del config["backend"]
    payload = {
        "schema": CACHE_SCHEMA,
        "config": config,
        "profile": asdict(get_profile(cell.benchmark)),
        "num_insts": cell.num_insts,
        "seed": cell.seed,
        "max_cycles": cell.max_cycles,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Content-addressed on-disk store of :class:`SimStats`.

    Entries are JSON files named by :func:`cell_key`, sharded one level
    deep to keep directories small.  Writes are atomic (tmp + rename) so
    concurrent runs sharing a cache directory never read torn entries.
    Entries that fail to parse (torn by a crash mid-write outside the
    atomic path, or written by an incompatible :class:`SimStats` layout)
    are quarantined — renamed to ``*.corrupt`` — so they stop shadowing
    the slot and miss forever.

    ``max_entries`` (or ``REPRO_CACHE_MAX_ENTRIES``) bounds the store:
    every :meth:`put` that pushes the entry count past the capacity
    evicts the least-recently-used entries (recency is file mtime — a
    :meth:`get` hit touches its entry, so a shared read-through tier
    keeps hot cells resident).  Evictions are counted per instance and
    accumulated across processes in an ``evictions.json`` sidecar, which
    ``repro-sim cache info`` and the service ``/metrics`` endpoint
    report.  ``max_entries=None`` (the default) keeps the historical
    unbounded behavior.
    """

    #: Sidecar (at the cache root, outside the ``*/*.json`` entry glob)
    #: accumulating the eviction count across processes, best-effort.
    EVICTIONS_FILE = "evictions.json"

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 max_entries: Optional[int] = None) -> None:
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        if max_entries is None:
            env = os.environ.get("REPRO_CACHE_MAX_ENTRIES")
            max_entries = int(env) if env else None
        self.max_entries = (max_entries
                            if max_entries and max_entries > 0 else None)
        self.hits = 0
        self.misses = 0
        #: Entries this instance evicted (the sidecar holds the total).
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.json"

    def get(self, key: str) -> Optional[SimStats]:
        """Return the cached stats for *key*, counting the hit or miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            stats = SimStats(**payload["stats"])
        except OSError:
            # Plain miss: no entry (or unreadable — nothing to salvage).
            self.misses += 1
            return None
        except (ValueError, TypeError, KeyError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU touch; losing the race is harmless
        except OSError:
            pass
        return stats

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a torn/incompatible entry aside (delete as a last resort)."""
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, key: str, cell: SimCell, stats: SimStats) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "benchmark": cell.benchmark,
            "label": cell.label,
            "num_insts": cell.num_insts,
            "seed": cell.seed,
            "stats": asdict(stats),
        }
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        if self.max_entries is not None:
            self._enforce_capacity()

    def _enforce_capacity(self) -> None:
        """Evict least-recently-used entries beyond ``max_entries``."""
        entries = self.entries()
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        by_age: List[Tuple[int, Path]] = []
        for path in entries:
            try:
                by_age.append((path.stat().st_mtime_ns, path))
            except OSError:
                continue  # concurrently removed: already gone
        by_age.sort()
        evicted = 0
        for _mtime, path in by_age[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
        if evicted:
            self.evictions += evicted
            self._bump_evictions_total(evicted)

    def _evictions_total_path(self) -> Path:
        return self.root / self.EVICTIONS_FILE

    def evictions_total(self) -> int:
        """Evictions accumulated across every process, best-effort."""
        try:
            payload = json.loads(self._evictions_total_path().read_text())
            return int(payload["evictions"])
        except (OSError, ValueError, TypeError, KeyError):
            return 0

    def _bump_evictions_total(self, count: int) -> None:
        # Read-modify-write with an atomic replace: concurrent evictors
        # may lose increments, which only ever under-counts — acceptable
        # for an operational metric.
        total = self.evictions_total() + count
        path = self._evictions_total_path()
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(json.dumps({"evictions": total}))
            tmp.replace(path)
        except OSError:
            pass

    def info(self) -> Dict[str, Any]:
        """Capacity/occupancy/eviction snapshot (for CLI and /metrics)."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "size_bytes": self.size_bytes(),
            "capacity": self.max_entries,
            "evictions": self.evictions_total(),
            "hits": self.hits,
            "misses": self.misses,
        }

    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def size_bytes(self) -> int:
        # Entries may be unlinked concurrently by another process (a
        # parallel `cache clear`); a vanished file simply contributes 0.
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every cache entry; return how many were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        for shard in self.root.glob("*"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (e.g. quarantined entries) or raced
        return removed


class RunCheckpoint:
    """Append-only JSONL checkpoint of completed cells, for cache-less runs.

    When result caching is disabled, the executor flushes each completed
    cell here as it finishes; a re-run after a crash loads the file and
    treats recorded cells as hits, so only the unfinished (or failed)
    cells are simulated again.  Torn tail lines from a crashed writer are
    skipped on load.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._results: Dict[str, SimStats] = {}
        self._load()

    def _load(self) -> None:
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("schema") != CACHE_SCHEMA:
                    continue
                self._results[payload["key"]] = SimStats(**payload["stats"])
            except (ValueError, TypeError, KeyError):
                continue

    def get(self, key: str) -> Optional[SimStats]:
        return self._results.get(key)

    def append(self, key: str, cell: SimCell, stats: SimStats) -> None:
        self._results[key] = stats
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "cell": cell.name,
            "stats": asdict(stats),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()

    def __len__(self) -> int:
        return len(self._results)


# ---------------------------------------------------------------------------
# Outcomes and failure reporting
# ---------------------------------------------------------------------------

@dataclass
class CellOutcome:
    """What happened to one cell across all of its attempts.

    ``status`` is ``"ok"``, ``"error"`` (the simulation raised),
    ``"timeout"`` (exceeded the per-cell wall-clock limit) or
    ``"killed"`` (the worker process died while running the cell).
    ``details`` carries typed exception payloads — for
    :class:`~repro.core.pipeline.DeadlockError`, the ``cycle`` and
    ``pending`` snapshot.  ``via_fallback`` marks results obtained by the
    final in-process serial attempt after the pool kept failing.
    ``via_cache`` marks outcomes resolved from the result cache (or a
    run checkpoint) without simulating — only streamed interfaces
    (``on_outcome`` / :meth:`Executor.run_async`) ever see these;
    ``attempts`` is 0 for them.
    """

    status: str
    stats: Optional[SimStats] = None
    error_type: str = ""
    error: str = ""
    traceback: str = ""
    details: Optional[dict] = None
    attempts: int = 1
    seconds: float = 0.0
    via_fallback: bool = False
    via_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self) -> str:
        if self.ok:
            return f"ok after {self.attempts} attempt(s)"
        what = self.status
        if self.error_type:
            what += f":{self.error_type}"
        if self.error:
            what += f" ({self.error})"
        return f"{what} after {self.attempts} attempt(s)"


@dataclass
class FailureReport:
    """Every cell lost in a run (or session), with its final outcome."""

    entries: List[Tuple[str, CellOutcome]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def render(self) -> str:
        lines = [f"{len(self.entries)} cell(s) FAILED:"]
        for name, outcome in self.entries:
            lines.append(f"  {name}: {outcome.describe()}")
        return "\n".join(lines)


class CellFailedError(RuntimeError):
    """Raised in fail-fast mode when a cell exhausts every recovery path."""

    def __init__(self, cell: SimCell, outcome: CellOutcome) -> None:
        super().__init__(f"{cell.name}: {outcome.describe()}")
        self.cell = cell
        self.outcome = outcome

    def __reduce__(self) -> Tuple[type, tuple]:
        # Default exception pickling would call CellFailedError(message)
        # and crash on the missing arguments (SL003 / the DeadlockError
        # bug); rebuild from the full payload instead.
        return (type(self), (self.cell, self.outcome))


class _NanRow(dict):
    """Dict whose missing keys read as NaN (for FailedStats breakdowns)."""

    def __missing__(self, key: object) -> float:
        return float("nan")


class FailedStats:
    """Stand-in for :class:`SimStats` when a cell could not be simulated.

    Every attribute reads as NaN, so ratio math in the figure builders
    propagates the failure instead of raising ``KeyError``/``ZeroDivision``
    — and :func:`repro.analysis.reporting.render_table` renders the NaN
    cells as ``FAILED``.
    """

    def __init__(self, cell_name: str,
                 outcome: Optional[CellOutcome] = None) -> None:
        self.cell_name = cell_name
        self.outcome = outcome
        self.failed = True

    def __getattr__(self, name: str) -> float:
        if name.startswith("_"):
            raise AttributeError(name)
        return float("nan")

    def grouping_breakdown(self) -> Dict[str, float]:
        return _NanRow()

    def summary(self) -> str:
        return f"{self.cell_name}: FAILED"

    def __repr__(self) -> str:
        return f"FailedStats({self.cell_name!r})"


# ---------------------------------------------------------------------------
# Run summary / instrumentation
# ---------------------------------------------------------------------------

@dataclass
class RunSummary:
    """Timing, cache and failure accounting for one :meth:`Executor.run_cells`."""

    jobs: int = 1
    cells: int = 0
    simulated: int = 0
    cache_hits: int = 0
    failed: int = 0
    #: Worker pools terminated and respawned (timeouts / worker deaths).
    respawns: int = 0
    wall_seconds: float = 0.0
    #: Sum of per-cell simulation times — the serial-equivalent cost.
    sim_seconds: float = 0.0
    #: Per-cell wall-clock, ``"benchmark/label" -> seconds``.
    cell_seconds: Dict[str, float] = field(default_factory=dict)
    #: One human-readable line per lost cell.
    failures: List[str] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0

    def merge(self, other: "RunSummary") -> None:
        """Fold *other* into this summary (for multi-grid sessions)."""
        self.cells += other.cells
        self.simulated += other.simulated
        self.cache_hits += other.cache_hits
        self.failed += other.failed
        self.respawns += other.respawns
        self.wall_seconds += other.wall_seconds
        self.sim_seconds += other.sim_seconds
        self.cell_seconds.update(other.cell_seconds)
        self.failures.extend(other.failures)

    @property
    def speedup(self) -> float:
        """Serial-equivalent sim time over actual wall time.

        0.0 when nothing was simulated — an all-cache-hit (or all-failed)
        run has no simulation to speed up, and pretending 1.0x would be
        dishonest.
        """
        if self.simulated == 0 or self.wall_seconds <= 0.0:
            return 0.0
        return self.sim_seconds / self.wall_seconds

    def render(self) -> str:
        line = (f"executor: {self.cells} cells | {self.simulated} simulated"
                f", {self.cache_hits} cache hits"
                f" ({100.0 * self.hit_rate:.1f}% hit rate)")
        if self.failed:
            line += f", {self.failed} FAILED"
        line += f" | jobs={self.jobs} wall={self.wall_seconds:.2f}s"
        if self.simulated:
            line += (f" sim={self.sim_seconds:.2f}s"
                     f" speedup={self.speedup:.1f}x")
        elif self.cells and self.cache_hits == self.cells:
            line += " (all cached)"
        if self.respawns:
            line += f" pool-respawns={self.respawns}"
        for failure in self.failures:
            line += f"\n  FAILED {failure}"
        return line


# ---------------------------------------------------------------------------
# The worker entry point
# ---------------------------------------------------------------------------

def _simulate_cell(payload: Tuple) -> Tuple[int, CellOutcome]:
    """Worker entry point: run one cell attempt, never letting an
    exception escape (an escaped exception would abort the whole pool
    stream; a structured :class:`CellOutcome` keeps failure per-cell).

    *payload* is ``(index, cell, attempt)`` or, for instrumented runs,
    ``(index, cell, attempt, CellInstrumentation)``.
    """
    index, cell, attempt = payload[:3]
    instr = payload[3] if len(payload) > 3 else None
    start = time.perf_counter()
    sink = None
    profiler = None
    try:
        # Deterministic fault injection, active only when the environment
        # variable is set (see repro.experiments.faults).
        if os.environ.get("REPRO_FAULT_INJECT"):
            from repro.experiments.faults import maybe_inject
            maybe_inject(cell.name, attempt)
        trace = cell.trace()
        if instr is not None and instr.trace_dir:
            from repro.trace.sink import JsonlTraceSink
            sink = JsonlTraceSink(
                Path(instr.trace_dir) / f"{_cell_filename(cell)}.jsonl",
                limit=instr.trace_limit)
        if instr is not None and instr.profile_dir:
            import cProfile
            profiler = cProfile.Profile()
        sim_start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        try:
            stats = simulate(trace, cell.config, max_cycles=cell.max_cycles,
                             sink=sink)
        finally:
            if profiler is not None:
                profiler.disable()
                prof_dir = Path(instr.profile_dir)
                prof_dir.mkdir(parents=True, exist_ok=True)
                profiler.dump_stats(
                    str(prof_dir / f"{_cell_filename(cell)}.prof"))
            if sink is not None:
                sink.close()
        return index, CellOutcome(
            status="ok", stats=stats, attempts=attempt,
            seconds=time.perf_counter() - sim_start)
    except Exception as exc:
        details = None
        if isinstance(exc, DeadlockError):
            details = {"cycle": exc.cycle, "pending": exc.pending}
        return index, CellOutcome(
            status="error", error_type=type(exc).__name__, error=str(exc),
            traceback=traceback_module.format_exc(), details=details,
            attempts=attempt, seconds=time.perf_counter() - start)


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class Executor:
    """Runs simulation cells, optionally in parallel and through a cache.

    ``jobs=None`` means one worker per CPU; ``jobs=1`` runs every cell
    in-process (the deterministic serial fallback — no pool, no pickling).
    ``cache=None`` disables result caching.  ``progress=True`` writes one
    line per completed cell to *stream* (default stderr).

    Fault-tolerance knobs:

    * ``cell_timeout`` — per-cell wall-clock limit in seconds (default:
      ``REPRO_CELL_TIMEOUT`` or unlimited).  Enforced only by the
      parallel dispatch loop; a serial in-process cell cannot be
      preempted.
    * ``max_retries`` — attempts beyond the first for a failed cell
      (timeouts and worker deaths included).
    * ``retry_backoff`` — base of the exponential backoff between
      attempts, seconds (``backoff * 2**(attempt-1)``).
    * ``serial_fallback`` — after pool retries are exhausted, give plain
      errors one last in-process attempt (rescues pool/pickling flakes).
    * ``fail_fast`` — raise :class:`CellFailedError` at the first lost
      cell instead of degrading.
    * ``start_method`` — multiprocessing start method for the pool
      (default: ``REPRO_MP_START_METHOD`` or the platform default).
      Multi-threaded hosts (the job service) must use ``"spawn"``;
      forking under threads can produce an unkillable worker.
    * ``checkpoint`` — JSONL path for :class:`RunCheckpoint` (default:
      ``REPRO_CHECKPOINT``); used only when ``cache`` is None, since the
      cache already persists per-cell results as they finish.

    Observability knobs (see :class:`CellInstrumentation`):

    * ``trace_dir`` / ``trace_limit`` — write one JSONL stage-event
      trace per cell (replayable through ``repro-sim trace``).
    * ``profile_dir`` — run each cell under :mod:`cProfile`, one
      ``.prof`` file per cell (inspect with ``python -m pstats``).

    ``backend`` overrides the simulation kernel of every grid config
    (``None`` respects each config's own ``backend`` field).  Safe to
    flip freely: the kernels are parity-tested bit-identical and share
    one cache entry, so the override changes wall-clock only.

    Either knob forces real simulations: cache lookups are skipped (a
    cached result has no events to replay), but fresh results are still
    written back to the cache.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: bool = False, stream: Optional[TextIO] = None,
                 cell_timeout: Optional[float] = None,
                 max_retries: int = 2,
                 retry_backoff: float = 0.25,
                 serial_fallback: bool = True,
                 fail_fast: bool = False,
                 checkpoint: Optional[os.PathLike] = None,
                 trace_dir: Optional[os.PathLike] = None,
                 trace_limit: Optional[int] = None,
                 profile_dir: Optional[os.PathLike] = None,
                 backend: Optional[str] = None,
                 start_method: Optional[str] = None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.cache = cache
        self.progress = progress
        self.stream = stream
        if cell_timeout is None:
            env = os.environ.get("REPRO_CELL_TIMEOUT")
            cell_timeout = float(env) if env else None
        self.cell_timeout = (cell_timeout
                             if cell_timeout and cell_timeout > 0 else None)
        self.max_retries = max(0, max_retries)
        self.retry_backoff = max(0.0, retry_backoff)
        self.serial_fallback = serial_fallback
        self.fail_fast = fail_fast
        if checkpoint is None and cache is None:
            checkpoint = os.environ.get("REPRO_CHECKPOINT") or None
        self.checkpoint = (RunCheckpoint(checkpoint)
                           if checkpoint is not None and cache is None
                           else None)
        self.instrumentation = (
            CellInstrumentation(
                trace_dir=str(trace_dir) if trace_dir else None,
                trace_limit=trace_limit,
                profile_dir=str(profile_dir) if profile_dir else None)
            if trace_dir or profile_dir else None)
        if backend is not None:
            from repro.core.backend import get_backend
            get_backend(backend)  # fail fast on unknown names
        #: Simulation-kernel override applied to every grid config
        #: (``None`` = respect each config's own ``backend`` field).
        self.backend = backend
        #: Multiprocessing start method for the worker pool.  ``None``
        #: keeps the platform default (fork on Linux: fastest, inherits
        #: warm trace caches).  Multi-threaded hosts — the job service in
        #: particular — must pass ``"spawn"``: forking while other
        #: threads run can copy a held lock into the child, leaving a
        #: worker that can never finish nor be join()ed.
        if start_method is None:
            start_method = (os.environ.get("REPRO_MP_START_METHOD")
                            or None)
        self.start_method = start_method
        #: Summary of the most recent :meth:`run_cells` call.
        self.last_summary: Optional[RunSummary] = None
        #: Per-cell outcomes (simulated or failed; hits are not re-run)
        #: of the most recent :meth:`run_cells` call.
        self.last_outcomes: Dict[SimCell, CellOutcome] = {}
        #: Failures of the most recent call / of the whole session.
        self.last_failures: List[Tuple[str, CellOutcome]] = []
        self.total_failures: List[Tuple[str, CellOutcome]] = []
        #: Running total over every call on this executor.
        self.total_summary = RunSummary(jobs=self.jobs)

    # -- progress -----------------------------------------------------------

    def _emit(self, done: int, total: int, cell: SimCell,
              text: str) -> None:
        if not self.progress:
            return
        stream = self.stream if self.stream is not None else sys.stderr
        print(f"[{done}/{total}] {cell.name} {text}",
              file=stream, flush=True)

    def failure_report(self) -> FailureReport:
        """Every cell lost across this executor's lifetime (falsy if none)."""
        return FailureReport(list(self.total_failures))

    def counters(self) -> Dict[str, float]:
        """Live snapshot of this executor's session counters.

        Read at call time from :attr:`total_summary` and the attached
        :class:`ResultCache`, so callers reporting on a whole session
        (the bench harness, ``repro perf``) must call this *after* the
        work has run — a snapshot taken at setup is permanently stale.
        ``cache_gets_hit``/``cache_gets_missed`` come straight from the
        cache's own get() accounting and are absent when caching is off.
        """
        summary = self.total_summary
        counters: Dict[str, float] = {
            "jobs": self.jobs,
            "cells": summary.cells,
            "simulated": summary.simulated,
            "cache_hits": summary.cache_hits,
            "failed": summary.failed,
            "respawns": summary.respawns,
            "hit_rate": summary.hit_rate,
            "wall_seconds": summary.wall_seconds,
            "sim_seconds": summary.sim_seconds,
        }
        if self.cache is not None:
            counters["cache_gets_hit"] = self.cache.hits
            counters["cache_gets_missed"] = self.cache.misses
        return counters

    # -- main entry points --------------------------------------------------

    def run_cells(self, cells: Iterable[SimCell],
                  on_outcome: Optional[
                      Callable[[SimCell, CellOutcome], None]] = None,
                  stop: Optional[Callable[[], bool]] = None
                  ) -> Dict[SimCell, SimStats]:
        """Simulate every distinct cell; return ``{cell: stats}``.

        Cache (and checkpoint) hits are resolved up front; only misses
        reach the workers.  Results are keyed by cell, so callers
        assemble tables in their own order and serial/parallel runs are
        bit-identical.  Cells that exhaust every recovery path are
        *absent* from the returned mapping — consult
        :attr:`last_outcomes` / :meth:`failure_report` — unless
        ``fail_fast`` is set, in which case :class:`CellFailedError` is
        raised at the first loss.

        ``on_outcome`` is invoked with ``(cell, outcome)`` as each cell
        resolves — cache/checkpoint hits included (as ``via_cache``
        outcomes) — which is the streaming hook :meth:`run_async` and
        the job service build on.  ``stop`` is polled by the dispatch
        loops; once it returns True no further cell is started and the
        call returns with the unresolved cells simply absent.  Both
        default to None and leave the batch path bit-identical.
        """
        start = time.perf_counter()
        ordered = list(dict.fromkeys(cells))
        summary = RunSummary(jobs=self.jobs, cells=len(ordered))
        results: Dict[SimCell, SimStats] = {}
        outcomes: Dict[SimCell, CellOutcome] = {}
        failures: List[Tuple[str, CellOutcome]] = []
        pending: List[Tuple[int, SimCell, Optional[str]]] = []
        done = 0
        use_store = self.cache is not None or self.checkpoint is not None
        for index, cell in enumerate(ordered):
            key = cell_key(cell) if use_store else None
            # An instrumented run must actually simulate — a cached result
            # has no events to replay — so hits are skipped (results are
            # still written back below).
            if key is not None and self.instrumentation is None:
                stats = (self.cache.get(key) if self.cache is not None
                         else self.checkpoint.get(key))
                if stats is not None:
                    results[cell] = stats
                    summary.cache_hits += 1
                    done += 1
                    self._emit(done, len(ordered), cell, "cached")
                    if on_outcome is not None:
                        on_outcome(cell, CellOutcome(
                            status="ok", stats=stats, attempts=0,
                            via_cache=True))
                    continue
            pending.append((index, cell, key))

        by_index = {index: (cell, key) for index, cell, key in pending}

        def record(index: int, outcome: CellOutcome) -> None:
            nonlocal done
            cell, key = by_index[index]
            outcomes[cell] = outcome
            if outcome.ok:
                results[cell] = outcome.stats
                summary.simulated += 1
                summary.sim_seconds += outcome.seconds
                summary.cell_seconds[cell.name] = outcome.seconds
                if key is not None:
                    if self.cache is not None:
                        self.cache.put(key, cell, outcome.stats)
                    else:
                        self.checkpoint.append(key, cell, outcome.stats)
                text = f"{outcome.seconds:.2f}s"
            else:
                summary.failed += 1
                summary.failures.append(
                    f"{cell.name}: {outcome.describe()}")
                failures.append((cell.name, outcome))
                text = f"FAILED ({outcome.status})"
            done += 1
            self._emit(done, len(ordered), cell, text)
            if on_outcome is not None:
                on_outcome(cell, outcome)
            if self.fail_fast and not outcome.ok:
                raise CellFailedError(cell, outcome)

        try:
            if pending:
                work = [(index, cell) for index, cell, _key in pending]
                if self.jobs == 1 or len(work) == 1:
                    self._run_serial(work, record, stop)
                else:
                    self._run_pool(work, record, summary, stop)
        finally:
            summary.wall_seconds = time.perf_counter() - start
            self.last_summary = summary
            self.last_outcomes = outcomes
            self.last_failures = failures
            self.total_failures.extend(failures)
            self.total_summary.merge(summary)
        return results

    def run_grid(self, configs: Dict[str, MachineConfig],
                 benchmarks: Optional[Sequence[str]] = None,
                 num_insts: int = DEFAULT_INSTS,
                 seed: int = 1,
                 max_cycles: Optional[int] = None
                 ) -> Dict[str, Dict[str, SimStats]]:
        """Simulate every benchmark under every named configuration.

        Returns ``{benchmark: {config_label: SimStats}}`` — the shape
        every figure/table builder consumes.  A cell lost to a
        persistent fault appears as a :class:`FailedStats` placeholder
        (NaN-valued, rendered as ``FAILED``) rather than KeyError-ing
        the whole grid away.
        """
        names = list(benchmarks) if benchmarks else list(profile_names())
        if self.backend is not None:
            configs = {label: replace(config, backend=self.backend)
                       for label, config in configs.items()}
        cells = [SimCell(benchmark, label, config, num_insts, seed,
                         max_cycles)
                 for benchmark in names
                 for label, config in configs.items()]
        stats = self.run_cells(cells)
        grid: Dict[str, Dict[str, SimStats]] = {}
        for benchmark in names:
            row: Dict[str, SimStats] = {}
            for label, config in configs.items():
                cell = SimCell(benchmark, label, config, num_insts, seed,
                               max_cycles)
                if cell in stats:
                    row[label] = stats[cell]
                else:
                    row[label] = FailedStats(cell.name,
                                             self.last_outcomes.get(cell))
            grid[benchmark] = row
        return grid

    async def run_async(self, cells: Iterable[SimCell],
                        stop: Optional[Callable[[], bool]] = None
                        ) -> AsyncIterator[Tuple[SimCell, CellOutcome]]:
        """Async session: yield ``(cell, outcome)`` as cells complete.

        The blocking batch machinery (:meth:`run_cells` — pool dispatch,
        retries, timeouts, cache writes) runs unchanged on a worker
        thread; outcomes are handed to the running event loop as they
        resolve, so an asyncio server can stream per-cell progress while
        the fleet simulates.  Cache/checkpoint hits are yielded too,
        flagged ``via_cache``.  ``stop`` is polled by the dispatch loop
        (see :meth:`run_cells`); after it trips, unstarted cells are
        never yielded.

        One executor must not host two concurrent sessions — the
        summary/outcome bookkeeping is per-call, not thread-safe.  The
        job service gives each concurrent session its own executor (they
        share one :class:`ResultCache`, which is multi-process safe).
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        sentinel = object()

        def emit(item: object) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, item)
            except RuntimeError:
                # The loop closed under us (consumer torn down while the
                # worker thread drains); nothing left to deliver to.
                pass

        def runner() -> None:
            try:
                self.run_cells(
                    cells,
                    on_outcome=lambda cell, outcome: emit((cell, outcome)),
                    stop=stop)
            finally:
                emit(sentinel)

        future = loop.run_in_executor(None, runner)
        while True:
            item = await queue.get()
            if item is sentinel:
                break
            yield item  # type: ignore[misc]
        # Surface exceptions (fail_fast's CellFailedError in particular).
        await future

    # -- serial path --------------------------------------------------------

    def _payload(self, index: int, cell: SimCell, attempt: int) -> Tuple:
        if self.instrumentation is None:
            return (index, cell, attempt)
        return (index, cell, attempt, self.instrumentation)

    def _run_serial(self, work: List[Tuple[int, SimCell]],
                    record: Callable[[int, CellOutcome], None],
                    stop: Optional[Callable[[], bool]] = None) -> None:
        """In-process execution with the same retry budget as the pool.

        No pool, no pickling — and no preemption, so ``cell_timeout``
        cannot be enforced here (a hung cell hangs the run, exactly as
        any direct :func:`simulate` call would).  ``stop`` is polled
        between cells and between retry attempts.
        """
        for index, cell in work:
            if stop is not None and stop():
                return
            outcome = None
            for attempt in range(1, self.max_retries + 2):
                if attempt > 1:
                    if stop is not None and stop():
                        return
                    if self.retry_backoff > 0:
                        time.sleep(
                            self.retry_backoff * (2 ** (attempt - 2)))
                _i, outcome = _simulate_cell(
                    self._payload(index, cell, attempt))
                if outcome.ok:
                    break
            record(index, outcome)

    # -- parallel path ------------------------------------------------------

    def _spawn_pool(self, jobs: int) -> Tuple[Any, set]:
        # The pool is typed Any: worker-death detection must peek at the
        # undocumented `_pool` worker list, which typeshed hides.
        if self.start_method is not None:
            context = multiprocessing.get_context(self.start_method)
            pool = context.Pool(processes=jobs,
                                initializer=_pool_worker_init)
        else:
            pool = Pool(processes=jobs, initializer=_pool_worker_init)
        pids = {proc.pid for proc in pool._pool}  # type: ignore[attr-defined]
        return pool, pids

    @staticmethod
    def _pool_broken(pool: Any, pids: set) -> bool:
        """True if any worker died (nonzero exit, or the pool's
        maintenance thread already replaced it — the pid set changed)."""
        procs = list(pool._pool)
        if any(proc.exitcode not in (None, 0) for proc in procs):
            return True
        return {proc.pid for proc in procs} != pids

    def _backoff(self, attempt: int) -> float:
        return self.retry_backoff * (2 ** (attempt - 1))

    def _dispatch(self, pool: Any, inflight: Dict[int, list],
                  item: list) -> None:
        index, cell, attempt, _not_before = item
        deadline = (time.monotonic() + self.cell_timeout
                    if self.cell_timeout else None)
        result = pool.apply_async(
            _simulate_cell, (self._payload(index, cell, attempt),))
        inflight[index] = [result, cell, attempt, deadline]

    def _finish_parallel(self, index: int, cell: SimCell,
                         outcome: CellOutcome, todo: deque,
                         record: Callable[[int, CellOutcome], None]
                         ) -> None:
        """Handle a completed pool attempt: record, retry, or fall back."""
        if outcome.ok:
            record(index, outcome)
            return
        attempt = outcome.attempts
        if attempt <= self.max_retries:
            todo.append([index, cell, attempt + 1,
                         time.monotonic() + self._backoff(attempt)])
            return
        if self.serial_fallback and outcome.status == "error":
            # Last resort: one in-process attempt, so failures caused by
            # the pool itself (pickling, worker env) degrade to jobs=1
            # behavior instead of losing the cell.
            _i, final = _simulate_cell(
                self._payload(index, cell, attempt + 1))
            final.via_fallback = True
            record(index, final)
            return
        record(index, outcome)

    def _run_pool(self, work: List[Tuple[int, SimCell]],
                  record: Callable[[int, CellOutcome], None],
                  summary: RunSummary,
                  stop: Optional[Callable[[], bool]] = None) -> None:
        jobs = min(self.jobs, len(work))
        # Dispatch in trace-identity order so workers reuse their
        # per-process trace caches as much as possible.
        ordered = sorted(work, key=lambda item: (
            item[1].benchmark, item[1].num_insts, item[1].seed, item[0]))
        # Work items are [index, cell, attempt, not_before].
        todo = deque([index, cell, 1, 0.0] for index, cell in ordered)
        inflight: Dict[int, list] = {}
        # After a worker death the culprit is unknown; re-run the
        # in-flight set one cell at a time so the next death identifies
        # it unambiguously (and bystanders keep their retry budget).
        suspects: deque = deque()
        isolated: Optional[int] = None
        pool, pids = self._spawn_pool(jobs)
        try:
            while todo or suspects or inflight:
                if stop is not None and stop():
                    # Abandon everything not yet resolved: the pool is
                    # terminated by the finally clause and unresolved
                    # cells stay absent from the results.
                    return
                now = time.monotonic()
                # -- dispatch ------------------------------------------
                if suspects and not inflight:
                    item = suspects.popleft()
                    self._dispatch(pool, inflight, item)
                    isolated = item[0]
                elif not suspects and isolated is None:
                    while todo and len(inflight) < jobs:
                        picked = None
                        for position, item in enumerate(todo):
                            if item[3] <= now:
                                picked = position
                                break
                        if picked is None:
                            break
                        item = todo[picked]
                        del todo[picked]
                        self._dispatch(pool, inflight, item)
                # -- completions ---------------------------------------
                progressed = False
                for index in list(inflight):
                    entry = inflight[index]
                    if not entry[0].ready():
                        continue
                    progressed = True
                    del inflight[index]
                    if isolated == index:
                        isolated = None
                    cell, attempt = entry[1], entry[2]
                    try:
                        _i, outcome = entry[0].get()
                    except Exception as exc:
                        # Dispatch-side failure (e.g. the payload or the
                        # outcome failed to pickle).
                        outcome = CellOutcome(
                            status="error",
                            error_type=type(exc).__name__, error=str(exc),
                            traceback=traceback_module.format_exc(),
                            attempts=attempt)
                    self._finish_parallel(index, cell, outcome, todo,
                                          record)
                if progressed:
                    continue
                # -- worker death --------------------------------------
                if self._pool_broken(pool, pids):
                    pool.terminate()
                    pool.join()
                    if isolated is not None and isolated in inflight:
                        # The lone suspect killed its worker: charge it.
                        entry = inflight.pop(isolated)
                        index, cell, attempt = isolated, entry[1], entry[2]
                        isolated = None
                        if attempt <= self.max_retries:
                            suspects.append([index, cell, attempt + 1, 0.0])
                        else:
                            record(index, CellOutcome(
                                status="killed", error_type="WorkerDied",
                                error=("worker process died while "
                                       "simulating this cell"),
                                attempts=attempt))
                    else:
                        for index, entry in inflight.items():
                            suspects.append(
                                [index, entry[1], entry[2], 0.0])
                        inflight.clear()
                        isolated = None
                    summary.respawns += 1
                    pool, pids = self._spawn_pool(jobs)
                    continue
                # -- timeouts ------------------------------------------
                expired = [index for index, entry in inflight.items()
                           if entry[3] is not None and now >= entry[3]]
                if expired:
                    # A hung worker cannot be reclaimed individually;
                    # terminate the pool, requeue the innocents with
                    # their attempt budget intact, charge the expired.
                    pool.terminate()
                    pool.join()
                    for index in list(inflight):
                        entry = inflight.pop(index)
                        cell, attempt = entry[1], entry[2]
                        if index in expired:
                            if attempt <= self.max_retries:
                                todo.append([
                                    index, cell, attempt + 1,
                                    time.monotonic()
                                    + self._backoff(attempt)])
                            else:
                                record(index, CellOutcome(
                                    status="timeout",
                                    error_type="CellTimeout",
                                    error=(f"exceeded "
                                           f"{self.cell_timeout:.1f}s "
                                           f"wall-clock limit"),
                                    attempts=attempt))
                        else:
                            todo.appendleft([index, cell, attempt, 0.0])
                    isolated = None
                    summary.respawns += 1
                    pool, pids = self._spawn_pool(jobs)
                    continue
                time.sleep(_POLL_SECONDS)
        finally:
            pool.terminate()
            pool.join()


# ---------------------------------------------------------------------------
# Default executor
# ---------------------------------------------------------------------------

_default_executor: Optional[Executor] = None


def get_default_executor() -> Executor:
    """The executor used when an experiment is called without one.

    Serial and cache-less by default, so library calls and the test
    suite stay hermetic; the CLI and the benchmark harness install their
    own via :func:`set_default_executor`.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = Executor(jobs=1, cache=None)
    return _default_executor


def set_default_executor(executor: Optional[Executor]
                         ) -> Optional[Executor]:
    """Install *executor* as the default; return the previous one."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous
