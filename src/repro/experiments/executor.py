"""Parallel experiment execution engine with a persistent result cache.

Every figure/table in the reproduction is an embarrassingly-parallel grid
of independent ``(benchmark, config)`` simulations.  This module is the
single funnel those simulations flow through:

* :class:`SimCell` — one simulation: a benchmark trace specification
  (profile name, instruction budget, seed) plus a :class:`MachineConfig`
  and the label it carries in the result table.
* :class:`ResultCache` — a content-addressed on-disk store of
  :class:`~repro.core.stats.SimStats`, keyed by a stable hash of the
  machine configuration, the *workload profile contents*, the seed and
  the instruction budget, so a re-run after a code-irrelevant change is
  near-instant while any parameter change misses cleanly.
* :class:`Executor` — fans cells out over :mod:`multiprocessing` workers
  (``jobs=1`` is a deterministic in-process serial fallback) and collects
  per-cell wall-clock timings into a :class:`RunSummary`.

Determinism contract: the seed travels with the cell, never with the
worker.  Each worker regenerates the trace from ``(profile, num_insts,
seed)`` and runs the same pure-Python simulation, so serial and parallel
runs are bit-identical and results can be assembled in input order
regardless of completion order.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from dataclasses import asdict, dataclass, field
from multiprocessing import Pool
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import MachineConfig, SimStats, simulate
from repro.workloads import generate_trace, get_profile, profile_names
from repro.workloads.trace import Trace

#: Default dynamic instruction budget per benchmark.  Small enough for a
#: pure-Python cycle simulator, large enough that the scheduler shapes are
#: stable (the paper simulates billions on native hardware; we match
#: shapes, not absolute counts).
DEFAULT_INSTS = 10_000

#: Bump when the cache entry layout or the meaning of a key changes.
CACHE_SCHEMA = 1

#: Per-process trace cache; workers inherit (fork) or refill (spawn) it.
_trace_cache: Dict[Tuple[str, int, int], Trace] = {}


def workload_trace(benchmark: str, num_insts: int = DEFAULT_INSTS,
                   seed: int = 1) -> Trace:
    """Return (and cache in-process) the synthetic trace for *benchmark*."""
    key = (benchmark, num_insts, seed)
    if key not in _trace_cache:
        _trace_cache[key] = generate_trace(
            get_profile(benchmark), num_insts, seed=seed)
    return _trace_cache[key]


# ---------------------------------------------------------------------------
# Cells and cache keys
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimCell:
    """One independent simulation in an experiment grid."""

    benchmark: str
    label: str
    config: MachineConfig
    num_insts: int = DEFAULT_INSTS
    seed: int = 1

    @property
    def name(self) -> str:
        return f"{self.benchmark}/{self.label}"

    def trace(self) -> Trace:
        return workload_trace(self.benchmark, self.num_insts, self.seed)


def cell_key(cell: SimCell) -> str:
    """Stable content hash identifying *cell*'s result.

    Hashes the full machine configuration and the *contents* of the
    workload profile (not just its name), so editing a profile or any
    config field invalidates exactly the affected cells.  Code changes
    are deliberately not part of the key — bump :data:`CACHE_SCHEMA`
    when simulator semantics change.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "config": asdict(cell.config),
        "profile": asdict(get_profile(cell.benchmark)),
        "num_insts": cell.num_insts,
        "seed": cell.seed,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Content-addressed on-disk store of :class:`SimStats`.

    Entries are JSON files named by :func:`cell_key`, sharded one level
    deep to keep directories small.  Writes are atomic (tmp + rename) so
    concurrent runs sharing a cache directory never read torn entries.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None) -> None:
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key[2:]}.json"

    def get(self, key: str) -> Optional[SimStats]:
        """Return the cached stats for *key*, counting the hit or miss."""
        try:
            payload = json.loads(self._path(key).read_text())
            stats = SimStats(**payload["stats"])
        except (OSError, ValueError, TypeError, KeyError):
            # Missing, torn, or written by an incompatible SimStats layout.
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, cell: SimCell, stats: SimStats) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "benchmark": cell.benchmark,
            "label": cell.label,
            "num_insts": cell.num_insts,
            "seed": cell.seed,
            "stats": asdict(stats),
        }
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)

    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every cache entry; return how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        for shard in self.root.glob("*"):
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()
        return removed


# ---------------------------------------------------------------------------
# Run summary / instrumentation
# ---------------------------------------------------------------------------

@dataclass
class RunSummary:
    """Timing and cache accounting for one :meth:`Executor.run_cells`."""

    jobs: int = 1
    cells: int = 0
    simulated: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    #: Sum of per-cell simulation times — the serial-equivalent cost.
    sim_seconds: float = 0.0
    #: Per-cell wall-clock, ``"benchmark/label" -> seconds``.
    cell_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0

    def merge(self, other: "RunSummary") -> None:
        """Fold *other* into this summary (for multi-grid sessions)."""
        self.cells += other.cells
        self.simulated += other.simulated
        self.cache_hits += other.cache_hits
        self.wall_seconds += other.wall_seconds
        self.sim_seconds += other.sim_seconds
        self.cell_seconds.update(other.cell_seconds)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over actual wall time (parallelism plus
        cache hits both show up here)."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.sim_seconds / self.wall_seconds if self.simulated \
            else 1.0

    def render(self) -> str:
        line = (f"executor: {self.cells} cells | {self.simulated} simulated"
                f", {self.cache_hits} cache hits"
                f" ({100.0 * self.hit_rate:.1f}% hit rate)"
                f" | jobs={self.jobs} wall={self.wall_seconds:.2f}s")
        if self.simulated:
            line += (f" sim={self.sim_seconds:.2f}s"
                     f" speedup={self.speedup:.1f}x")
        return line


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

def _simulate_cell(payload: Tuple[int, SimCell]
                   ) -> Tuple[int, SimStats, float]:
    """Worker entry point: run one cell, timing the simulation proper."""
    index, cell = payload
    trace = cell.trace()
    start = time.perf_counter()
    stats = simulate(trace, cell.config)
    return index, stats, time.perf_counter() - start


class Executor:
    """Runs simulation cells, optionally in parallel and through a cache.

    ``jobs=None`` means one worker per CPU; ``jobs=1`` runs every cell
    in-process (the deterministic serial fallback — no pool, no pickling).
    ``cache=None`` disables result caching.  ``progress=True`` writes one
    line per completed cell to *stream* (default stderr).
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 progress: bool = False, stream=None) -> None:
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.cache = cache
        self.progress = progress
        self.stream = stream
        #: Summary of the most recent :meth:`run_cells` call.
        self.last_summary: Optional[RunSummary] = None
        #: Running total over every call on this executor.
        self.total_summary = RunSummary(jobs=self.jobs)

    def _emit(self, done: int, total: int, cell: SimCell,
              seconds: Optional[float]) -> None:
        if not self.progress:
            return
        stream = self.stream if self.stream is not None else sys.stderr
        timing = "cached" if seconds is None else f"{seconds:.2f}s"
        print(f"[{done}/{total}] {cell.name} {timing}",
              file=stream, flush=True)

    def run_cells(self, cells: Iterable[SimCell]
                  ) -> Dict[SimCell, SimStats]:
        """Simulate every distinct cell; return ``{cell: stats}``.

        Cache hits are resolved up front; only misses reach the workers.
        Results are keyed by cell, so callers assemble tables in their
        own order and serial/parallel runs are bit-identical.
        """
        start = time.perf_counter()
        ordered = list(dict.fromkeys(cells))
        summary = RunSummary(jobs=self.jobs, cells=len(ordered))
        results: Dict[SimCell, SimStats] = {}
        pending: List[Tuple[int, SimCell, Optional[str]]] = []
        done = 0
        for index, cell in enumerate(ordered):
            key = cell_key(cell) if self.cache is not None else None
            if key is not None:
                stats = self.cache.get(key)
                if stats is not None:
                    results[cell] = stats
                    summary.cache_hits += 1
                    done += 1
                    self._emit(done, len(ordered), cell, None)
                    continue
            pending.append((index, cell, key))

        def record(index: int, stats: SimStats, seconds: float) -> None:
            nonlocal done
            _, cell, key = by_index[index]
            results[cell] = stats
            summary.simulated += 1
            summary.sim_seconds += seconds
            summary.cell_seconds[cell.name] = seconds
            if key is not None:
                self.cache.put(key, cell, stats)
            done += 1
            self._emit(done, len(ordered), cell, seconds)

        by_index = {index: (index, cell, key)
                    for index, cell, key in pending}
        if pending:
            if self.jobs == 1 or len(pending) == 1:
                for index, cell, _key in pending:
                    record(*_simulate_cell((index, cell)))
            else:
                # Sort by trace identity so chunks share per-worker trace
                # caches; results come back keyed by index, so completion
                # order never affects the assembled tables.
                pending.sort(key=lambda entry: (
                    entry[1].benchmark, entry[1].num_insts,
                    entry[1].seed, entry[0]))
                jobs = min(self.jobs, len(pending))
                chunksize = max(1, len(pending) // (jobs * 4))
                with Pool(processes=jobs) as pool:
                    outcomes = pool.imap_unordered(
                        _simulate_cell,
                        [(index, cell) for index, cell, _key in pending],
                        chunksize=chunksize)
                    for index, stats, seconds in outcomes:
                        record(index, stats, seconds)

        summary.wall_seconds = time.perf_counter() - start
        self.last_summary = summary
        self.total_summary.merge(summary)
        return results

    def run_grid(self, configs: Dict[str, MachineConfig],
                 benchmarks: Optional[Sequence[str]] = None,
                 num_insts: int = DEFAULT_INSTS,
                 seed: int = 1) -> Dict[str, Dict[str, SimStats]]:
        """Simulate every benchmark under every named configuration.

        Returns ``{benchmark: {config_label: SimStats}}`` — the shape
        every figure/table builder consumes.
        """
        names = list(benchmarks) if benchmarks else list(profile_names())
        cells = [SimCell(benchmark, label, config, num_insts, seed)
                 for benchmark in names
                 for label, config in configs.items()]
        stats = self.run_cells(cells)
        return {
            benchmark: {
                label: stats[SimCell(benchmark, label, config,
                                     num_insts, seed)]
                for label, config in configs.items()
            }
            for benchmark in names
        }


# ---------------------------------------------------------------------------
# Default executor
# ---------------------------------------------------------------------------

_default_executor: Optional[Executor] = None


def get_default_executor() -> Executor:
    """The executor used when an experiment is called without one.

    Serial and cache-less by default, so library calls and the test
    suite stay hermetic; the CLI and the benchmark harness install their
    own via :func:`set_default_executor`.
    """
    global _default_executor
    if _default_executor is None:
        _default_executor = Executor(jobs=1, cache=None)
    return _default_executor


def set_default_executor(executor: Optional[Executor]
                         ) -> Optional[Executor]:
    """Install *executor* as the default; return the previous one."""
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous
