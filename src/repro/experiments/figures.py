"""Regeneration of every table and figure in the paper's evaluation.

Each function returns an :class:`~repro.experiments.runner.ExperimentResult`
with one row per benchmark and the same series the paper plots.  Paper
reference values, where the text states them exactly, are included in the
notes so renders double as paper-vs-measured reports (EXPERIMENTS.md holds
the full comparison).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.depdist import characterize_distances
from repro.analysis.groupability import characterize_groupability
from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.experiments.executor import Executor
from repro.experiments.runner import (
    DEFAULT_INSTS,
    ExperimentResult,
    run_configs,
    workload_trace,
)
from repro.workloads import get_profile, profile_names


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> Sequence[str]:
    return list(benchmarks) if benchmarks else list(profile_names())


# ---------------------------------------------------------------------------
# Machine-independent characterizations
# ---------------------------------------------------------------------------

def figure6(benchmarks: Optional[Sequence[str]] = None,
            num_insts: int = DEFAULT_INSTS,
            seed: int = 1,
            executor: Optional[Executor] = None) -> ExperimentResult:
    """Figure 6: dependence edge distance between candidate pairs."""
    result = ExperimentResult(
        name="Figure 6",
        description=("dependence-edge distance from each value-generating "
                     "candidate to its nearest dependent candidate "
                     "(% of such heads; '% total insts' column matches the "
                     "figure's top row)"),
        notes=("paper: ~73% of heads have a potential tail on average; "
               "87% of gap's pairs and 54% of vortex's fall within the "
               "8-instruction scope"),
    )
    for name in _benchmarks(benchmarks):
        buckets = characterize_distances(workload_trace(name, num_insts,
                                                        seed))
        result.rows[name] = buckets.as_row()
    return result


def figure7(benchmarks: Optional[Sequence[str]] = None,
            num_insts: int = DEFAULT_INSTS,
            seed: int = 1,
            executor: Optional[Executor] = None) -> ExperimentResult:
    """Figure 7: instructions groupable into 2x and 8x MOPs."""
    result = ExperimentResult(
        name="Figure 7",
        description=("% of committed instructions groupable into MOPs "
                     "within the 8-instruction scope"),
        notes=("paper: 53~73% of instructions are candidates; 32.9% (2x) "
               "and 35.4% (8x) grouped on average; 2.2-3.0 insts per 8x "
               "MOP"),
    )
    for name in _benchmarks(benchmarks):
        trace = workload_trace(name, num_insts, seed)
        two = characterize_groupability(trace, mop_limit=2)
        eight = characterize_groupability(trace, mop_limit=8)
        result.rows[name] = {
            "candidates_%": 100.0 * two.candidate_fraction,
            "grouped_2x_%": 100.0 * two.grouped_fraction,
            "grouped_8x_%": 100.0 * eight.grouped_fraction,
            "avg_8x_size": eight.avg_mop_size,
        }
    return result


# ---------------------------------------------------------------------------
# Timing experiments
# ---------------------------------------------------------------------------

def figure13(benchmarks: Optional[Sequence[str]] = None,
             num_insts: int = DEFAULT_INSTS,
             seed: int = 1,
             executor: Optional[Executor] = None) -> ExperimentResult:
    """Figure 13: grouped instructions under the real pipeline."""
    configs = {
        "2-src": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.CAM_2SRC),
        "wired-OR": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Figure 13",
        description=("% of committed instructions grouped into MOPs by the "
                     "macro-op pipeline (dependent valuegen / nonvaluegen, "
                     "independent), per wakeup style"),
        notes=("paper: 28~46% of instructions grouped; average 16.2% "
               "reduction in scheduler inserts"),
    )
    for name, by_config in stats.items():
        row = {}
        for label, s in by_config.items():
            breakdown = s.grouping_breakdown()
            row[f"{label}_grouped_%"] = 100.0 * s.grouped_fraction
            row[f"{label}_valuegen_%"] = 100.0 * breakdown["mop_valuegen"]
            row[f"{label}_indep_%"] = 100.0 * breakdown["independent_mop"]
            row[f"{label}_insred_%"] = 100.0 * s.insert_reduction
        result.rows[name] = row
    return result


def figure14(benchmarks: Optional[Sequence[str]] = None,
             num_insts: int = DEFAULT_INSTS,
             seed: int = 1,
             executor: Optional[Executor] = None) -> ExperimentResult:
    """Figure 14: vanilla macro-op scheduling performance.

    Unrestricted issue queue, 128 ROB, no extra MOP formation stage — the
    configuration in which macro-op scheduling gets no queue-contention
    benefit and must stand on shortened dependence edges alone.
    """
    configs = {
        "base": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.BASE),
        "2-cycle": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.TWO_CYCLE),
        "MOP-2src": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.CAM_2SRC),
        "MOP-wiredOR": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Figure 14",
        description=("IPC normalized to base scheduling; unrestricted "
                     "issue queue / 128 ROB, no extra pipeline stage"),
        ratio_columns=("2-cycle", "MOP-2src", "MOP-wiredOR"),
        notes=("paper: 2-cycle loses 1.3% (vortex) ~ 19.1% (gap); "
               "macro-op achieves 97.2% of base on average"),
    )
    for name, by_config in stats.items():
        base = by_config["base"].ipc
        result.rows[name] = {
            "base_IPC": base,
            "2-cycle": by_config["2-cycle"].ipc / base,
            "MOP-2src": by_config["MOP-2src"].ipc / base,
            "MOP-wiredOR": by_config["MOP-wiredOR"].ipc / base,
        }
    return result


def figure15(benchmarks: Optional[Sequence[str]] = None,
             num_insts: int = DEFAULT_INSTS,
             seed: int = 1,
             executor: Optional[Executor] = None) -> ExperimentResult:
    """Figure 15: macro-op scheduling under issue-queue contention.

    32-entry issue queue / 128 ROB.  The solid bars of the paper use one
    extra MOP-formation stage; the error bars are 0 and 2 extra stages —
    reported here as separate columns.
    """
    configs = {
        "base": MachineConfig.paper_default(scheduler=SchedulerKind.BASE),
        "2-cycle": MachineConfig.paper_default(
            scheduler=SchedulerKind.TWO_CYCLE),
    }
    for stages in (0, 1, 2):
        configs[f"MOP-2src+{stages}"] = MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.CAM_2SRC,
            extra_mop_stages=stages)
        configs[f"MOP-wiredOR+{stages}"] = MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR,
            extra_mop_stages=stages)
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Figure 15",
        description=("IPC normalized to base scheduling; 32-entry issue "
                     "queue / 128 ROB; MOP columns give 0/1/2 extra "
                     "formation stages"),
        ratio_columns=("2-cycle", "MOP-2src+1", "MOP-wiredOR+1"),
        notes=("paper: average slowdown 0.5% (2-src) and 0.1% (wired-OR) "
               "with 1 extra stage; worst case 3.1% (parser); several "
               "benchmarks beat the baseline"),
    )
    for name, by_config in stats.items():
        base = by_config["base"].ipc
        row = {"base_IPC": base,
               "2-cycle": by_config["2-cycle"].ipc / base}
        for label, s in by_config.items():
            if label.startswith("MOP"):
                row[label] = s.ipc / base
        result.rows[name] = row
    return result


def figure16(benchmarks: Optional[Sequence[str]] = None,
             num_insts: int = DEFAULT_INSTS,
             seed: int = 1,
             executor: Optional[Executor] = None) -> ExperimentResult:
    """Figure 16: pipelined scheduling logic comparison.

    Select-free scheduling (squash-dep and scoreboard, Brown et al.) against
    macro-op scheduling with wired-OR wakeup and one extra formation stage,
    all on the 32-entry issue queue.
    """
    configs = {
        "base": MachineConfig.paper_default(scheduler=SchedulerKind.BASE),
        "select-free-squash-dep": MachineConfig.paper_default(
            scheduler=SchedulerKind.SELECT_FREE_SQUASH),
        "select-free-scoreboard": MachineConfig.paper_default(
            scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD),
        "MOP-wiredOR": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP,
            wakeup_style=WakeupStyle.WIRED_OR,
            extra_mop_stages=1),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Figure 16",
        description=("IPC normalized to base scheduling; 32-entry issue "
                     "queue; select-free vs macro-op"),
        ratio_columns=("select-free-squash-dep", "select-free-scoreboard",
                       "MOP-wiredOR"),
        notes=("paper: squash-dep comparable or slightly worse than "
               "macro-op; scoreboard noticeably worse; select-free never "
               "beats the baseline"),
    )
    for name, by_config in stats.items():
        base = by_config["base"].ipc
        result.rows[name] = {
            "base_IPC": base,
            "select-free-squash-dep":
                by_config["select-free-squash-dep"].ipc / base,
            "select-free-scoreboard":
                by_config["select-free-scoreboard"].ipc / base,
            "MOP-wiredOR": by_config["MOP-wiredOR"].ipc / base,
        }
    return result


def table2(benchmarks: Optional[Sequence[str]] = None,
           num_insts: int = DEFAULT_INSTS,
           seed: int = 1,
           executor: Optional[Executor] = None) -> ExperimentResult:
    """Table 2: base IPC with 32-entry and unrestricted issue queues."""
    configs = {
        "base32": MachineConfig.paper_default(scheduler=SchedulerKind.BASE),
        "baseU": MachineConfig.unrestricted_queue(
            scheduler=SchedulerKind.BASE),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Table 2",
        description=("base-scheduler IPC, 32-entry / unrestricted issue "
                     "queue, with the paper's measured values"),
    )
    for name, by_config in stats.items():
        profile = get_profile(name)
        result.rows[name] = {
            "IPC_32": by_config["base32"].ipc,
            "paper_32": profile.paper_ipc_32,
            "IPC_unrestricted": by_config["baseU"].ipc,
            "paper_unrestricted": profile.paper_ipc_unrestricted,
        }
    return result
