"""Deterministic fault injection for the experiment executor.

The fault-tolerance machinery in :mod:`repro.experiments.executor`
(retries, timeouts, pool respawn, serial fallback) has to be provable
without waiting for a real OOM kill.  This module injects faults into
chosen cells at chosen attempts, driven entirely by the
``REPRO_FAULT_INJECT`` environment variable — the environment is
inherited by pool workers, so the plan needs no extra plumbing across
the process boundary and works for fork and spawn alike.

The value is a semicolon-separated list of rules::

    <pattern>=<kind>[:<attempts>]

* ``pattern`` — an :mod:`fnmatch` glob matched against the cell name
  (``benchmark/label``), e.g. ``gap/base`` or ``gap/*``.
* ``kind`` — one of

  - ``raise`` — raise :class:`InjectedFault` (a plain exception),
  - ``deadlock`` — raise :class:`repro.core.pipeline.DeadlockError`
    with a populated ``cycle``/``pending`` payload,
  - ``hang`` — sleep far past any reasonable cell timeout,
  - ``kill`` — terminate the hosting worker process abruptly via
    ``os._exit`` (refused — degraded to ``raise`` — outside a daemonic
    pool worker, so a serial run never nukes the caller's process),
  - ``raise-parallel`` — raise only inside a pool worker; the
    executor's final in-process serial attempt then succeeds (models a
    pool/pickling flake).

* ``attempts`` — fault only on the first N attempts of the cell
  (omitted: every attempt), so ``raise:2`` fails twice then succeeds.

Example::

    REPRO_FAULT_INJECT="gap/base=raise:2;vortex/*=hang"

Service-layer faults (:mod:`repro.service`) share the same environment
variable and rule syntax; the pattern matches a *fault point* name in
the ``serve/`` namespace instead of a cell name, so one spec can target
both layers without ambiguity.  Points are probed via
:func:`maybe_inject_service`, with a per-process attempt counter per
point so ``:N`` windows work.  Service points additionally understand:

  - ``kill`` — ``os._exit`` the *server* process itself (unlike cell
    rules, there is no daemonic-worker guard: killing the server
    mid-job is precisely the crash-recovery scenario under test),
  - ``torn-write`` — handled by the journal: write a truncated record
    (no trailing newline), flush it to disk, then raise
    :class:`InjectedFault` — the torn tail a crash mid-``write()``
    leaves behind,
  - ``slow-client`` — handled by the HTTP client: stall mid-request for
    :data:`SLOW_CLIENT_SECONDS` to exercise the server's read timeout.

Points probed today: ``serve/journal/<event>`` (each journal append),
``serve/job/<job-id>`` (as a worker picks the job up), and
``client/send`` (before the client transmits a request body).

Example::

    REPRO_FAULT_INJECT="serve/journal/accept=torn-write:1;serve/job/*=kill"
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import List, Optional

from repro.core.pipeline import DeadlockError

#: Environment variable holding the injection plan.
ENV_VAR = "REPRO_FAULT_INJECT"

#: How long a ``hang`` fault sleeps — effectively forever next to any
#: sane ``cell_timeout``.
HANG_SECONDS = 3600.0

#: Exit code used by ``kill`` faults (distinctive in worker post-mortems).
KILL_EXIT_CODE = 43

KINDS = ("raise", "deadlock", "hang", "kill", "raise-parallel",
         "torn-write", "slow-client")

#: Kinds meaningful at service points; cell-level injection ignores the
#: service-only ones (a ``torn-write`` rule can never hit a simulation).
SERVICE_KINDS = ("raise", "hang", "kill", "torn-write", "slow-client")

#: How long a ``slow-client`` fault stalls the client mid-request.
SLOW_CLIENT_SECONDS = 1.0


class InjectedFault(RuntimeError):
    """An artificial failure produced by the fault-injection harness."""


class FaultSpecError(ValueError):
    """The ``REPRO_FAULT_INJECT`` value could not be parsed."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: which cells, what fault, for how many attempts."""

    pattern: str
    kind: str
    attempts: Optional[int] = None

    def applies(self, cell_name: str, attempt: int) -> bool:
        if not fnmatchcase(cell_name, self.pattern):
            return False
        return self.attempts is None or attempt <= self.attempts


def parse_spec(spec: str) -> List[FaultRule]:
    """Parse a ``pattern=kind[:attempts];...`` spec into rules."""
    rules: List[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        pattern, sep, action = chunk.partition("=")
        if not sep or not pattern.strip() or not action.strip():
            raise FaultSpecError(
                f"bad fault rule {chunk!r}: want pattern=kind[:attempts]")
        kind, _, count = action.strip().partition(":")
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {chunk!r}; "
                f"known: {', '.join(KINDS)}")
        try:
            attempts = int(count) if count else None
        except ValueError:
            raise FaultSpecError(
                f"bad attempt count {count!r} in {chunk!r}") from None
        if attempts is not None and attempts < 1:
            raise FaultSpecError(
                f"attempt count must be >= 1 in {chunk!r}")
        rules.append(FaultRule(pattern.strip(), kind, attempts))
    return rules


def format_spec(rules: List[FaultRule]) -> str:
    """Inverse of :func:`parse_spec`, for building env values in tests."""
    parts = []
    for rule in rules:
        part = f"{rule.pattern}={rule.kind}"
        if rule.attempts is not None:
            part += f":{rule.attempts}"
        parts.append(part)
    return ";".join(parts)


def active_rules() -> List[FaultRule]:
    """Rules currently installed via the environment (possibly empty)."""
    spec = os.environ.get(ENV_VAR, "")
    return parse_spec(spec) if spec else []


def _in_pool_worker() -> bool:
    return multiprocessing.current_process().daemon


def _trigger(rule: FaultRule, cell_name: str, attempt: int) -> None:
    if rule.kind == "raise":
        raise InjectedFault(
            f"injected fault for {cell_name} (attempt {attempt})")
    if rule.kind == "deadlock":
        raise DeadlockError(
            f"injected deadlock for {cell_name} (attempt {attempt})",
            cycle=123_456,
            pending={"rob": 4, "iq": 2, "head": "injected"})
    if rule.kind == "raise-parallel":
        if _in_pool_worker():
            raise InjectedFault(
                f"injected pool-only fault for {cell_name} "
                f"(attempt {attempt})")
        return
    if rule.kind == "hang":
        time.sleep(HANG_SECONDS)
        raise InjectedFault(
            f"hang fault for {cell_name} outlived its sleep")
    if rule.kind == "kill":
        if not _in_pool_worker():
            # Never take down the caller's own process; degrade to an
            # ordinary (still injected) failure.
            raise InjectedFault(
                f"kill fault for {cell_name} refused outside a worker")
        os._exit(KILL_EXIT_CODE)


def maybe_inject(cell_name: str, attempt: int) -> None:
    """Fire the first matching active rule for this cell attempt, if any."""
    for rule in active_rules():
        if rule.kind not in ("torn-write", "slow-client") \
                and rule.applies(cell_name, attempt):
            _trigger(rule, cell_name, attempt)
            return


# ---------------------------------------------------------------------------
# Service-layer injection
# ---------------------------------------------------------------------------

#: Per-process ``point -> times probed`` counter, so service rules with
#: an ``:N`` attempt window fire N times then go quiet.
_service_probes: dict = {}


def reset_service_probes() -> None:
    """Forget the per-point attempt counters (test isolation)."""
    _service_probes.clear()


def maybe_inject_service(point: str) -> Optional[str]:
    """Probe fault *point* (e.g. ``serve/journal/accept``) against the
    active rules.

    ``raise``/``hang``/``kill`` trigger inline (and at service points,
    ``kill`` really does ``os._exit`` — the server process is the
    target).  ``torn-write`` and ``slow-client`` cannot be simulated
    here because only the caller knows what a torn write or a stalled
    send *is* at its point, so their kind is returned for the caller to
    act on.  Returns None when no rule matches.
    """
    if not os.environ.get(ENV_VAR):
        return None
    attempt = _service_probes.get(point, 0) + 1
    _service_probes[point] = attempt
    for rule in active_rules():
        if rule.kind not in SERVICE_KINDS:
            continue
        if not rule.applies(point, attempt):
            continue
        if rule.kind == "raise":
            raise InjectedFault(
                f"injected service fault at {point} (attempt {attempt})")
        if rule.kind == "hang":
            time.sleep(HANG_SECONDS)
            raise InjectedFault(
                f"hang fault at {point} outlived its sleep")
        if rule.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        return rule.kind
    return None


def slow_client_stall() -> None:
    """Stall the (synchronous) client for the slow-client window."""
    time.sleep(SLOW_CLIENT_SECONDS)
