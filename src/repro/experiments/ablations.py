"""Ablation experiments for the design choices the paper discusses in text.

* Section 6.2: MOP pointer detection delay (3 vs. 100 cycles) — the paper
  reports an average 0.22% degradation, worst 0.76% in parser, because
  pointers in the instruction cache are reused.
* Section 5.4.2: the last-arriving-operand filter — removing it hurts
  benchmarks like gap where MOP tails often own the last-arriving operand.
* Section 5.4.1: independent MOPs — they reduce queue pressure but can
  serialize timing-critical independent work (eon's slight slowdown).
* Section 4.2: the MOP formation scope (machine-independent sweep).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis import depdist
from repro.analysis.depdist import characterize_distances
from repro.core import MachineConfig, SchedulerKind
from repro.experiments.executor import Executor
from repro.experiments.runner import (
    DEFAULT_INSTS,
    ExperimentResult,
    run_configs,
    workload_trace,
)
from repro.workloads import profile_names


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> Sequence[str]:
    return list(benchmarks) if benchmarks else list(profile_names())


def detection_delay_ablation(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Section 6.2: 3-cycle vs pessimistic 100-cycle detection delay."""
    configs = {
        "delay3": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, mop_detection_delay=3),
        "delay100": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, mop_detection_delay=100),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Ablation: detection delay",
        description="macro-op IPC with 3 vs 100 cycle pointer delay",
        ratio_columns=("delay100_rel",),
        notes="paper: average 0.22% loss, worst 0.76% (parser)",
    )
    for name, by_config in stats.items():
        fast = by_config["delay3"].ipc
        slow = by_config["delay100"].ipc
        result.rows[name] = {
            "delay3_IPC": fast,
            "delay100_IPC": slow,
            "delay100_rel": slow / fast if fast else 0.0,
        }
    return result


def last_arrival_filter_ablation(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Section 5.4.2: the harmful-grouping filter on vs off."""
    configs = {
        "filter_on": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, last_arrival_filter=True),
        "filter_off": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, last_arrival_filter=False),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Ablation: last-arriving-operand filter",
        description=("macro-op IPC with and without deleting pointers "
                     "whose tails own last-arriving operands"),
        ratio_columns=("off_rel",),
        notes="paper: gap loses many edge-shortening opportunities "
              "without the filter",
    )
    for name, by_config in stats.items():
        on = by_config["filter_on"].ipc
        off = by_config["filter_off"].ipc
        result.rows[name] = {
            "on_IPC": on,
            "off_IPC": off,
            "off_rel": off / on if on else 0.0,
            "pointers_deleted": float(
                by_config["filter_on"].mop_pointers_deleted),
        }
    return result


def independent_mops_ablation(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Section 5.4.1: grouping independent instructions on vs off."""
    configs = {
        "indep_on": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, independent_mops=True),
        "indep_off": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP, independent_mops=False),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Ablation: independent MOPs",
        description=("macro-op IPC and grouped fraction with and without "
                     "independent-instruction grouping"),
        ratio_columns=("off_rel",),
        notes="paper: slight negative effect possible on mispredict "
              "resolution (eon), but queue-pressure benefit elsewhere",
    )
    for name, by_config in stats.items():
        on = by_config["indep_on"].ipc
        off = by_config["indep_off"].ipc
        result.rows[name] = {
            "on_IPC": on,
            "off_IPC": off,
            "off_rel": off / on if on else 0.0,
            "on_grouped_%": 100.0 * by_config["indep_on"].grouped_fraction,
            "off_grouped_%": 100.0 * by_config["indep_off"].grouped_fraction,
        }
    return result


def scope_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    scopes: Sequence[int] = (2, 4, 8, 16),
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """Section 4.2: fraction of heads whose nearest tail fits each scope.

    Machine-independent: re-buckets the Figure 6 distances under different
    formation scopes to show why the paper settles on 8 instructions.
    """
    result = ExperimentResult(
        name="Ablation: formation scope",
        description=("% of value-generating heads whose nearest dependent "
                     "candidate lies within each scope"),
        notes="paper: the 8-instruction scope captures most pairs",
    )
    original_horizon = depdist._HORIZON
    try:
        depdist._HORIZON = max(max(scopes) * 4, 64)
        for name in _benchmarks(benchmarks):
            trace = workload_trace(name, num_insts, seed)
            buckets = characterize_distances(trace)
            row = {}
            # Distances are bucketed 1-3 / 4-7 / 8+; scopes 4 and 8 map
            # exactly, other scopes are bounded by the nearest bucket edge.
            within_4 = buckets.fraction("d1_3")
            within_8 = within_4 + buckets.fraction("d4_7")
            has_tail = within_8 + buckets.fraction("d8p")
            for scope in scopes:
                if scope <= 4:
                    row[f"scope{scope}_%"] = 100.0 * within_4
                elif scope <= 8:
                    row[f"scope{scope}_%"] = 100.0 * within_8
                else:
                    row[f"scope{scope}_%"] = 100.0 * has_tail
            result.rows[name] = row
    finally:
        depdist._HORIZON = original_horizon
    return result
