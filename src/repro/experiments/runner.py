"""Shared experiment plumbing: trace caching, config sweeps, result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.reporting import geomean, render_table
from repro.core import MachineConfig, SimStats, simulate
from repro.workloads import generate_trace, get_profile, profile_names
from repro.workloads.trace import Trace

#: Default dynamic instruction budget per benchmark.  Small enough for a
#: pure-Python cycle simulator, large enough that the scheduler shapes are
#: stable (the paper simulates billions on native hardware; we match
#: shapes, not absolute counts).
DEFAULT_INSTS = 10_000

_trace_cache: Dict[Tuple[str, int, int], Trace] = {}


def workload_trace(benchmark: str, num_insts: int = DEFAULT_INSTS,
                   seed: int = 1) -> Trace:
    """Return (and cache) the synthetic trace for *benchmark*."""
    key = (benchmark, num_insts, seed)
    if key not in _trace_cache:
        _trace_cache[key] = generate_trace(
            get_profile(benchmark), num_insts, seed=seed)
    return _trace_cache[key]


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    ``rows`` maps benchmark → {column: value}; ``render()`` prints the
    aligned table with a geometric-mean summary row for ratio columns.
    """

    name: str
    description: str
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    ratio_columns: Tuple[str, ...] = ()
    notes: str = ""

    def render(self, precision: int = 3) -> str:
        names = list(self.rows)
        table = render_table(
            f"{self.name} — {self.description}",
            [self.rows[n] for n in names],
            names,
            precision=precision,
        )
        if self.ratio_columns and self.rows:
            means = {
                col: geomean(self.rows[n][col] for n in names)
                for col in self.ratio_columns
            }
            summary = "  ".join(f"{col}={means[col]:.3f}"
                                for col in self.ratio_columns)
            table += f"\ngeomean: {summary}"
        if self.notes:
            table += f"\n{self.notes}"
        return table

    def column(self, column: str) -> Dict[str, float]:
        return {name: row[column] for name, row in self.rows.items()}

    def render_bars(self, column: str, reference: Optional[float] = 1.0
                    ) -> str:
        """ASCII bar chart of one column across benchmarks (the visual
        form of the paper's per-benchmark bar figures)."""
        from repro.analysis.reporting import render_bars
        return render_bars(f"{self.name} — {column}",
                           self.column(column), reference=reference)


def run_configs(
    configs: Dict[str, MachineConfig],
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
) -> Dict[str, Dict[str, SimStats]]:
    """Simulate every benchmark under every named configuration.

    Returns ``{benchmark: {config_label: SimStats}}``.
    """
    benchmarks = list(benchmarks) if benchmarks else list(profile_names())
    results: Dict[str, Dict[str, SimStats]] = {}
    for benchmark in benchmarks:
        trace = workload_trace(benchmark, num_insts, seed)
        results[benchmark] = {
            label: simulate(trace, config)
            for label, config in configs.items()
        }
    return results
