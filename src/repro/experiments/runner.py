"""Shared experiment plumbing: result tables and the config-grid runner.

Trace caching and simulation execution live in
:mod:`repro.experiments.executor`; this module re-exports
:func:`workload_trace` and :data:`DEFAULT_INSTS` for compatibility and
keeps the table-shaped :class:`ExperimentResult` container plus the
:func:`run_configs` grid entry point every figure builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import geomean, render_table
from repro.core import MachineConfig, SimStats
from repro.experiments.executor import (
    DEFAULT_INSTS,
    Executor,
    get_default_executor,
    workload_trace,
)

__all__ = [
    "DEFAULT_INSTS",
    "ExperimentResult",
    "run_configs",
    "workload_trace",
]


@dataclass
class ExperimentResult:
    """One regenerated table/figure.

    ``rows`` maps benchmark → {column: value}; ``render()`` prints the
    aligned table with a geometric-mean summary row for ratio columns.
    """

    name: str
    description: str
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    ratio_columns: Tuple[str, ...] = ()
    notes: str = ""

    def render(self, precision: int = 3) -> str:
        names = list(self.rows)
        table = render_table(
            f"{self.name} — {self.description}",
            [self.rows[n] for n in names],
            names,
            precision=precision,
        )
        if self.ratio_columns and self.rows:
            parts = []
            for col in self.ratio_columns:
                values = [self.rows[n][col] for n in names]
                finite = [v for v in values if not math.isnan(v)]
                text = f"{col}={geomean(finite):.3f}"
                if len(finite) < len(values):
                    # Failed cells are excluded, but never silently.
                    text += f" (excl {len(values) - len(finite)} FAILED)"
                parts.append(text)
            table += f"\ngeomean: {'  '.join(parts)}"
        if self.notes:
            table += f"\n{self.notes}"
        return table

    def column(self, column: str) -> Dict[str, float]:
        return {name: row[column] for name, row in self.rows.items()}

    def render_bars(self, column: str, reference: Optional[float] = 1.0
                    ) -> str:
        """ASCII bar chart of one column across benchmarks (the visual
        form of the paper's per-benchmark bar figures)."""
        from repro.analysis.reporting import render_bars
        return render_bars(f"{self.name} — {column}",
                           self.column(column), reference=reference)


def run_configs(
    configs: Dict[str, MachineConfig],
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    executor: Optional[Executor] = None,
) -> Dict[str, Dict[str, SimStats]]:
    """Simulate every benchmark under every named configuration.

    Returns ``{benchmark: {config_label: SimStats}}``.  Runs through
    *executor* (default: the process-wide default executor), which
    handles parallel fan-out, result caching and per-cell fault
    recovery; a cell lost to a persistent fault comes back as a
    NaN-valued :class:`~repro.experiments.executor.FailedStats`
    placeholder that tables render as ``FAILED``.
    """
    executor = executor if executor is not None else get_default_executor()
    return executor.run_grid(configs, benchmarks, num_insts, seed)
