"""Scheduler-observability report section.

Surfaces the always-on scheduler metrics (:mod:`repro.core.stats`) as an
experiment table: replay-cause breakdowns, wakeup-to-select latency,
issue-queue occupancy and the macro-op formation funnel.  The two
configurations shown — macro-op and select-free scoreboard — reuse the
cell grids of Figures 13/16, so a cached report run pays nothing extra.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import MachineConfig, SchedulerKind
from repro.experiments.executor import Executor
from repro.experiments.runner import (
    DEFAULT_INSTS,
    ExperimentResult,
    run_configs,
)

__all__ = ["scheduler_metrics"]


def scheduler_metrics(benchmarks: Optional[Sequence[str]] = None,
                      num_insts: int = DEFAULT_INSTS,
                      seed: int = 1,
                      executor: Optional[Executor] = None
                      ) -> ExperimentResult:
    """Per-benchmark scheduler diagnostics.

    Macro-op columns: mean wakeup-to-select latency, mean issue-queue
    occupancy, the insert reduction and the formation funnel — dynamic
    MOPs formed per *static* pointer created, so loopy benchmarks score
    well above 1.  Scoreboard columns: the replay breakdown by cause —
    Section 6.5's explanation of why the scoreboard configuration loses
    the most IPC shows up as a pileup-dominated mix.
    """
    configs = {
        "macro-op": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP),
        "scoreboard": MachineConfig.paper_default(
            scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD),
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    result = ExperimentResult(
        name="Scheduler metrics",
        description=("wakeup→select latency, IQ occupancy and the MOP "
                     "funnel (macro-op); replay breakdown by cause "
                     "(select-free scoreboard)"),
        notes=("scoreboard replays should be pileup-dominated: victims "
               "are discovered at the register-file stage and burn issue "
               "slots (Section 6.5)"),
    )
    for name, by_config in stats.items():
        mop = by_config["macro-op"]
        sb = by_config["scoreboard"]
        if getattr(mop, "failed", False):   # FailedStats placeholder
            funnel = {"pointers": float("nan"), "formed": float("nan")}
        else:
            funnel = mop.mop_funnel()
        pointers = funnel["pointers"] or 1
        replayed = sb.replayed_ops or 1
        result.rows[name] = {
            "wk2sel_cy": mop.avg_wakeup_to_select,
            "iq_occ": mop.iq_occupancy_mean,
            "insred_%": 100.0 * mop.insert_reduction,
            "mops/ptr": funnel["formed"] / pointers,
            "sb_raise_%": 100.0 * sb.replay_raise / replayed,
            "sb_pileup_%": 100.0 * sb.replay_pileup / replayed,
            "sb_squash_%": 100.0 * sb.replay_squash / replayed,
            "sb_max_replays": float(sb.max_replays_seen),
        }
    return result
