"""Parameter sweeps beyond the paper's figures.

The paper's scalability argument — macro-op scheduling "increases the
effective size of the scheduling window" — is evaluated at two points (32
entries and unrestricted).  :func:`queue_size_sweep` fills in the curve:
IPC for base / 2-cycle / macro-op scheduling across issue-queue sizes, so
the entry-sharing benefit is visible as a leftward shift of the macro-op
curve (it behaves like a queue ~16% larger than its physical size).

Both sweeps run their full ``(scheduler, size, benchmark)`` grid through
the experiment executor, so ``--jobs`` fans the cells out over workers
and the result cache makes warm re-runs near-instant.  A cell lost to a
persistent fault surfaces as a ``FAILED`` table entry (the executor
substitutes a NaN-valued placeholder) rather than aborting the sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.experiments.executor import Executor
from repro.experiments.runner import (
    DEFAULT_INSTS,
    ExperimentResult,
    run_configs,
)


def queue_size_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    sizes: Sequence[int] = (8, 16, 32, 64, 128),
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """IPC vs issue-queue size for base / 2-cycle / macro-op scheduling."""
    result = ExperimentResult(
        name="Sweep: issue-queue size",
        description=("IPC per scheduler across issue-queue sizes "
                     "(columns are <scheduler>@<entries>)"),
        notes="macro-op scheduling's entry sharing acts like a larger "
              "physical queue (Section 3.1)",
    )
    schedulers = (
        ("base", SchedulerKind.BASE),
        ("2cyc", SchedulerKind.TWO_CYCLE),
        ("mop", SchedulerKind.MACRO_OP),
    )
    configs = {
        f"{label}@{size}": MachineConfig(
            scheduler=kind, iq_size=size,
            wakeup_style=WakeupStyle.WIRED_OR)
        for label, kind in schedulers
        for size in sizes
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    for benchmark, by_config in stats.items():
        result.rows[benchmark] = {
            label: s.ipc for label, s in by_config.items()
        }
    return result


def rob_size_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    sizes: Sequence[int] = (32, 64, 128, 256),
    executor: Optional[Executor] = None,
) -> ExperimentResult:
    """IPC vs ROB size with the unrestricted issue queue (base scheduler).

    Separates window-capacity effects from scheduling-loop effects: the
    issue queue is unrestricted so the ROB is the only in-flight bound.
    """
    result = ExperimentResult(
        name="Sweep: ROB size",
        description="base-scheduler IPC across reorder-buffer sizes",
    )
    configs = {
        f"rob{size}": MachineConfig(scheduler=SchedulerKind.BASE,
                                    iq_size=None, rob_size=size)
        for size in sizes
    }
    stats = run_configs(configs, benchmarks, num_insts, seed,
                        executor=executor)
    for benchmark, by_config in stats.items():
        result.rows[benchmark] = {
            label: s.ipc for label, s in by_config.items()
        }
    return result
