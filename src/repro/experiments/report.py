"""One-shot reproduction report: every table and figure, one document.

:func:`full_report` runs the complete evaluation (characterizations,
timing figures, ablations) and returns a single text document — what the
CLI's ``repro-sim report`` prints and what a CI job would archive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.ablations import (
    detection_delay_ablation,
    independent_mops_ablation,
    last_arrival_filter_ablation,
    scope_sweep,
)
from repro.experiments.figures import (
    figure6,
    figure7,
    figure13,
    figure14,
    figure15,
    figure16,
    table2,
)
from repro.experiments.executor import Executor
from repro.experiments.metrics import scheduler_metrics
from repro.experiments.runner import DEFAULT_INSTS

#: The full evaluation, in the paper's presentation order.
_SECTIONS = (
    ("Table 2", table2),
    ("Figure 6", figure6),
    ("Figure 7", figure7),
    ("Figure 13", figure13),
    ("Figure 14", figure14),
    ("Figure 15", figure15),
    ("Figure 16", figure16),
    ("Ablation: detection delay", detection_delay_ablation),
    ("Ablation: last-arrival filter", last_arrival_filter_ablation),
    ("Ablation: independent MOPs", independent_mops_ablation),
    ("Ablation: formation scope", scope_sweep),
    ("Scheduler metrics", scheduler_metrics),
)


def full_report(
    benchmarks: Optional[Sequence[str]] = None,
    num_insts: int = DEFAULT_INSTS,
    seed: int = 1,
    sections: Optional[Sequence[str]] = None,
    executor: Optional[Executor] = None,
) -> str:
    """Run the whole evaluation and render it as one document.

    *sections*, if given, selects by section title prefix (case-
    insensitive), e.g. ``["figure 14", "table 2"]``.  *executor*, if
    given, runs every timing section's simulation grid (parallel
    fan-out plus result caching).  Cells lost to persistent faults show
    up as ``FAILED`` in their section's table, and a failure-report
    section is appended at the end instead of aborting the document.
    """
    wanted = None
    if sections:
        wanted = [s.lower() for s in sections]
    parts: List[str] = [
        "Macro-op Scheduling (MICRO-36 2003) — reproduction report",
        f"workloads: {', '.join(benchmarks) if benchmarks else 'all 12'}"
        f"; {num_insts} committed instructions each; seed {seed}",
        "=" * 72,
    ]
    for title, runner in _SECTIONS:
        if wanted is not None and not any(
                title.lower().startswith(w) for w in wanted):
            continue
        result = runner(benchmarks=benchmarks, num_insts=num_insts,
                        seed=seed, executor=executor)
        parts.append(result.render())
        parts.append("-" * 72)
    if executor is not None:
        failures = executor.failure_report()
        if failures:
            parts.append(failures.render())
            parts.append("-" * 72)
    return "\n".join(parts)
