"""Experiment harness: one entry point per table/figure in the paper.

Every function in :mod:`repro.experiments.figures` regenerates one piece of
the paper's evaluation (Section 6) over the synthetic SPEC CINT2000
workloads and returns an :class:`~repro.experiments.runner.ExperimentResult`
whose ``render()`` prints the same rows/series the paper plots.  The
``benchmarks/`` directory wraps these in pytest-benchmark targets.

Simulation grids execute through :mod:`repro.experiments.executor`: every
figure accepts an ``executor=`` argument that supplies parallel fan-out
over worker processes and a persistent on-disk result cache (machine-
independent characterizations like Figure 6/7 accept it for signature
uniformity but have nothing to simulate).  Output is bit-identical
regardless of worker count.
"""

from repro.experiments.executor import (
    CellFailedError,
    CellOutcome,
    Executor,
    FailedStats,
    FailureReport,
    ResultCache,
    RunCheckpoint,
    RunSummary,
    SimCell,
    cell_key,
    get_default_executor,
    set_default_executor,
)
from repro.experiments.runner import (
    ExperimentResult,
    run_configs,
    workload_trace,
)
from repro.experiments.figures import (
    figure6,
    figure7,
    figure13,
    figure14,
    figure15,
    figure16,
    table2,
)

__all__ = [
    "CellFailedError",
    "CellOutcome",
    "Executor",
    "FailedStats",
    "FailureReport",
    "ResultCache",
    "RunCheckpoint",
    "RunSummary",
    "SimCell",
    "cell_key",
    "get_default_executor",
    "set_default_executor",
    "ExperimentResult",
    "run_configs",
    "workload_trace",
    "figure6",
    "figure7",
    "figure13",
    "figure14",
    "figure15",
    "figure16",
    "table2",
]
