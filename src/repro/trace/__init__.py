"""Cycle-level scheduler observability (``repro.trace``).

A structured tracing subsystem for the timing model: the pipeline emits
one typed :class:`TraceEvent` per operation per stage (fetch, insert,
wakeup, select, issue, exec, writeback, commit, replay, squash) into a
:class:`TraceSink`.  Two backends ship here — an append-only JSONL file
(:class:`JsonlTraceSink`) and a bounded in-memory ring buffer
(:class:`RingBufferSink`) — plus :class:`TeeSink` for fan-out.

Tracing is strictly opt-in.  A :class:`~repro.core.pipeline.Processor`
constructed without a sink never imports this package and pays only a
single attribute check per would-be event, so untraced simulations are
bit-identical (and indistinguishable in wall-clock) to pre-trace builds.
The bench harness asserts that invariant by checking ``repro.trace``
never shows up in ``sys.modules`` during an untraced session.

Rendering lives in :mod:`repro.core.pipeview` (``repro-sim trace`` turns
a JSONL trace back into a pipeline diagram); aggregate scheduler metrics
(replay causes, wakeup-to-select latency, IQ occupancy, the MOP
formation funnel) are always-on counters in
:class:`repro.core.stats.SimStats`.
"""

from repro.trace.events import (
    EV_COMMIT,
    EV_EXEC,
    EV_FETCH,
    EV_INSERT,
    EV_ISSUE,
    EV_REPLAY,
    EV_SELECT,
    EV_SQUASH,
    EV_WAKEUP,
    EV_WRITEBACK,
    EVENT_KINDS,
    TraceEvent,
)
from repro.trace.sink import (
    JsonlTraceSink,
    RingBufferSink,
    TeeSink,
    TraceSink,
    read_trace,
)

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "EV_FETCH",
    "EV_INSERT",
    "EV_WAKEUP",
    "EV_SELECT",
    "EV_ISSUE",
    "EV_EXEC",
    "EV_WRITEBACK",
    "EV_COMMIT",
    "EV_REPLAY",
    "EV_SQUASH",
    "TraceSink",
    "JsonlTraceSink",
    "RingBufferSink",
    "TeeSink",
    "read_trace",
]
