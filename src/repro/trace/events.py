"""Typed per-operation pipeline stage events.

One :class:`TraceEvent` records one operation passing one pipeline stage
at one cycle.  Events are self-describing (they carry their own cycle),
so emission order only has to be *deterministic*, not cycle-sorted:
multi-op macro-op issues, for example, emit the tail's ``exec`` event at
issue time with its future sequencing cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Stage-event kinds, in pipeline order.
EV_FETCH = "fetch"          # frontend fetched the op
EV_INSERT = "insert"        # op entered the issue queue (queue stage)
EV_WAKEUP = "wakeup"        # entry's last operand arrived; became READY
EV_SELECT = "select"        # select logic granted the entry an issue slot
EV_ISSUE = "issue"          # entry left the queue (same cycle as select)
EV_EXEC = "exec"            # execution begins (select + dispatch depth)
EV_WRITEBACK = "writeback"  # execution completed
EV_COMMIT = "commit"        # retired in program order
EV_REPLAY = "replay"        # issued entry invalidated; will re-issue
EV_SQUASH = "squash"        # woken entry un-woken (speculation rescinded)

EVENT_KINDS = (
    EV_FETCH, EV_INSERT, EV_WAKEUP, EV_SELECT, EV_ISSUE,
    EV_EXEC, EV_WRITEBACK, EV_COMMIT, EV_REPLAY, EV_SQUASH,
)

_FIELDS = ("cycle", "kind", "seq", "pc", "mnemonic", "role", "eid", "cause")


@dataclass(frozen=True)
class TraceEvent:
    """One operation passing one pipeline stage.

    ``role`` is the macro-op role glyph (``"H"`` head, ``"T"`` tail,
    ``" "`` solo); ``eid`` the issue-queue entry id sharing members of a
    macro-op; ``cause`` is set on ``replay``/``squash`` events
    (``raise`` — a load broadcast re-raised after a cache miss,
    ``pileup`` — a scoreboard pileup victim, ``squash`` — collateral of
    another entry's invalidation or a select-free collision squash).
    """

    cycle: int
    kind: str
    seq: int
    pc: int
    mnemonic: str
    role: str = " "
    eid: Optional[int] = None
    cause: Optional[str] = None

    def to_dict(self) -> dict:
        payload = {
            "cycle": self.cycle,
            "kind": self.kind,
            "seq": self.seq,
            "pc": self.pc,
            "mnemonic": self.mnemonic,
            "role": self.role,
            "eid": self.eid,
        }
        if self.cause is not None:
            payload["cause"] = self.cause
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        return cls(**{name: payload[name] for name in _FIELDS
                      if name in payload})
