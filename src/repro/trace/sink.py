"""Trace sinks: where pipeline stage events go.

All sinks implement the two-method :class:`TraceSink` protocol —
``emit(event)`` and ``close()`` — so anything with those methods (e.g. a
:class:`~repro.core.pipeview.PipeViewer`) can be handed straight to
:meth:`Processor.set_trace_sink`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Iterator, List, Optional, Protocol

from repro.trace.events import TraceEvent


class TraceSink(Protocol):
    """Anything that can receive pipeline stage events."""

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class JsonlTraceSink:
    """Appends one JSON object per event to a file.

    ``limit`` bounds the number of events written (the trace of a long
    run is dominated by its first repeating pattern anyway); events past
    the limit are counted in ``dropped`` instead of written, so the
    caller can report truncation honestly.
    """

    def __init__(self, path: os.PathLike,
                 limit: Optional[int] = None) -> None:
        self.path = Path(path)
        self.limit = limit
        self.emitted = 0
        self.dropped = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = self.path.open("w")

    def emit(self, event: TraceEvent) -> None:
        if self.limit is not None and self.emitted >= self.limit:
            self.dropped += 1
            return
        self._file.write(json.dumps(event.to_dict(),
                                    separators=(",", ":")) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RingBufferSink:
    """Keeps the most recent *capacity* events in memory.

    The cheap always-available backend: attach one, run, inspect
    ``sink.events`` — no filesystem involved.  ``total`` counts every
    emitted event, including the ones the ring has since evicted.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self._ring: deque = deque(maxlen=capacity)
        self.total = 0

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._ring)

    def emit(self, event: TraceEvent) -> None:
        self._ring.append(event)
        self.total += 1

    def close(self) -> None:
        pass


class TeeSink:
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: Optional[TraceSink]) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_trace(path: os.PathLike) -> Iterator[TraceEvent]:
    """Stream :class:`TraceEvent` objects back out of a JSONL trace.

    Tolerates a torn final line (a traced run that died mid-write)
    rather than raising — everything before it parses normally.
    """
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            yield TraceEvent.from_dict(payload)
