"""repro — a full-system reproduction of macro-op scheduling.

Kim & Lipasti, "Macro-op Scheduling: Relaxing Scheduling Loop
Constraints", MICRO-36, 2003.

Public API tour:

>>> from repro import MachineConfig, SchedulerKind, simulate, generate_trace
>>> from repro.workloads import get_profile
>>> trace = generate_trace(get_profile("gap"), 5_000)
>>> stats = simulate(trace, MachineConfig.paper_default(
...     scheduler=SchedulerKind.MACRO_OP))
>>> stats.ipc > 0
True

Subpackages:

* :mod:`repro.isa` — micro-ISA, assembler, functional interpreter
* :mod:`repro.workloads` — SPEC CINT2000-like profiles, generator, kernels
* :mod:`repro.branch`, :mod:`repro.memory` — predictor and cache substrates
* :mod:`repro.core` — the out-of-order pipeline and scheduler disciplines
* :mod:`repro.mop` — macro-op detection, pointers, formation
* :mod:`repro.analysis` — machine-independent characterizations
* :mod:`repro.experiments` — one regeneration function per table/figure
"""

from repro.core import (
    MachineConfig,
    SchedulerKind,
    SimStats,
    WakeupStyle,
)
from repro.workloads import Trace, generate_trace, get_profile, profile_names

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "SchedulerKind",
    "WakeupStyle",
    "SimStats",
    "simulate",
    "Processor",
    "Trace",
    "generate_trace",
    "get_profile",
    "profile_names",
    "__version__",
]


def __getattr__(name):
    # simulate/Processor re-exported lazily via repro.core (see its note on
    # the core ↔ mop import cycle).
    if name in ("simulate", "Processor"):
        from repro import core
        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
