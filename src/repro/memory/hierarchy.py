"""Two-level memory hierarchy with the paper's Table 1 latencies."""

from __future__ import annotations

import enum
from typing import Optional

from repro.memory.cache import Cache


class MemoryLevel(enum.IntEnum):
    """Which level served an access — also the synthetic-trace hint values."""

    DL1 = 0
    L2 = 1
    MEMORY = 2


class MemoryHierarchy:
    """IL1 + DL1 + unified L2 + main memory (Table 1).

    ``load_latency`` is the single entry point the core uses for data
    accesses: given an address (execution-driven) or a pre-resolved hint
    level (synthetic traces), it returns ``(latency, level)`` where latency
    counts from the start of the cache access.
    """

    def __init__(
        self,
        il1: Optional[Cache] = None,
        dl1: Optional[Cache] = None,
        l2: Optional[Cache] = None,
        memory_latency: int = 100,
    ) -> None:
        self.il1 = il1 or Cache("IL1", 16 * 1024, 2, 64, latency=2)
        self.dl1 = dl1 or Cache("DL1", 16 * 1024, 4, 64, latency=2)
        self.l2 = l2 or Cache("L2", 256 * 1024, 4, 128, latency=8)
        self.memory_latency = memory_latency

    # -- data side ----------------------------------------------------------

    def load_latency(
        self,
        addr: Optional[int],
        hint: Optional[int] = None,
    ) -> tuple:
        """Resolve a load's memory latency.

        Synthetic traces provide *hint* (a :class:`MemoryLevel` value) and
        may omit the address; execution-driven traces provide *addr* and the
        caches decide.  Returns ``(latency_cycles, MemoryLevel)``.
        """
        if hint is not None:
            level = MemoryLevel(hint)
            return self._latency_for(level), level
        if addr is None:
            return self.dl1.latency, MemoryLevel.DL1
        if self.dl1.access(addr):
            return self.dl1.latency, MemoryLevel.DL1
        if self.l2.access(addr):
            return self.dl1.latency + self.l2.latency, MemoryLevel.L2
        return (
            self.dl1.latency + self.l2.latency + self.memory_latency,
            MemoryLevel.MEMORY,
        )

    def store_commit(self, addr: Optional[int]) -> None:
        """Install a committed store's line (write-allocate, no timing)."""
        if addr is not None:
            if not self.dl1.access(addr):
                self.l2.access(addr)

    def _latency_for(self, level: MemoryLevel) -> int:
        if level is MemoryLevel.DL1:
            return self.dl1.latency
        if level is MemoryLevel.L2:
            return self.dl1.latency + self.l2.latency
        return self.dl1.latency + self.l2.latency + self.memory_latency

    @property
    def dl1_hit_latency(self) -> int:
        """The latency the speculative scheduler assumes for loads."""
        return self.dl1.latency

    # -- instruction side ----------------------------------------------------

    def fetch_latency(self, pc: int) -> int:
        """IL1 access for a fetch group starting at *pc* (word PCs)."""
        addr = pc * 4  # 4-byte instruction words
        if self.il1.access(addr):
            return self.il1.latency
        if self.l2.access(addr):
            return self.il1.latency + self.l2.latency
        return self.il1.latency + self.l2.latency + self.memory_latency
