"""Memory hierarchy substrate (Table 1).

16KB 2-way 64B-line IL1 (2-cycle), 16KB 4-way 64B-line DL1 (2-cycle),
256KB 4-way 128B-line unified L2 (8-cycle), main memory (100-cycle).

Execution-driven (kernel) traces access the real caches by address;
synthetic SPEC-like traces carry per-load memory-level hints that
:meth:`MemoryHierarchy.load_latency` converts into the same latency numbers,
so both paths exercise the identical replay machinery in the core.
"""

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy, MemoryLevel

__all__ = ["Cache", "MemoryHierarchy", "MemoryLevel"]
