"""Set-associative cache with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, LRU, line-granular cache model.

    Timing-only: no data is stored, just tags.  ``access`` reports hit/miss
    and fills the line on a miss (allocate-on-miss for both reads and
    writes, which is adequate for a scheduler study).
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        latency: int,
    ) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(f"{name}: size must be divisible by way size")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.num_sets = size_bytes // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count must be a power of two")
        self._sets: list = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _locate(self, addr: int):
        line = addr // self.line_bytes
        return self._sets[line & (self.num_sets - 1)], line

    def access(self, addr: int) -> bool:
        """Access *addr*; return True on hit.  Misses allocate the line."""
        entry_set, line = self._locate(addr)
        self.stats.accesses += 1
        if line in entry_set:
            entry_set.move_to_end(line)
            self.stats.hits += 1
            return True
        if len(entry_set) >= self.assoc:
            entry_set.popitem(last=False)
        entry_set[line] = True
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or stats."""
        entry_set, line = self._locate(addr)
        return line in entry_set

    def flush(self) -> None:
        """Invalidate all lines (stats preserved)."""
        for entry_set in self._sets:
            entry_set.clear()
