"""Synchronous HTTP client for the job service (``repro submit`` etc.).

Built on :mod:`http.client` so the CLI needs nothing beyond the stdlib.
The client honours the server's backpressure contract: a 429/503 with
``retryable: true`` is retried with exponential backoff (bounded), so
``repro submit --wait`` survives a queue-full burst or a draining
server without the operator scripting around it.

The ``client/send`` fault point (kind ``slow-client``) stalls between
connect and send to exercise the server's per-connection read deadline.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Any, Dict, Optional

#: Submission retry schedule on retryable (429/503) responses.
SUBMIT_RETRIES = 5
BACKOFF_BASE = 0.25
BACKOFF_CAP = 4.0

#: Polling cadence for :meth:`ServiceClient.wait`.
POLL_SECONDS = 0.25


class ServiceError(RuntimeError):
    """A non-2xx response from the service (or a transport failure)."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        message = (payload.get("error")
                   if isinstance(payload, dict) else None)
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}

    def __reduce__(self):
        return (type(self), (self.status, self.payload))

    @property
    def retryable(self) -> bool:
        return bool(self.payload.get("retryable"))

    @property
    def retry_after(self) -> Optional[float]:
        value = self.payload.get("retry_after")
        return float(value) if value is not None else None


class ServiceClient:
    """Talks to one ``repro serve`` instance at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8537,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            if os.environ.get("REPRO_FAULT_INJECT"):
                from repro.experiments.faults import (maybe_inject_service,
                                                      slow_client_stall)
                conn.connect()
                if maybe_inject_service("client/send") == "slow-client":
                    slow_client_stall()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode("utf-8", "replace")}
            if not 200 <= response.status < 300:
                raise ServiceError(response.status, decoded)
            return decoded
        except (ConnectionError, TimeoutError, OSError,
                http.client.HTTPException) as exc:
            raise ServiceError(0, {
                "error": f"cannot reach {self.host}:{self.port}: "
                         f"{type(exc).__name__}: {exc}",
                "retryable": True}) from exc
        finally:
            conn.close()

    # -- API ----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/jobs")

    def submit(self, spec: Dict[str, Any],
               retries: int = SUBMIT_RETRIES) -> Dict[str, Any]:
        """Submit a job spec, backing off on retryable shed responses."""
        delay = BACKOFF_BASE
        for attempt in range(retries + 1):
            try:
                return self._request("POST", "/jobs", body=spec)
            except ServiceError as exc:
                if attempt >= retries or not exc.retryable:
                    raise
                pause = exc.retry_after or delay
                time.sleep(min(pause, BACKOFF_CAP))
                delay = min(delay * 2, BACKOFF_CAP)
        raise AssertionError("unreachable")  # pragma: no cover

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its status.

        Transient transport errors (the server restarting mid-recovery)
        are tolerated until *timeout*; the journal guarantees the job
        itself survives them.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        terminal = {"done", "failed", "cancelled", "timeout"}
        while True:
            try:
                status = self.status(job_id)
                if status.get("state") in terminal:
                    return status
            except ServiceError as exc:
                if not exc.retryable and exc.status != 0:
                    raise
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still not terminal after {timeout}s")
            time.sleep(POLL_SECONDS)
