"""Simulation-as-a-service: a resilient async job server for sweeps.

``repro serve`` wraps the fault-tolerant experiment executor
(:mod:`repro.experiments.executor`) in a long-running, multi-tenant
HTTP/JSON service, promoting PR 2's per-cell primitives — structured
:class:`~repro.experiments.executor.CellOutcome`, wall-clock timeouts,
bounded retries, checkpointed partial results — from CLI flags to a
server that degrades gracefully under bursty sweep traffic:

* **Admission control and backpressure** — a bounded job queue; once it
  is full, submissions are shed with a structured, retryable
  ``429``-style error instead of hanging or silently dropping.
* **In-flight deduplication** — identical cells submitted by concurrent
  clients are simulated once; later jobs await the first run's outcome.
* **Shared read-through result tier** — every session shares one
  LRU-bounded :class:`~repro.experiments.executor.ResultCache`, whose
  hit rate and evictions surface on ``/metrics``.
* **Crash recovery** — every accepted job is recorded in a write-ahead
  journal *before* the client is acknowledged; a killed server replays
  the journal on restart and resumes every non-terminal job, with
  already-completed cells resolving from the cache instead of being
  recomputed.
* **Graceful drain** — SIGTERM stops admission (503, retryable) and
  lets queued + running jobs finish before exit.
* **Observability** — ``/healthz`` and ``/metrics`` expose queue depth,
  shed/retry/timeout counters, dedup hits and cache statistics.

The implementation is stdlib-only: a hand-rolled HTTP/1.1 layer over
:func:`asyncio.start_server` and an :mod:`http.client`-based synchronous
CLI client (``repro submit`` / ``status`` / ``result`` / ``cancel``).
Fault injection for every failure mode above lives in
:mod:`repro.experiments.faults` (``REPRO_FAULT_INJECT`` with ``serve/*``
point patterns); simlint rule SL009 statically bans blocking calls
inside this package's coroutines.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (Job, JobManager, JobState, Overloaded,
                                ServiceDraining, ServiceMetrics)
from repro.service.journal import JobJournal
from repro.service.protocol import JobSpec, SpecError
from repro.service.server import JobServer, run_server

__all__ = [
    "Job",
    "JobJournal",
    "JobManager",
    "JobServer",
    "JobSpec",
    "JobState",
    "Overloaded",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "ServiceMetrics",
    "SpecError",
    "run_server",
]
