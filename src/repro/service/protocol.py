"""Job-submission wire format: specs, validation, result encoding.

A *job* is one experiment grid — the same ``benchmarks x configs`` shape
:meth:`repro.experiments.executor.Executor.run_grid` takes — expressed
as JSON::

    {
      "benchmarks": ["gap", "vortex"],
      "configs": {
        "base":     {"scheduler": "base"},
        "macro-op": {"scheduler": "macro-op", "mop_size": 2}
      },
      "num_insts": 2000,
      "seed": 1,
      "max_cycles": null
    }

Config dicts accept exactly the :class:`~repro.core.MachineConfig`
fields (enums by value); unknown fields, unknown benchmarks and
out-of-bounds budgets are rejected with :class:`SpecError` before the
job is accepted, so the queue only ever holds runnable work.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.experiments.executor import DEFAULT_INSTS, SimCell
from repro.workloads import profile_names

#: Admission-time sanity bounds: a single job may not monopolise the
#: fleet.  Split bigger sweeps into several jobs (the shared cache and
#: in-flight dedup make that free).
MAX_CELLS_PER_JOB = 256
MAX_INSTS_PER_CELL = 200_000


class SpecError(ValueError):
    """A job submission payload is malformed (HTTP 400 material)."""


def _coerce_field(field: dataclasses.Field, value: Any) -> Any:
    """Coerce a JSON value onto one MachineConfig field, enums by value."""
    if field.name == "scheduler":
        return SchedulerKind(value)
    if field.name == "wakeup_style":
        return WakeupStyle(value)
    return value


def config_from_dict(payload: Dict[str, Any]) -> MachineConfig:
    """Build a :class:`MachineConfig` from a JSON dict, strictly.

    Unknown keys are an error — a typoed ``mop_sizee`` silently running
    the default grid would be a far worse failure mode than a 400.
    """
    if not isinstance(payload, dict):
        raise SpecError(f"config must be an object, got {payload!r}")
    fields = {f.name: f for f in dataclasses.fields(MachineConfig)}
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise SpecError(
            f"unknown config field(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(fields))}")
    kwargs = {}
    for name, value in payload.items():
        try:
            kwargs[name] = _coerce_field(fields[name], value)
        except (ValueError, TypeError) as exc:
            raise SpecError(f"bad config field {name}={value!r}: {exc}") \
                from None
    try:
        return MachineConfig(**kwargs)
    except (ValueError, TypeError) as exc:
        raise SpecError(f"bad config: {exc}") from None


def config_to_dict(config: MachineConfig) -> Dict[str, Any]:
    """JSON-safe dict for *config* (enums by value) — journal format."""
    payload = dataclasses.asdict(config)
    for name, value in payload.items():
        if isinstance(value, enum.Enum):
            payload[name] = value.value
    return payload


@dataclass(frozen=True)
class JobSpec:
    """One validated grid submission.

    ``configs`` is an ordered label->config tuple so the result grid
    renders columns in submission order, exactly like ``run_grid``.
    """

    benchmarks: Tuple[str, ...]
    configs: Tuple[Tuple[str, MachineConfig], ...]
    num_insts: int = DEFAULT_INSTS
    seed: int = 1
    max_cycles: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        if not isinstance(payload, dict):
            raise SpecError("job spec must be a JSON object")
        known = {"benchmarks", "configs", "num_insts", "seed",
                 "max_cycles"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"unknown spec field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        benchmarks = payload.get("benchmarks")
        if not benchmarks or not isinstance(benchmarks, list):
            raise SpecError("spec needs a non-empty 'benchmarks' list")
        valid = set(profile_names())
        bad = sorted(set(benchmarks) - valid)
        if bad:
            raise SpecError(
                f"unknown benchmark(s) {', '.join(map(str, bad))}; "
                f"known: {', '.join(sorted(valid))}")
        raw_configs = payload.get("configs")
        if not raw_configs or not isinstance(raw_configs, dict):
            raise SpecError("spec needs a non-empty 'configs' object")
        configs = tuple(
            (str(label), config_from_dict(config))
            for label, config in raw_configs.items())
        num_insts = payload.get("num_insts", DEFAULT_INSTS)
        if not isinstance(num_insts, int) \
                or not 1 <= num_insts <= MAX_INSTS_PER_CELL:
            raise SpecError(
                f"num_insts must be an int in [1, {MAX_INSTS_PER_CELL}]"
                f", got {num_insts!r}")
        seed = payload.get("seed", 1)
        if not isinstance(seed, int):
            raise SpecError(f"seed must be an int, got {seed!r}")
        max_cycles = payload.get("max_cycles")
        if max_cycles is not None and (
                not isinstance(max_cycles, int) or max_cycles < 1):
            raise SpecError(
                f"max_cycles must be a positive int or null, "
                f"got {max_cycles!r}")
        cell_count = len(benchmarks) * len(configs)
        if cell_count > MAX_CELLS_PER_JOB:
            raise SpecError(
                f"job would hold {cell_count} cells; the per-job limit "
                f"is {MAX_CELLS_PER_JOB} — split the sweep (the shared "
                f"cache dedupes across jobs)")
        return cls(benchmarks=tuple(benchmarks), configs=configs,
                   num_insts=num_insts, seed=seed, max_cycles=max_cycles)

    def to_payload(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_payload` — the journal's spec format."""
        return {
            "benchmarks": list(self.benchmarks),
            "configs": {label: config_to_dict(config)
                        for label, config in self.configs},
            "num_insts": self.num_insts,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
        }

    def cells(self) -> List[SimCell]:
        """The grid, flattened in ``run_grid``'s benchmark-major order."""
        return [SimCell(benchmark, label, config, self.num_insts,
                        self.seed, self.max_cycles)
                for benchmark in self.benchmarks
                for label, config in self.configs]
