"""Write-ahead job journal: accepted work survives a dead server.

The durability contract of the service is *ack implies journal*: a job
is appended here (and the record flushed — fsynced for accept/terminal
events) **before** the client sees its 202, so any job a client was
told about can be recovered from disk.  The journal is append-only
JSONL; records are::

    {"schema": 1, "event": "accept", "id": ..., "spec": {...}}
    {"schema": 1, "event": "cell", "id": ..., "index": 3,
     "key": "<cell_key>", "status": "ok", "via": "sim"}
    {"schema": 1, "event": "state", "id": ..., "state": "done"}

Recovery (:meth:`JobJournal.load`) folds the records per job: a job
with an ``accept`` but no terminal ``state`` was in flight when the
server died and must be requeued; its completed cells are *not* listed
for re-execution — their results live in the shared result cache, so
re-running the job resolves them as hits.  A torn tail line (the
half-record a crash mid-``write`` leaves) is skipped and counted, never
fatal — exactly the failure the ``torn-write`` fault kind injects.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, TextIO

#: Journal line layout version.
JOURNAL_SCHEMA = 1

#: Job states that end a job's life (no requeue on recovery).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "timeout"})


@dataclass
class JobRecord:
    """Everything the journal knows about one job after a replay."""

    spec: Dict[str, Any]
    state: Optional[str] = None
    cells: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass
class JournalReplay:
    """The fold of a journal file: jobs in acceptance order, torn count."""

    jobs: Dict[str, JobRecord] = field(default_factory=dict)
    torn_lines: int = 0


class JobJournal:
    """Append-only JSONL write-ahead log of job lifecycle events."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None
        #: Records appended by this instance (observability).
        self.appended = 0
        #: The last write was (injected as) torn: the next record must
        #: open with a newline or it would merge into the torn tail.
        self._torn = False

    # -- writing ------------------------------------------------------------

    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def _append(self, record: Dict[str, Any], sync: bool) -> None:
        record = {"schema": JOURNAL_SCHEMA, **record}
        line = json.dumps(record, sort_keys=True)
        handle = self._open()
        if os.environ.get("REPRO_FAULT_INJECT"):
            from repro.experiments.faults import (InjectedFault,
                                                  maybe_inject_service)
            kind = maybe_inject_service(
                f"serve/journal/{record['event']}")
            if kind == "torn-write":
                # A crash mid-write: half a record, no newline, and the
                # bytes really on disk so the *next* process sees them.
                handle.write(line[:max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
                self._torn = True
                raise InjectedFault(
                    f"torn journal write at {record['event']}")
        if self._torn:
            # Seal the torn tail so this record stays parseable (the
            # loader skips the half-record, not everything after it).
            handle.write("\n")
            self._torn = False
        handle.write(line + "\n")
        handle.flush()
        if sync:
            os.fsync(handle.fileno())
        self.appended += 1

    def accept(self, job_id: str, spec: Dict[str, Any]) -> None:
        """Record an accepted job — MUST precede the client's ack."""
        self._append({"event": "accept", "id": job_id, "spec": spec},
                     sync=True)

    def cell(self, job_id: str, index: int, key: str, status: str,
             via: str) -> None:
        """Record one resolved cell (progress; cheap, flush-only)."""
        self._append({"event": "cell", "id": job_id, "index": index,
                      "key": key, "status": status, "via": via},
                     sync=False)

    def state(self, job_id: str, state: str) -> None:
        """Record a job state transition (fsynced when terminal)."""
        self._append({"event": "state", "id": job_id, "state": state},
                     sync=state in TERMINAL_STATES)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    # -- replay -------------------------------------------------------------

    def load(self) -> JournalReplay:
        """Fold the journal into per-job records, tolerating torn lines."""
        replay = JournalReplay()
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return replay
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                replay.torn_lines += 1
                continue
            if not isinstance(record, dict) \
                    or record.get("schema") != JOURNAL_SCHEMA:
                replay.torn_lines += 1
                continue
            event = record.get("event")
            job_id = record.get("id")
            if not isinstance(job_id, str):
                replay.torn_lines += 1
                continue
            if event == "accept":
                spec = record.get("spec")
                if not isinstance(spec, dict):
                    replay.torn_lines += 1
                    continue
                replay.jobs[job_id] = JobRecord(spec=spec)
            elif event == "cell":
                job = replay.jobs.get(job_id)
                if job is None:
                    continue  # cell for a job we never saw accepted
                try:
                    index = int(record["index"])
                except (KeyError, TypeError, ValueError):
                    replay.torn_lines += 1
                    continue
                job.cells[index] = {
                    "key": record.get("key", ""),
                    "status": record.get("status", ""),
                    "via": record.get("via", ""),
                }
            elif event == "state":
                job = replay.jobs.get(job_id)
                if job is not None:
                    job.state = record.get("state")
            else:
                replay.torn_lines += 1
        return replay
