"""The HTTP face of the service: asyncio server, routes, signals.

Stdlib-only by design: a small hand-rolled HTTP/1.1 layer over
:func:`asyncio.start_server`.  The protocol subset is deliberately
minimal — ``Content-Length`` bodies only (no chunked uploads), one
request per connection — because every client we ship speaks exactly
that, and less parser is less attack/bug surface.

Routes::

    GET  /healthz               liveness + queue snapshot
    GET  /metrics               counters, cache info, jobs by state
    GET  /jobs                  id -> state summary of every known job
    POST /jobs                  submit a grid  -> 202 {"id": ...}
    GET  /jobs/<id>             status + per-cell progress
    GET  /jobs/<id>/result      merged grid (partial while running)
    POST /jobs/<id>/cancel      cancel a queued/running job

Every error is structured JSON: ``{"error": ..., "retryable": bool}``
with ``retry_after`` on 429/503 — a shed client always knows it may
simply try again, and nothing ever hangs or silently drops.

On SIGTERM/SIGINT the server stops admitting (503), finishes queued and
running jobs (bounded by ``--drain-timeout``), syncs the journal and
exits — and anything still unfinished is journaled, so the next start
picks it up.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments.executor import Executor, ResultCache
from repro.service.jobs import (CancelConflict, JobManager, Overloaded,
                                ServiceDraining)
from repro.service.journal import JobJournal
from repro.service.protocol import SpecError

#: Largest request body we will read (a full 256-cell spec is ~50 KiB).
MAX_BODY_BYTES = 1 << 20

#: Per-connection read deadline: a stalled (or ``slow-client``-faulted)
#: peer may not pin a connection handler forever.
READ_TIMEOUT = 10.0

#: Suggested client back-off, sent with 429/503 responses.
RETRY_AFTER_SECONDS = 2


class _HttpError(Exception):
    """Internal: turn into a structured JSON error response."""

    def __init__(self, status: int, message: str,
                 retryable: bool = False,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retryable = retryable
        self.retry_after = retry_after

    def __reduce__(self):
        return (type(self), (self.status, self.message,
                             self.retryable, self.retry_after))


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class JobServer:
    """Asyncio HTTP server wired to a :class:`JobManager`."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self.started = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Recover journaled jobs, start sessions, bind the socket."""
        requeued = self.manager.recover()
        if requeued:
            print(f"recovered {requeued} unfinished job(s) from journal",
                  flush=True)
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.started.set()
        # A parseable address line: tests bind port 0 and scrape this.
        print(f"listening on http://{self.host}:{self.port}", flush=True)
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Flip to draining; :meth:`serve_forever` takes it from there."""
        self.manager.begin_drain()
        self._shutdown.set()

    async def serve_forever(self,
                            drain_timeout: Optional[float] = None) -> bool:
        """Run until a shutdown is requested, then drain and exit."""
        await self._shutdown.wait()
        print("draining: admission closed, finishing jobs...", flush=True)
        clean = await self.manager.drain(timeout=drain_timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.manager.journal.close()
        print(f"drained {'cleanly' if clean else 'with unfinished jobs'}",
              flush=True)
        return clean

    # -- connection handling ------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=READ_TIMEOUT)
            except asyncio.TimeoutError:
                await self._send(writer, 408, self._error_payload(
                    "request read timed out", retryable=True))
                return
            except _HttpError as exc:
                await self._send_error(writer, exc)
                return
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            try:
                status, payload = self._route(method, path, body)
            except _HttpError as exc:
                await self._send_error(writer, exc)
                return
            except Exception as exc:  # pragma: no cover - last resort
                self.manager.metrics.internal_errors += 1
                await self._send_error(writer, _HttpError(
                    500, f"{type(exc).__name__}: {exc}"))
                return
            await self._send(writer, status, payload)
        except (ConnectionError, BrokenPipeError):
            pass  # peer went away mid-response; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader,
                            ) -> Tuple[str, str, Optional[Any]]:
        request_line = (await reader.readline()).decode(
            "latin-1", "replace").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line "
                                  f"{request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            line = raw.decode("latin-1", "replace").strip()
            if not line:
                break
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body: Optional[Any] = None
        if length:
            raw_body = await reader.readexactly(length)
            try:
                body = json.loads(raw_body)
            except ValueError:
                raise _HttpError(400, "body is not valid JSON") from None
        return method.upper(), target.split("?", 1)[0], body

    # -- routing ------------------------------------------------------------

    def _route(self, method: str, path: str,
               body: Optional[Any]) -> Tuple[int, Dict[str, Any]]:
        manager = self.manager
        if path == "/healthz" and method == "GET":
            return 200, manager.healthz_payload()
        if path == "/metrics" and method == "GET":
            return 200, manager.metrics_payload()
        if path == "/jobs":
            if method == "GET":
                return 200, {"jobs": {
                    job_id: job.state
                    for job_id, job in manager.jobs.items()}}
            if method == "POST":
                return self._submit(body)
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            return self._job_route(method, path)
        raise _HttpError(404, f"no route {path}")

    def _submit(self, body: Optional[Any]) -> Tuple[int, Dict[str, Any]]:
        if body is None:
            raise _HttpError(400, "POST /jobs needs a JSON body")
        try:
            job = self.manager.submit(body)
        except SpecError as exc:
            raise _HttpError(400, str(exc)) from None
        except Overloaded as exc:
            raise _HttpError(429, str(exc), retryable=True,
                             retry_after=RETRY_AFTER_SECONDS) from None
        except ServiceDraining as exc:
            raise _HttpError(503, str(exc), retryable=True,
                             retry_after=RETRY_AFTER_SECONDS) from None
        return 202, {"id": job.id, "state": job.state,
                     "cells": job.total_cells}

    def _job_route(self, method: str,
                   path: str) -> Tuple[int, Dict[str, Any]]:
        parts = path.strip("/").split("/")
        # parts[0] == "jobs"; then <id> [, action]
        if len(parts) not in (2, 3):
            raise _HttpError(404, f"no route {path}")
        job_id = parts[1]
        try:
            job = self.manager.get(job_id)
        except KeyError:
            raise _HttpError(404, f"no job {job_id!r}") from None
        if len(parts) == 2:
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return 200, job.status_payload()
        action = parts[2]
        if action == "result":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return 200, self.manager.result_payload(job)
        if action == "cancel":
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {path}")
            try:
                job = self.manager.cancel(job_id)
            except CancelConflict as exc:
                raise _HttpError(409, str(exc)) from None
            return 200, {"id": job.id, "state": job.state}
        raise _HttpError(404, f"no route {path}")

    # -- responses ----------------------------------------------------------

    @staticmethod
    def _error_payload(message: str, retryable: bool = False,
                       retry_after: Optional[int] = None,
                       ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"error": message,
                                   "retryable": retryable}
        if retry_after is not None:
            payload["retry_after"] = retry_after
        return payload

    async def _send_error(self, writer: asyncio.StreamWriter,
                          exc: _HttpError) -> None:
        await self._send(writer, exc.status, self._error_payload(
            exc.message, retryable=exc.retryable,
            retry_after=exc.retry_after))

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def _serve(manager: JobManager, host: str, port: int,
                 drain_timeout: Optional[float],
                 install_signals: bool = True) -> bool:
    server = JobServer(manager, host=host, port=port)
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, server.request_shutdown)
    await server.start()
    return await server.serve_forever(drain_timeout=drain_timeout)


def run_server(*, host: str = "127.0.0.1", port: int = 8537,
               state_dir: str = ".repro-service",
               queue_limit: int = 32, sessions: int = 2,
               job_timeout: Optional[float] = None,
               drain_timeout: Optional[float] = None,
               cache_max_entries: Optional[int] = None,
               executor_jobs: int = 2,
               cell_timeout: Optional[float] = None,
               max_retries: int = 2,
               install_signals: bool = True) -> int:
    """Blocking entry point behind ``repro serve``.

    Returns a process exit code: 0 for a clean drain, 1 if the drain
    timed out with jobs unfinished (they stay journaled either way).
    """
    state = Path(state_dir)
    state.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(state / "cache", max_entries=cache_max_entries)
    journal = JobJournal(state / "journal.jsonl")

    def executor_factory() -> Executor:
        # start_method="spawn": the server's event loop plus session
        # runner threads make fork() unsafe — a forked worker can
        # inherit a lock held by another thread (or the loop's signal
        # plumbing) and become impossible to terminate, hanging the
        # drain.  Spawned workers start clean and always die on demand.
        return Executor(jobs=executor_jobs, cache=cache,
                        cell_timeout=cell_timeout,
                        max_retries=max_retries,
                        start_method="spawn")

    manager = JobManager(cache=cache, journal=journal,
                         executor_factory=executor_factory,
                         queue_limit=queue_limit, sessions=sessions,
                         job_timeout=job_timeout)
    clean = asyncio.run(_serve(manager, host, port, drain_timeout,
                               install_signals=install_signals))
    return 0 if clean else 1
