"""Job lifecycle: admission control, dedup, sessions, crash recovery.

The :class:`JobManager` is the scheduling loop of the service (the
paper's analogy one level up: jobs are the instructions, sessions the
issue ports, the admission queue the reservation station):

* **Admission** — :meth:`JobManager.submit` validates the spec, writes
  the job to the write-ahead journal, then enqueues it.  A full queue
  sheds the submission with :class:`Overloaded` (HTTP 429 material);
  a draining server sheds with :class:`ServiceDraining` (503).  Both
  are structured and retryable — never a hang, never a silent drop.
* **Sessions** — ``sessions`` worker coroutines pull jobs off the queue
  and run each job's cells through its own
  :class:`~repro.experiments.executor.Executor` (the fleet), streaming
  per-cell outcomes into the job as they complete.
* **Dedup** — before dispatching a cell, a session consults the shared
  in-flight map (``cell_key -> Future``): a cell another session is
  already simulating is awaited, not re-run.  Cells neither in flight
  nor cached are registered so *later* arrivals dedup against us.
  An owner that aborts resolves its futures with ``None``; waiters
  retry the cell themselves on the next round (bounded), so one
  cancelled job can never strand another.
* **Recovery** — :meth:`JobManager.recover` replays the journal:
  non-terminal jobs are requeued from their persisted specs, and their
  previously completed cells resolve instantly from the shared result
  cache — accepted work is never lost and cached cells are never
  recomputed.
* **Drain** — :meth:`JobManager.drain` stops admission and waits for
  every queued + running job to reach a terminal state.
"""

from __future__ import annotations

import asyncio
import uuid
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from repro.experiments.executor import (CellOutcome, Executor, ResultCache,
                                        cell_key)
from repro.service.journal import JobJournal
from repro.service.protocol import JobSpec

#: How many times a session re-tries cells whose in-flight owner aborted
#: before declaring them lost.
DEDUP_ROUNDS = 3


class Overloaded(RuntimeError):
    """The admission queue is full; the submission was shed (HTTP 429)."""

    def __init__(self, queue_depth: int, queue_limit: int) -> None:
        super().__init__(
            f"admission queue full ({queue_depth}/{queue_limit})")
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit

    def __reduce__(self):
        return (type(self), (self.queue_depth, self.queue_limit))


class ServiceDraining(RuntimeError):
    """The server is draining; no new work is admitted (HTTP 503)."""


class CancelConflict(RuntimeError):
    """The job already reached a terminal state (HTTP 409)."""


class JobState:
    """Job lifecycle states (plain strings: they travel as JSON)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED, TIMEOUT})


@dataclass
class ServiceMetrics:
    """Monotonic service counters, surfaced on ``/metrics``."""

    accepted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    job_timeouts: int = 0
    #: Jobs requeued from the journal after a restart.
    recovered: int = 0
    #: Torn journal lines skipped during recovery.
    journal_torn_lines: int = 0
    #: Cells resolved by awaiting another job's in-flight simulation.
    dedup_hits: int = 0
    #: Cells resolved from the shared result cache at job level.
    cache_hits: int = 0
    #: Simulation attempts beyond the first, summed over cells.
    cell_retries: int = 0
    #: Cells whose final outcome was a per-cell wall-clock timeout.
    cell_timeouts: int = 0
    #: Worker pools respawned by the executors (timeouts/worker deaths).
    pool_respawns: int = 0
    #: Requests that failed inside a handler (HTTP 500s).
    internal_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class Job:
    """One accepted grid submission and everything known about it."""

    def __init__(self, job_id: str, spec: JobSpec,
                 recovered: bool = False) -> None:
        self.id = job_id
        self.spec = spec
        self.cells = spec.cells()
        self.keys = [cell_key(cell) for cell in self.cells]
        self.state = JobState.QUEUED
        self.error = ""
        self.recovered = recovered
        #: index -> {"status", "via", "attempts"} for resolved cells.
        self.cell_records: Dict[int, Dict[str, Any]] = {}
        #: index -> SimStats for cells resolved in this process.
        self.results: Dict[int, Any] = {}
        #: Set to abandon the job's remaining work (cancel / timeout /
        #: drain).  ``stop`` alone does not decide the final state:
        #: only an explicit client cancel flips ``cancel_requested``.
        self.stop = asyncio.Event()
        #: A client asked for cancellation (terminal); a drain-stop
        #: leaves this False so the job stays journal-recoverable.
        self.cancel_requested = False
        #: Set exactly once, when the job reaches a terminal state.
        self.finished = asyncio.Event()

    @property
    def total_cells(self) -> int:
        return len(self.cells)

    @property
    def resolved_cells(self) -> int:
        return len(self.cell_records)

    @property
    def ok_cells(self) -> int:
        return sum(1 for rec in self.cell_records.values()
                   if rec["status"] == "ok")

    def record(self, index: int, outcome: CellOutcome, via: str) -> None:
        self.cell_records[index] = {
            "status": outcome.status,
            "via": via,
            "attempts": outcome.attempts,
        }
        if outcome.ok and outcome.stats is not None:
            self.results[index] = outcome.stats

    def status_payload(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for rec in self.cell_records.values():
            counts[rec["status"]] = counts.get(rec["status"], 0) + 1
        return {
            "id": self.id,
            "state": self.state,
            "error": self.error,
            "recovered": self.recovered,
            "cells": {
                "total": self.total_cells,
                "resolved": self.resolved_cells,
                "ok": self.ok_cells,
                "by_status": counts,
            },
            "cell_detail": [
                {
                    "index": index,
                    "name": self.cells[index].name,
                    **self.cell_records.get(index,
                                            {"status": "pending"}),
                }
                for index in range(self.total_cells)
            ],
        }


def _new_job_id() -> str:
    return uuid.uuid4().hex[:12]


class JobManager:
    """Admission, scheduling, dedup, recovery and drain for jobs.

    ``executor_factory`` builds one fresh
    :class:`~repro.experiments.executor.Executor` per job run; each
    session needs its own because a single executor's bookkeeping is
    not reentrant.  All factories should share ``cache`` — that is the
    read-through tier dedup and recovery lean on.
    """

    def __init__(self, *,
                 cache: ResultCache,
                 journal: JobJournal,
                 executor_factory: Optional[Callable[[], Executor]] = None,
                 queue_limit: int = 32,
                 sessions: int = 2,
                 job_timeout: Optional[float] = None) -> None:
        self.cache = cache
        self.journal = journal
        self.executor_factory = executor_factory or (
            lambda: Executor(jobs=2, cache=cache))
        self.queue_limit = max(1, queue_limit)
        self.session_count = max(1, sessions)
        self.job_timeout = (job_timeout
                            if job_timeout and job_timeout > 0 else None)
        self.jobs: Dict[str, Job] = {}
        self.metrics = ServiceMetrics()
        self.draining = False
        #: cell_key -> Future[Optional[CellOutcome]] for cells some
        #: session is currently simulating.
        self._inflight: Dict[str, "asyncio.Future[Optional[CellOutcome]]"] \
            = {}
        self._queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()
        self._sessions: List["asyncio.Task[None]"] = []

    # -- admission ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Jobs accepted but not yet picked up by a session."""
        return sum(1 for job in self.jobs.values()
                   if job.state == JobState.QUEUED)

    @property
    def running_count(self) -> int:
        return sum(1 for job in self.jobs.values()
                   if job.state == JobState.RUNNING)

    def submit(self, payload: Any) -> Job:
        """Validate, journal (write-ahead) and enqueue one submission.

        Raises :class:`~repro.service.protocol.SpecError` (400),
        :class:`Overloaded` (429) or :class:`ServiceDraining` (503).
        """
        if self.draining:
            raise ServiceDraining("server is draining; retry elsewhere")
        depth = self.queue_depth
        if depth >= self.queue_limit:
            self.metrics.shed += 1
            raise Overloaded(depth, self.queue_limit)
        spec = JobSpec.from_payload(payload)
        job = Job(_new_job_id(), spec)
        # Write-ahead: the journal record precedes the ack and the
        # enqueue, so an accepted job is recoverable by construction.
        self.journal.accept(job.id, spec.to_payload())
        self.jobs[job.id] = job
        self._queue.put_nowait(job.id)
        self.metrics.accepted += 1
        return job

    def get(self, job_id: str) -> Job:
        return self.jobs[job_id]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job; conflict if already terminal."""
        job = self.jobs[job_id]
        if job.state in JobState.TERMINAL:
            raise CancelConflict(
                f"job {job_id} already {job.state}")
        job.cancel_requested = True
        job.stop.set()
        if job.state == JobState.QUEUED:
            # The session that eventually dequeues it skips terminal jobs.
            self._finalize(job, JobState.CANCELLED)
        return job

    # -- recovery -----------------------------------------------------------

    def recover(self) -> int:
        """Replay the journal; requeue every non-terminal job.

        Completed cells of a requeued job are deliberately *not*
        restored in memory: re-running the job resolves them from the
        shared result cache (as ``via_cache`` outcomes), which is both
        simpler and self-verifying — the cache, not the journal, is the
        source of truth for results.  Terminal jobs are restored so
        clients can still query their status/results after a restart.
        """
        replay = self.journal.load()
        self.metrics.journal_torn_lines += replay.torn_lines
        requeued = 0
        for job_id, record in replay.jobs.items():
            if job_id in self.jobs:
                continue
            try:
                spec = JobSpec.from_payload(record.spec)
            except Exception:
                # A spec that journaled fine but no longer validates
                # (e.g. a benchmark profile was removed) cannot run.
                self.metrics.journal_torn_lines += 1
                continue
            job = Job(job_id, spec, recovered=True)
            if record.terminal:
                job.state = record.state or JobState.DONE
                for index, cell in record.cells.items():
                    if 0 <= index < job.total_cells:
                        job.cell_records[index] = {
                            "status": cell.get("status", ""),
                            "via": cell.get("via", ""),
                            "attempts": 0,
                        }
                job.finished.set()
            else:
                self._queue.put_nowait(job.id)
                self.metrics.recovered += 1
                requeued += 1
            self.jobs[job.id] = job
        return requeued

    # -- sessions -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the session workers (idempotent)."""
        while len(self._sessions) < self.session_count:
            self._sessions.append(
                asyncio.create_task(
                    self._session(len(self._sessions))))

    async def _session(self, index: int) -> None:
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return
            job = self.jobs.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                continue  # cancelled while queued, or stale entry
            await self._process(job)

    async def _process(self, job: Job) -> None:
        from repro.experiments.faults import (InjectedFault,
                                              maybe_inject_service)
        job.state = JobState.RUNNING
        self.journal.state(job.id, JobState.RUNNING)
        try:
            maybe_inject_service(f"serve/job/{job.id}")
            if self.job_timeout is not None:
                await asyncio.wait_for(self._run_job(job),
                                       timeout=self.job_timeout)
            else:
                await self._run_job(job)
        except asyncio.TimeoutError:
            job.stop.set()  # unblock the executor thread promptly
            self.metrics.job_timeouts += 1
            self._finalize(job, JobState.TIMEOUT,
                           error=f"exceeded job timeout "
                                 f"{self.job_timeout:.1f}s")
            return
        except InjectedFault as exc:
            self._finalize(job, JobState.FAILED, error=str(exc))
            return
        except asyncio.CancelledError:
            job.stop.set()
            self._finalize(job, JobState.FAILED,
                           error="server stopped mid-job")
            raise
        except Exception as exc:  # never let a job kill the session
            self._finalize(job, JobState.FAILED,
                           error=f"{type(exc).__name__}: {exc}")
            return
        if job.cancel_requested:
            self._finalize(job, JobState.CANCELLED)
        elif job.stop.is_set():
            # Drain stop: the job is interrupted, not finished.  Leave
            # it non-terminal (back to queued, journaled as such) so
            # the next start requeues it — a terminal state here would
            # silently lose acked work across a restart.
            job.state = JobState.QUEUED
            self.journal.state(job.id, JobState.QUEUED)
        elif job.ok_cells == job.total_cells:
            self._finalize(job, JobState.DONE)
        else:
            self._finalize(job, JobState.FAILED,
                           error=f"{job.total_cells - job.ok_cells} "
                                 f"cell(s) failed")

    def _finalize(self, job: Job, state: str, error: str = "") -> None:
        if job.state in JobState.TERMINAL:
            return
        job.state = state
        job.error = error
        self.journal.state(job.id, state)
        if state == JobState.DONE:
            self.metrics.completed += 1
        elif state == JobState.FAILED:
            self.metrics.failed += 1
        elif state == JobState.CANCELLED:
            self.metrics.cancelled += 1
        job.finished.set()

    # -- the per-job scheduling loop ---------------------------------------

    async def _run_job(self, job: Job) -> None:
        pending: Set[int] = {
            index for index in range(job.total_cells)
            if index not in job.cell_records}
        for _round in range(DEDUP_ROUNDS):
            if not pending or job.stop.is_set():
                return
            pending = await self._run_round(job, pending)
        for index in sorted(pending):
            # An owner aborted repeatedly and we exhausted the rounds.
            job.record(index, CellOutcome(
                status="error", error_type="DedupLost",
                error="in-flight owner aborted repeatedly"), via="dedup")
            self._journal_cell(job, index)

    async def _run_round(self, job: Job, indices: Set[int]) -> Set[int]:
        """Resolve *indices*: cache, dedup-wait, or own simulation.

        Returns the indices left unresolved (their in-flight owner
        aborted), for the caller to retry.
        """
        loop = asyncio.get_running_loop()
        own: Dict[str, List[int]] = {}
        own_futures: Dict[str, "asyncio.Future[Optional[CellOutcome]]"] = {}
        waits: Dict[str, List[int]] = {}
        wait_futures: Dict[str, "asyncio.Future[Optional[CellOutcome]]"] = {}
        for index in sorted(indices):
            key = job.keys[index]
            if key in own:
                own[key].append(index)
                continue
            if key in waits:
                waits[key].append(index)
                continue
            inflight = self._inflight.get(key)
            if inflight is not None and not inflight.done():
                waits[key] = [index]
                wait_futures[key] = inflight
                self.metrics.dedup_hits += 1
                continue
            stats = self.cache.get(key)
            if stats is not None:
                self.metrics.cache_hits += 1
                job.record(index, CellOutcome(
                    status="ok", stats=stats, attempts=0,
                    via_cache=True), via="cache")
                self._journal_cell(job, index)
                continue
            own[key] = [index]
            future: "asyncio.Future[Optional[CellOutcome]]" = \
                loop.create_future()
            own_futures[key] = future
            self._inflight[key] = future
        unresolved: Set[int] = set()
        if own:
            try:
                await self._simulate_own(job, own, own_futures)
            finally:
                # Whatever we never resolved (stop, timeout-cancel,
                # executor exception): release the in-flight slots and
                # wake the waiters with None so they self-serve.
                for key, future in own_futures.items():
                    if self._inflight.get(key) is future:
                        del self._inflight[key]
                    if not future.done():
                        future.set_result(None)
                        unresolved.update(own[key])
        for key, indices_for_key in waits.items():
            outcome = await self._await_shared(job, wait_futures[key])
            if outcome is None:
                unresolved.update(indices_for_key)
                continue
            for index in indices_for_key:
                job.record(index, outcome, via="dedup")
                self._journal_cell(job, index)
        if job.stop.is_set():
            return set()
        return unresolved

    async def _simulate_own(self, job: Job, own: Dict[str, List[int]],
                            own_futures: Dict[
                                str,
                                "asyncio.Future[Optional[CellOutcome]]"],
                            ) -> None:
        key_by_cell = {job.cells[indices[0]]: key
                       for key, indices in own.items()}
        executor = self.executor_factory()
        try:
            session = executor.run_async(
                list(key_by_cell), stop=job.stop.is_set)
            async for cell, outcome in session:
                key = key_by_cell[cell]
                for index in own[key]:
                    job.record(index, outcome, via="sim")
                    self._journal_cell(job, index)
                self.metrics.cell_retries += max(0, outcome.attempts - 1)
                if outcome.status == "timeout":
                    self.metrics.cell_timeouts += 1
                future = own_futures.get(key)
                if future is not None and not future.done():
                    future.set_result(outcome)
                if self._inflight.get(key) is future:
                    del self._inflight[key]
        finally:
            summary = executor.last_summary
            if summary is not None:
                self.metrics.pool_respawns += summary.respawns

    async def _await_shared(
            self, job: Job,
            future: "asyncio.Future[Optional[CellOutcome]]",
    ) -> Optional[CellOutcome]:
        """Wait for another session's cell, or for our job's stop."""
        if future.done():
            return future.result()
        stop_task = asyncio.create_task(job.stop.wait())
        try:
            await asyncio.wait({future, stop_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            stop_task.cancel()
        if future.done():
            return future.result()
        return None  # stopped first; caller sees job.stop and bails

    def _journal_cell(self, job: Job, index: int) -> None:
        record = job.cell_records[index]
        self.journal.cell(job.id, index, job.keys[index],
                          record["status"], record["via"])

    # -- results ------------------------------------------------------------

    def result_payload(self, job: Job) -> Dict[str, Any]:
        """Merged grid results, cache-backed for recovered jobs."""
        grid: Dict[str, Dict[str, Any]] = {}
        failed: List[str] = []
        for index, cell in enumerate(job.cells):
            row = grid.setdefault(cell.benchmark, {})
            stats = job.results.get(index)
            if stats is None and job.state in JobState.TERMINAL:
                # Recovered job: the stats live in the shared cache.
                stats = self.cache.get(job.keys[index])
            if stats is not None:
                row[cell.label] = asdict(stats)
            else:
                record = job.cell_records.get(index)
                row[cell.label] = None
                if record is not None and record["status"] != "ok":
                    failed.append(cell.name)
        return {
            "id": job.id,
            "state": job.state,
            "partial": job.state not in JobState.TERMINAL
            or job.ok_cells < job.total_cells,
            "results": grid,
            "failed_cells": failed,
        }

    # -- lifecycle ----------------------------------------------------------

    def begin_drain(self) -> None:
        self.draining = True

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, wait for all jobs to finish; True if clean.

        On timeout, remaining jobs are stopped (their state becomes
        ``failed``) and False is returned — the journal still holds
        them, so a restart can pick them back up.
        """
        self.begin_drain()
        outstanding = [job for job in self.jobs.values()
                       if job.state not in JobState.TERMINAL]
        if outstanding:
            waiter = asyncio.gather(
                *(job.finished.wait() for job in outstanding))
            try:
                if timeout is not None:
                    await asyncio.wait_for(waiter, timeout=timeout)
                else:
                    await waiter
            except asyncio.TimeoutError:
                for job in outstanding:
                    job.stop.set()
                await self.stop()
                return False
        await self.stop()
        return True

    async def stop(self) -> None:
        """Terminate the session workers (queued jobs stay journaled)."""
        for _ in self._sessions:
            self._queue.put_nowait(None)
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        self._sessions.clear()

    # -- observability ------------------------------------------------------

    def state_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def metrics_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = dict(self.metrics.as_dict())
        payload.update({
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "running": self.running_count,
            "sessions": self.session_count,
            "inflight_cells": len(self._inflight),
            "jobs_by_state": self.state_counts(),
            "draining": self.draining,
            "cache": self.cache.info(),
        })
        return payload

    def healthz_payload(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "running": self.running_count,
            "jobs_by_state": self.state_counts(),
        }
