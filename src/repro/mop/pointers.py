"""MOP pointers and the I-cache-side pointer store (Section 5.1.3).

A hardware MOP pointer is four bits — one control bit (does the head→tail
path cross exactly one taken direct branch/jump?) and a 3-bit offset (the
forward distance from head to tail, covering the 8-instruction scope).  The
simulator's :class:`MopPointer` also records the expected tail PC: formation
hardware would re-identify the tail from offset + control flow alone, and
the stored PC simply lets the simulator verify the match exactly the way the
control-flow comparison of Section 5.2.1 would.

Pointers become *usable* only ``detection_delay`` cycles after the detection
logic observed the pair (Section 6.2 evaluates 3 vs. 100 cycles).  Deleting
a pointer (the last-arriving-operand filter of Section 5.4.2 "writes a
zero-value pointer") leaves a tombstone: the pair is blacklisted, and the
detection logic may later install an *alternative* pair for the same head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

#: Pointer kinds.
DEPENDENT = "dependent"
INDEPENDENT = "independent"


@dataclass(frozen=True)
class MopPointer:
    """One MOP pointer: head → tail grouping directive."""

    head_pc: int
    tail_pc: int
    offset: int          # forward distance in operations (1..7)
    control_bit: int     # taken direct branches crossed (0 or 1)
    kind: str = DEPENDENT

    def __post_init__(self) -> None:
        if not 1 <= self.offset <= 7:
            raise ValueError("pointer offset must fit in 3 bits (1..7)")
        if self.control_bit not in (0, 1):
            raise ValueError("control bit must be 0 or 1")


class PointerCache:
    """PC-indexed MOP pointer store with detection delay and blacklisting.

    Capacity is unmodelled: the paper stores pointers in the first-level
    instruction cache, and every workload here fits its static program in
    the 16KB IL1, so pointer evictions would not occur anyway.
    """

    def __init__(self, detection_delay: int = 3) -> None:
        self.detection_delay = detection_delay
        self._pointers: Dict[int, Tuple[MopPointer, int]] = {}
        self._blacklist: Set[Tuple[int, int]] = set()
        self.created = 0
        self.deleted = 0

    def install(self, pointer: MopPointer, now: int) -> bool:
        """Install *pointer*, usable after the detection delay.

        Refuses blacklisted pairs and heads that already carry a live
        pointer (each instruction has exactly one pointer, Section 5.1.3).
        Returns True when the pointer was stored.
        """
        key = (pointer.head_pc, pointer.tail_pc)
        if key in self._blacklist:
            return False
        if pointer.head_pc in self._pointers:
            return False
        self._pointers[pointer.head_pc] = (pointer,
                                           now + self.detection_delay)
        self.created += 1
        return True

    def lookup(self, head_pc: int, now: int) -> Optional[MopPointer]:
        """Return the usable pointer for *head_pc*, if its delay elapsed."""
        item = self._pointers.get(head_pc)
        if item is None:
            return None
        pointer, available_at = item
        if now < available_at:
            return None
        return pointer

    def has_pointer(self, head_pc: int) -> bool:
        """True when *head_pc* has a stored pointer (usable or pending)."""
        return head_pc in self._pointers

    def delete(self, head_pc: int, blacklist_pair: bool = True) -> None:
        """Write a zero-value pointer (Section 5.4.2).

        The deleted pair is blacklisted so the detection logic searches for
        an *alternative* tail instead of re-creating the same pair.
        """
        item = self._pointers.pop(head_pc, None)
        if item is None:
            return
        pointer, _ = item
        if blacklist_pair:
            self._blacklist.add((pointer.head_pc, pointer.tail_pc))
        self.deleted += 1

    def is_blacklisted(self, head_pc: int, tail_pc: int) -> bool:
        return (head_pc, tail_pc) in self._blacklist

    def __len__(self) -> int:
        return len(self._pointers)
