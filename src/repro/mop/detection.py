"""MOP detection: the dependence-matrix algorithm of Figure 9.

The detection logic sits off the critical path, watching the renamed
operation stream one group (machine width) per cycle.  Its scope is the
current group plus the previous one — a 2-cycle scope capturing up to 8
operations on the 4-wide machine (Section 6.2).

For every potential MOP head (a value-generating candidate not already
claimed), the detector scans the head's *column* — the operations after it,
inside the scope, that depend on it — in program order and applies the
conservative cycle heuristic of Figure 8(c), encoded exactly as the paper's
"1"/"2" dependence marks:

* a consumer whose dependence mark is "1" (it has a single source operand,
  hence no incoming edge besides the head) may always be selected;
* a consumer marked "2" (two source operands — an incoming edge exists) may
  be selected only when it is the *first* mark in the column, because a mark
  above it means the head also has an outgoing edge to an instruction
  preceding the tail — the potential-cycle pattern of Figure 8.

A priority decoder resolves tails claimed by multiple heads in favour of the
earliest head.  After the dependent pass, the independent-MOP pass of
Section 5.4.1 pairs remaining unclaimed candidates with identical source
dependences.  Winning pairs become :class:`~repro.mop.pointers.MopPointer`
records installed in the pointer cache with the detection delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.uop import MOP_TAIL, SOLO, Uop
from repro.isa.opcodes import OpClass
from repro.mop.pointers import DEPENDENT, INDEPENDENT, MopPointer, PointerCache


class _Record:
    """Detection-window view of one renamed operation."""

    __slots__ = ("uop", "pc", "dest", "srcs", "candidate", "valuegen",
                 "taken_control", "marked", "is_tail")

    def __init__(self, uop: Uop) -> None:
        inst = uop.inst
        self.uop = uop
        self.pc = inst.pc
        self.dest = inst.dest
        self.srcs = inst.srcs
        self.candidate = inst.is_mop_candidate
        self.valuegen = inst.is_valuegen_candidate
        self.taken_control = inst.is_branch and inst.taken
        # Operations already grouped by formation are not re-examined.
        self.marked = uop.role != SOLO
        self.is_tail = uop.role == MOP_TAIL


class MopDetector:
    """Streaming MOP detection over renamed operation groups."""

    def __init__(self, config: MachineConfig, pointers: PointerCache) -> None:
        self.config = config
        self.pointers = pointers
        self._prev: List[_Record] = []
        self.pairs_found = 0
        self.independent_found = 0

    def observe_group(self, group: Sequence[Uop], now: int) -> None:
        """Feed one renamed group; may install pointers for later use."""
        records = [_Record(uop) for uop in group]
        window = self._prev + records
        if len(window) >= 2:
            self._detect(window, now)
        self._prev = records

    # ------------------------------------------------------------------

    def _detect(self, window: List[_Record], now: int) -> None:
        producers = self._dependences(window)
        consumers = self._columns(window, producers)
        claimed: set = set()

        # Dependent-MOP pass: heads in program order (priority decoder).
        # With the larger-MOP extension (mop_size > 2), an instruction
        # already claimed as a tail may still publish its *own* pointer:
        # formation chains pointers tail-to-tail to grow the group.
        chaining = self.config.mop_size > 2
        for h, head in enumerate(window):
            if not head.valuegen:
                continue
            if head.marked and not (chaining and head.is_tail):
                continue
            if self.pointers.has_pointer(head.pc):
                continue
            tail_idx = self._select_tail(window, consumers.get(h, ()), head,
                                         h, claimed)
            if tail_idx is None:
                continue
            tail = window[tail_idx]
            pointer = MopPointer(
                head_pc=head.pc,
                tail_pc=tail.pc,
                offset=tail_idx - h,
                control_bit=self._taken_between(window, h, tail_idx),
                kind=DEPENDENT,
            )
            if self.pointers.install(pointer, now):
                head.marked = True
                tail.marked = True
                tail.is_tail = True
                claimed.add(h)
                claimed.add(tail_idx)
                self.pairs_found += 1

        if self.config.independent_mops:
            self._detect_independent(window, producers, claimed, now)

    def _dependences(
        self, window: List[_Record]
    ) -> Dict[Tuple[int, int], int]:
        """Map (consumer index, src position) → producer index in window."""
        last_writer: Dict[int, int] = {}
        deps: Dict[Tuple[int, int], int] = {}
        for j, record in enumerate(window):
            for pos, src in enumerate(record.srcs):
                if src in last_writer:
                    deps[(j, pos)] = last_writer[src]
            if record.dest is not None:
                last_writer[record.dest] = j
        return deps

    def _columns(
        self,
        window: List[_Record],
        deps: Dict[Tuple[int, int], int],
    ) -> Dict[int, List[int]]:
        """Invert dependences: producer index → consumer indices, in order."""
        columns: Dict[int, List[int]] = {}
        for (j, _pos), i in sorted(deps.items()):
            column = columns.setdefault(i, [])
            if not column or column[-1] != j:
                column.append(j)
        return columns

    def _select_tail(
        self,
        window: List[_Record],
        column: Sequence[int],
        head: _Record,
        h: int,
        claimed: set,
    ) -> Optional[int]:
        """Scan the head's column for the first selectable tail."""
        for position, j in enumerate(column):
            tail = window[j]
            distance = j - h
            if distance > 7:
                break  # beyond the 3-bit offset reach
            if not tail.candidate or tail.marked or j in claimed:
                continue
            if self.pointers.is_blacklisted(head.pc, tail.pc):
                continue
            # Cycle heuristic: a "2" mark (tail with 2 source operands)
            # cannot be chosen across other marks (Figure 9).
            if len(tail.srcs) >= 2 and position > 0:
                continue
            if not self._control_flow_ok(window, h, j):
                continue
            if not self._source_limit_ok(window, h, j):
                continue
            return j
        return None

    def _taken_between(self, window: List[_Record], h: int, j: int) -> int:
        return sum(1 for k in range(h + 1, j) if window[k].taken_control)

    def _control_flow_ok(self, window: List[_Record], h: int, j: int) -> bool:
        """At most one taken direct branch between head and tail; taken
        indirect jumps forbid grouping (Section 5.1.3)."""
        taken = 0
        for k in range(h + 1, j):
            record = window[k]
            if not record.taken_control:
                continue
            if record.uop.inst.op_class is OpClass.JUMP_INDIRECT:
                return False
            taken += 1
            if taken > 1:
                return False
        return True

    def _source_limit_ok(self, window: List[_Record], h: int, j: int) -> bool:
        """CAM-style wakeup with two comparators limits merged sources."""
        limit = self.config.max_mop_sources
        if limit is None:
            return True
        head, tail = window[h], window[j]
        merged = set(head.srcs)
        for src in tail.srcs:
            # The tail's dependence on the head is intra-MOP: no tag needed.
            if src == head.dest:
                continue
            merged.add(src)
        return len(merged) <= limit

    def _detect_independent(
        self,
        window: List[_Record],
        deps: Dict[Tuple[int, int], int],
        claimed: set,
        now: int,
    ) -> None:
        """Pair unclaimed candidates with identical source dependences.

        Runs after the dependent pass so it never steals a dependent-MOP
        opportunity (Section 5.4.1).  Two operations qualify when they have
        no source operands, or identical source *dependences* — the same
        registers produced by the same in-window writers.
        """

        def signature(idx: int) -> Optional[frozenset]:
            record = window[idx]
            sig = set()
            for pos, src in enumerate(record.srcs):
                producer = deps.get((idx, pos))
                sig.add((src, producer if producer is not None else -1))
            return frozenset(sig)

        eligible = [
            i for i, record in enumerate(window)
            if record.candidate and not record.marked and i not in claimed
            and not self.pointers.has_pointer(record.pc)
        ]
        used: set = set()
        for a_pos, a in enumerate(eligible):
            if a in used:
                continue
            sig_a = signature(a)
            for b in eligible[a_pos + 1:]:
                if b in used or b - a > 7:
                    continue
                if self.pointers.is_blacklisted(window[a].pc, window[b].pc):
                    continue
                if signature(b) != sig_a:
                    continue
                if not self._control_flow_ok(window, a, b):
                    continue
                limit = self.config.max_mop_sources
                if limit is not None and len(window[a].srcs) > limit:
                    continue
                pointer = MopPointer(
                    head_pc=window[a].pc,
                    tail_pc=window[b].pc,
                    offset=b - a,
                    control_bit=self._taken_between(window, a, b),
                    kind=INDEPENDENT,
                )
                if self.pointers.install(pointer, now):
                    window[a].marked = True
                    window[b].marked = True
                    used.add(a)
                    used.add(b)
                    self.independent_found += 1
                break
