"""Macro-op machinery: detection, pointers, and formation (Section 5).

* :mod:`repro.mop.pointers` — MOP pointers (4 bits in hardware: one
  control-flow bit plus a 3-bit forward offset) cached alongside the
  instruction cache, with the detection-delay and deletion (zero-pointer)
  semantics of Sections 5.1.3 and 5.4.2.
* :mod:`repro.mop.detection` — the dependence-matrix detection algorithm of
  Figure 9, including the conservative cycle heuristic of Figure 8(c) and
  the independent-MOP pass of Section 5.4.1.
* :mod:`repro.mop.formation` — MOP formation at the rename/queue boundary:
  control-flow checking, pair location, and the insertion policy with
  pending bits across consecutive insert groups (Figure 11).
"""

from repro.mop.pointers import MopPointer, PointerCache
from repro.mop.detection import MopDetector
from repro.mop.formation import FormationDirective, MopFormation

__all__ = [
    "MopPointer",
    "PointerCache",
    "MopDetector",
    "MopFormation",
    "FormationDirective",
]
