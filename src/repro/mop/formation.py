"""MOP formation: locating pairs and the insertion policy (Section 5.2).

Formation runs where the rename stage hands groups to the queue stage.  For
each operation whose PC carries a usable MOP pointer, it locates the
expected tail — at the pointer's offset, with the control-flow path (number
of intervening taken branches) matching the pointer's control bit — and
emits *directives* the insert stage executes:

* ``solo``   — insert the operation into its own issue-queue entry,
* ``mop``    — insert head and tail into one shared entry,
* ``pending``— insert the head with the pending bit set: the tail is
  expected in the *next* insert group (Figure 11); the scheduler must not
  select the entry until the tail arrives,
* ``attach`` — the expected tail arrived: complete the pending entry.

If the tail is not where the pointer says (control flow diverged, fetch gap
longer than one group, or the slot holds a different instruction), the head
proceeds ungrouped — the paper's "does not group with an unexpected
instruction in the fall-through path" (Section 5.1.3), and the pending-bit
timeout doubles as the branch-squash tail invalidation of Section 5.3.2:
a head whose tail was squashed runs solo with its tail operands forced
ready.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.uop import Uop
from repro.mop.pointers import MopPointer, PointerCache

#: Directive verbs.
SOLO = "solo"
MOP = "mop"
PENDING = "pending"
ATTACH = "attach"


@dataclass
class FormationDirective:
    """One insert-stage action, in program order."""

    verb: str
    uop: Uop
    tail: Optional[Uop] = None          # for MOP
    pointer: Optional[MopPointer] = None
    head_uop: Optional[Uop] = None      # for ATTACH: the pending head
    #: additional members beyond the first pair, when mop_size > 2 —
    #: the Section 4.3 larger-MOP extension, formed by chaining each
    #: member's own pointer.
    extra_tails: List[Uop] = field(default_factory=list)


@dataclass
class _PendingExpectation:
    """A head waiting for its tail in the next insert group."""

    head: Uop
    pointer: MopPointer
    next_group_index: int   # where in the next group the tail must sit
    taken_needed: int       # control bit minus taken branches already seen
    issued_group: int       # group sequence number of the head
    #: cycle-safety state accumulated over the head's own group:
    #: did any intervening op read the head's destination, and which
    #: registers did intervening ops write (see _cycle_safe)?
    outgoing_seen: bool = False
    intervening_dests: frozenset = frozenset()


class MopFormation:
    """Stateful formation logic fed one insert group per call."""

    def __init__(self, config: MachineConfig, pointers: PointerCache) -> None:
        self.config = config
        self.pointers = pointers
        self._pending: List[_PendingExpectation] = []
        self._group_counter = 0
        self.pairs_formed = 0
        self.pending_abandoned = 0
        #: heads whose pending expectation was abandoned by the last call;
        #: the pipeline clears their entries' pending bits (Section 5.3.2).
        self.last_abandoned: List[Uop] = []

    def process_group(
        self, group: Sequence[Uop], now: int
    ) -> List[FormationDirective]:
        """Turn one arriving insert group into insert directives."""
        self._group_counter += 1
        group_no = self._group_counter
        directives: List[FormationDirective] = []
        claimed = [False] * len(group)

        # Resolve pending heads from the previous group first: their tails,
        # if present, sit at known positions of this group.
        directives_for_attach, abandoned = self._resolve_pending(
            group, claimed, group_no
        )
        self.pending_abandoned += abandoned

        attach_at = {d.uop: d for d in directives_for_attach}

        for i, uop in enumerate(group):
            if claimed[i]:
                if uop in attach_at:
                    directives.append(attach_at[uop])
                continue
            directive = self._try_group(group, claimed, i, uop, now,
                                        group_no)
            directives.append(directive)
        return directives

    # ------------------------------------------------------------------

    def _resolve_pending(
        self,
        group: Sequence[Uop],
        claimed: List[bool],
        group_no: int,
    ) -> Tuple[List[FormationDirective], int]:
        attaches: List[FormationDirective] = []
        abandoned = 0
        self.last_abandoned = []
        for expectation in self._pending:
            if group_no != expectation.issued_group + 1:
                abandoned += 1    # the tail's group never came next
                self.last_abandoned.append(expectation.head)
                continue
            idx = expectation.next_group_index
            if idx >= len(group) or claimed[idx]:
                abandoned += 1
                self.last_abandoned.append(expectation.head)
                continue
            tail = group[idx]
            taken_between = sum(
                1 for k in range(idx) if group[k].inst.is_branch
                and group[k].inst.taken
            )
            head = expectation.head
            outgoing, dests = self._scan_between(group, 0, idx,
                                                 head.inst.dest)
            outgoing = outgoing or expectation.outgoing_seen
            dests = dests | set(expectation.intervening_dests)
            if (tail.inst.pc != expectation.pointer.tail_pc
                    or taken_between != expectation.taken_needed
                    or not self._sources_ok(head, tail)
                    or not self._cycle_safe(head, tail, outgoing, dests)):
                abandoned += 1
                self.last_abandoned.append(expectation.head)
                continue
            claimed[idx] = True
            attaches.append(FormationDirective(
                verb=ATTACH,
                uop=tail,
                pointer=expectation.pointer,
                head_uop=expectation.head,
            ))
            self.pairs_formed += 1
        self._pending = []
        return attaches, abandoned

    # -- safety checks re-applied on the actual dynamic window --------------
    #
    # MOP pointers are keyed by PC and validated by the detection logic on
    # the path it happened to observe.  Formation sees the *current* path,
    # which may interleave different producers between head and tail, so it
    # re-applies the two checks that hardware must enforce at this point:
    # the Figure 8(c) cycle heuristic (a false intra-MOP edge must never
    # close a dependence cycle through an intervening instruction) and the
    # wakeup array's physical source-comparator limit.

    def _sources_ok(self, head: Uop, tail: Uop) -> bool:
        limit = self.config.max_mop_sources
        if limit is None:
            return True
        merged = set(head.inst.srcs)
        for src in tail.inst.srcs:
            if src != head.inst.dest:
                merged.add(src)
        return len(merged) <= limit

    @staticmethod
    def _cycle_safe(head: Uop, tail: Uop, outgoing_seen: bool,
                    intervening_dests) -> bool:
        """Conservative Figure 8(c) check over the actual path: reject when
        the head feeds an intervening instruction *and* the tail consumes a
        value produced between them."""
        if not outgoing_seen:
            return True
        head_dest = head.inst.dest
        for src in tail.inst.srcs:
            if src == head_dest:
                continue
            if src in intervening_dests:
                return False
        return True

    @staticmethod
    def _scan_between(group: Sequence[Uop], start: int, stop: int,
                      head_dest) -> Tuple[bool, set]:
        """Collect (head-dest read?, written registers) over
        ``group[start:stop]``."""
        outgoing = False
        dests = set()
        for k in range(start, stop):
            inst = group[k].inst
            if head_dest is not None and head_dest in inst.srcs:
                outgoing = True
            if inst.dest is not None:
                dests.add(inst.dest)
        return outgoing, dests

    def _chain_extend(
        self,
        group: Sequence[Uop],
        claimed: List[bool],
        members: List[Uop],
        positions: List[int],
        now: int,
    ) -> List[Uop]:
        """Larger-MOP extension (Section 4.3 future work): follow each new
        member's own pointer to grow the group up to ``mop_size``, within
        the current insert group, re-applying every formation check at each
        link."""
        extras: List[Uop] = []
        while len(members) < self.config.mop_size:
            last = members[-1]
            last_pos = positions[-1]
            pointer = self.pointers.lookup(last.inst.pc, now)
            if pointer is None:
                break
            next_pos = last_pos + pointer.offset
            if next_pos >= len(group) or claimed[next_pos]:
                break
            nxt = group[next_pos]
            taken_between = sum(
                1 for k in range(last_pos + 1, next_pos)
                if group[k].inst.is_branch and group[k].inst.taken
            )
            outgoing, dests = self._scan_between(group, last_pos + 1,
                                                 next_pos, last.inst.dest)
            if (nxt.inst.pc != pointer.tail_pc
                    or taken_between != pointer.control_bit
                    or not self._merged_sources_ok(members, nxt)
                    or not self._cycle_safe(last, nxt, outgoing, dests)):
                break
            claimed[next_pos] = True
            members.append(nxt)
            positions.append(next_pos)
            extras.append(nxt)
        return extras

    def _merged_sources_ok(self, members: List[Uop], candidate: Uop) -> bool:
        """Source-comparator limit over the whole (extended) group."""
        limit = self.config.max_mop_sources
        if limit is None:
            return True
        dests: set = set()
        merged: set = set()
        for member in members + [candidate]:
            for src in member.inst.srcs:
                if src not in dests:   # intra-group edges need no tag
                    merged.add(src)
            if member.inst.dest is not None:
                dests.add(member.inst.dest)
        return len(merged) <= limit

    def _try_group(
        self,
        group: Sequence[Uop],
        claimed: List[bool],
        i: int,
        uop: Uop,
        now: int,
        group_no: int,
    ) -> FormationDirective:
        pointer = self.pointers.lookup(uop.inst.pc, now)
        if pointer is None or not uop.inst.is_mop_candidate:
            return FormationDirective(verb=SOLO, uop=uop)

        tail_pos = i + pointer.offset
        if tail_pos < len(group):
            tail = group[tail_pos]
            taken_between = sum(
                1 for k in range(i + 1, tail_pos)
                if group[k].inst.is_branch and group[k].inst.taken
            )
            outgoing, dests = self._scan_between(group, i + 1, tail_pos,
                                                 uop.inst.dest)
            if (claimed[tail_pos]
                    or tail.inst.pc != pointer.tail_pc
                    or taken_between != pointer.control_bit
                    or not self._sources_ok(uop, tail)
                    or not self._cycle_safe(uop, tail, outgoing, dests)):
                return FormationDirective(verb=SOLO, uop=uop)
            claimed[tail_pos] = True
            claimed[i] = True
            self.pairs_formed += 1
            extras = self._chain_extend(group, claimed, [uop, tail],
                                        [i, tail_pos], now)
            return FormationDirective(verb=MOP, uop=uop, tail=tail,
                                      pointer=pointer, extra_tails=extras)

        # Tail expected in the next insert group (Figure 11's pending bit).
        # Offsets count along the dynamic path, so a fetch-broken (short)
        # group continues into the next group's slots; the tail-PC and
        # control-bit checks at attach time catch any divergence.
        next_index = tail_pos - len(group)
        if next_index >= self.config.width:
            return FormationDirective(verb=SOLO, uop=uop)
        taken_so_far = sum(
            1 for k in range(i + 1, len(group))
            if group[k].inst.is_branch and group[k].inst.taken
        )
        if taken_so_far > pointer.control_bit:
            return FormationDirective(verb=SOLO, uop=uop)
        outgoing, dests = self._scan_between(group, i + 1, len(group),
                                             uop.inst.dest)
        claimed[i] = True
        self._pending.append(_PendingExpectation(
            head=uop,
            pointer=pointer,
            next_group_index=next_index,
            taken_needed=pointer.control_bit - taken_so_far,
            issued_group=group_no,
            outgoing_seen=outgoing,
            intervening_dests=frozenset(dests),
        ))
        return FormationDirective(verb=PENDING, uop=uop, pointer=pointer)
