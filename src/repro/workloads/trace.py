"""Dynamic-trace container consumed by the timing model and the analyses."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


class Trace:
    """A named dynamic operation stream.

    A trace is the committed (correct-path) operation sequence of a program
    run: the classic input of a trace-driven timing simulator.  It can come
    from the functional interpreter (execution-driven kernels) or from a
    synthetic workload generator (SPEC-like profiles).
    """

    def __init__(self, name: str, ops: Iterable[DynInst]) -> None:
        self.name = name
        self.ops: List[DynInst] = list(ops)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, idx):
        return self.ops[idx]

    @property
    def committed_insts(self) -> int:
        """Architectural instruction count (store halves count once)."""
        return sum(1 for op in self.ops if op.counts_as_inst)

    @property
    def op_count(self) -> int:
        """Total scheduler-visible operations (stores count twice)."""
        return len(self.ops)

    def class_histogram(self) -> dict:
        """Operation count per :class:`OpClass`, for mix validation."""
        hist: dict = {}
        for op in self.ops:
            hist[op.op_class] = hist.get(op.op_class, 0) + 1
        return hist

    def summary(self) -> str:
        """One-paragraph description used by examples and debugging."""
        hist = self.class_histogram()
        branches = sum(
            count
            for cls, count in hist.items()
            if cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.JUMP_INDIRECT)
        )
        loads = hist.get(OpClass.LOAD, 0)
        total = len(self.ops)
        if total == 0:
            return f"trace {self.name}: empty"
        return (
            f"trace {self.name}: {self.committed_insts} insts"
            f" ({total} ops), {100.0 * loads / total:.1f}% loads,"
            f" {100.0 * branches / total:.1f}% control"
        )
