"""Per-benchmark workload profiles standing in for SPEC CINT2000.

Each :class:`WorkloadProfile` encodes the *machine-independent* program
characteristics that drive every result in the paper:

* the fraction of committed instructions that are value-generating macro-op
  candidates — the "% total insts" row of Figure 6,
* the distribution of the distance (in instructions, program order) from
  each value-generating candidate to its nearest dependent single-cycle
  candidate — the stacked bars of Figure 6 (buckets 1–3, 4–7, 8+, dependent-
  but-not-candidate, dynamically dead),
* the instruction mix (loads, stores, branches, multiplies, floating
  point),
* branch predictability and cache behaviour, tuned so the *base* scheduler's
  IPC lands near Table 2 (e.g. mcf's 0.34/0.38 IPC comes from its enormous
  L2 miss rate, gap/eon's ~2 IPC from low mispredict and miss rates).

The stacked-bar fractions are visual estimates from Figure 6 constrained by
the numbers the text states exactly: on average 73% of MOP heads have a
potential tail; 87% of gap's pairs and only 54% of vortex's fall within the
8-instruction scope.  EXPERIMENTS.md records how the regenerated
characterization compares against the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic-workload parameters for one benchmark.

    Mix fractions are over *committed instructions* (a store counts once).
    ``frac_alu`` equals the value-generating candidate fraction, since every
    single-cycle ALU operation with a destination is a value-generating
    candidate (Section 4.1).

    The five ``dist_*`` fields partition the value-generating candidates by
    the fate of their produced value (Figure 6): nearest dependent candidate
    at distance 1–3 / 4–7 / 8+, nearest dependent is not a candidate, or the
    value is dynamically dead.  They must sum to 1.
    """

    name: str

    # -- instruction mix (must sum to 1 with frac_alu) ---------------------
    frac_alu: float
    frac_load: float
    frac_store: float
    frac_branch: float
    frac_mult: float = 0.01
    frac_fp: float = 0.0

    # -- Figure 6 distance distribution over value-generating candidates ---
    dist_1_3: float = 0.50
    dist_4_7: float = 0.15
    dist_8p: float = 0.05
    dist_noncand: float = 0.20
    dist_dead: float = 0.10

    # -- dynamic behaviour --------------------------------------------------
    #: probability a non-obligated source picks (and consumes) the freshest
    #: value, threading computation serially; higher = less exploitable ILP.
    chain_bias: float = 0.6
    #: mean number of loop-carried dependence chains per loop body
    #: (induction variables / accumulators / walked pointers).  This is the
    #: workload's dominant ILP knob: successive iterations serialize through
    #: these carriers, so few carriers (gap) starve a 2-cycle scheduler
    #: while many (vortex, eon) hide its bubble entirely.
    loop_carriers: float = 3.0
    #: probability a carrier is advanced by a load (pointer chasing, mcf);
    #: load-carried chains have multi-cycle edges that 2-cycle scheduling
    #: tolerates, and they bound IPC by memory latency instead.
    carrier_via_load: float = 0.15
    #: fraction of loop bodies with *no* loop-carried chain (DOALL loops):
    #: their iterations are mutually independent, so the exploitable ILP
    #: grows with the scheduling window.  This is what makes the 32-entry
    #: issue queue measurably slower than the unrestricted one (Table 2's
    #: two columns) and gives macro-op scheduling its queue-contention
    #: benefit in Figure 15.
    parallel_body_frac: float = 0.15
    #: probability a chain-starting operation roots at an entry-ready value
    #: instead of a live chain, spawning fresh "young" chains whose
    #: operations issue soon after insert.  Waiting ops from deep chains
    #: clog a small issue queue and delay this leaf work, so ``leaf_frac``
    #: governs how much the 32-entry queue loses to the unrestricted one;
    #: young chains are still single-cycle chains, so 2-cycle scheduling
    #: slows them like any other and the Figure 14 losses survive.
    leaf_frac: float = 0.10
    mispredict_rate: float = 0.05
    fwd_taken_rate: float = 0.30
    dl1_miss_rate: float = 0.03
    l2_miss_rate: float = 0.15  # fraction of DL1 misses that also miss L2
    mean_trip_count: float = 16.0
    body_size: Tuple[int, int] = (12, 32)

    # -- Table 2 reference IPCs (paper's measurements, for reporting) ------
    paper_ipc_32: float = 0.0
    paper_ipc_unrestricted: float = 0.0

    def __post_init__(self) -> None:
        mix = (self.frac_alu + self.frac_load + self.frac_store
               + self.frac_branch + self.frac_mult + self.frac_fp)
        if abs(mix - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: instruction mix sums to {mix}")
        dist = (self.dist_1_3 + self.dist_4_7 + self.dist_8p
                + self.dist_noncand + self.dist_dead)
        if abs(dist - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: distance dist sums to {dist}")

    @property
    def valuegen_frac(self) -> float:
        """Fraction of committed insts that are potential MOP heads."""
        return self.frac_alu

    @property
    def candidate_frac(self) -> float:
        """Fraction of committed insts that are MOP candidates at all."""
        return self.frac_alu + self.frac_store + self.frac_branch

    @property
    def within_scope_frac(self) -> float:
        """Fraction of heads whose nearest tail is within the 8-inst scope."""
        return self.dist_1_3 + self.dist_4_7


def _profile(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


#: The twelve SPEC CINT2000 benchmarks of Table 2.  Mixes place the
#: value-generating candidate fraction at the Figure 6 "% total insts" row;
#: the remaining budget goes to loads/stores/branches/multiplies/FP in
#: proportions typical for each benchmark (eon is the FP-heavy C++ ray
#: tracer; mcf is the cache-miss-bound pointer chaser).
SPEC_CINT2000: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        _profile(
            parallel_body_frac=0.12,
            name="bzip",
            leaf_frac=0.1,
            loop_carriers=3.2, carrier_via_load=0.15,
            chain_bias=0.72,
            frac_alu=0.492, frac_load=0.232, frac_store=0.086,
            frac_branch=0.110, frac_mult=0.010, frac_fp=0.070,
            dist_1_3=0.50, dist_4_7=0.16, dist_8p=0.05,
            dist_noncand=0.19, dist_dead=0.10,
            mispredict_rate=0.055, dl1_miss_rate=0.06, l2_miss_rate=0.35,
            mean_trip_count=24.0,
            paper_ipc_32=1.40, paper_ipc_unrestricted=1.53,
        ),
        _profile(
            parallel_body_frac=0.15,
            name="crafty",
            leaf_frac=0.08,
            loop_carriers=3.4, carrier_via_load=0.15,
            chain_bias=0.7,
            frac_alu=0.509, frac_load=0.240, frac_store=0.071,
            frac_branch=0.110, frac_mult=0.010, frac_fp=0.060,
            dist_1_3=0.45, dist_4_7=0.16, dist_8p=0.07,
            dist_noncand=0.22, dist_dead=0.10,
            mispredict_rate=0.06, dl1_miss_rate=0.055, l2_miss_rate=0.25,
            mean_trip_count=12.0,
            paper_ipc_32=1.45, paper_ipc_unrestricted=1.55,
        ),
        _profile(
            parallel_body_frac=0.3,
            name="eon",
            leaf_frac=0.22,
            loop_carriers=5.0, carrier_via_load=0.1,
            chain_bias=0.4,
            frac_alu=0.278, frac_load=0.270, frac_store=0.150,
            frac_branch=0.090, frac_mult=0.012, frac_fp=0.200,
            dist_1_3=0.40, dist_4_7=0.15, dist_8p=0.08,
            dist_noncand=0.27, dist_dead=0.10,
            mispredict_rate=0.006, dl1_miss_rate=0.004, l2_miss_rate=0.1,
            mean_trip_count=20.0,
            paper_ipc_32=1.86, paper_ipc_unrestricted=2.13,
        ),
        _profile(
            parallel_body_frac=0.1,
            name="gap",
            leaf_frac=0.22,
            loop_carriers=1.15, carrier_via_load=0.1,
            chain_bias=0.92,
            frac_alu=0.487, frac_load=0.250, frac_store=0.083,
            frac_branch=0.120, frac_mult=0.020, frac_fp=0.040,
            dist_1_3=0.70, dist_4_7=0.17, dist_8p=0.02,
            dist_noncand=0.08, dist_dead=0.03,
            mispredict_rate=0.012, dl1_miss_rate=0.012, l2_miss_rate=0.1,
            mean_trip_count=32.0,
            paper_ipc_32=1.73, paper_ipc_unrestricted=2.10,
        ),
        _profile(
            parallel_body_frac=0.18,
            name="gcc",
            leaf_frac=0.05,
            loop_carriers=3.4, carrier_via_load=0.2,
            chain_bias=0.7,
            frac_alu=0.374, frac_load=0.280, frac_store=0.120,
            frac_branch=0.160, frac_mult=0.006, frac_fp=0.060,
            dist_1_3=0.45, dist_4_7=0.15, dist_8p=0.07,
            dist_noncand=0.23, dist_dead=0.10,
            mispredict_rate=0.06, dl1_miss_rate=0.055, l2_miss_rate=0.28,
            mean_trip_count=8.0,
            paper_ipc_32=1.24, paper_ipc_unrestricted=1.29,
        ),
        _profile(
            parallel_body_frac=0.08,
            name="gzip",
            leaf_frac=0.14,
            loop_carriers=2.8, carrier_via_load=0.1,
            chain_bias=0.85,
            frac_alu=0.563, frac_load=0.210, frac_store=0.077,
            frac_branch=0.120, frac_mult=0.010, frac_fp=0.020,
            dist_1_3=0.56, dist_4_7=0.16, dist_8p=0.04,
            dist_noncand=0.16, dist_dead=0.08,
            mispredict_rate=0.025, dl1_miss_rate=0.015, l2_miss_rate=0.12,
            mean_trip_count=28.0,
            paper_ipc_32=1.79, paper_ipc_unrestricted=1.99,
        ),
        _profile(
            parallel_body_frac=0.15,
            name="mcf",
            leaf_frac=0.14,
            loop_carriers=1.6, carrier_via_load=0.7,
            chain_bias=0.75,
            frac_alu=0.402, frac_load=0.300, frac_store=0.088,
            frac_branch=0.180, frac_mult=0.010, frac_fp=0.020,
            dist_1_3=0.50, dist_4_7=0.13, dist_8p=0.05,
            dist_noncand=0.22, dist_dead=0.10,
            mispredict_rate=0.05, dl1_miss_rate=0.26, l2_miss_rate=0.6,
            mean_trip_count=10.0,
            paper_ipc_32=0.34, paper_ipc_unrestricted=0.38,
        ),
        _profile(
            parallel_body_frac=0.12,
            name="parser",
            leaf_frac=0.07,
            loop_carriers=1.8, carrier_via_load=0.25,
            chain_bias=0.82,
            frac_alu=0.475, frac_load=0.240, frac_store=0.095,
            frac_branch=0.150, frac_mult=0.010, frac_fp=0.030,
            dist_1_3=0.52, dist_4_7=0.15, dist_8p=0.05,
            dist_noncand=0.18, dist_dead=0.10,
            mispredict_rate=0.07, dl1_miss_rate=0.07, l2_miss_rate=0.3,
            mean_trip_count=8.0,
            paper_ipc_32=1.06, paper_ipc_unrestricted=1.12,
        ),
        _profile(
            parallel_body_frac=0.15,
            name="perl",
            leaf_frac=0.1,
            loop_carriers=2.6, carrier_via_load=0.2,
            chain_bias=0.72,
            frac_alu=0.427, frac_load=0.260, frac_store=0.120,
            frac_branch=0.140, frac_mult=0.008, frac_fp=0.045,
            dist_1_3=0.48, dist_4_7=0.15, dist_8p=0.06,
            dist_noncand=0.21, dist_dead=0.10,
            mispredict_rate=0.05, dl1_miss_rate=0.035, l2_miss_rate=0.15,
            mean_trip_count=10.0,
            paper_ipc_32=1.22, paper_ipc_unrestricted=1.33,
        ),
        _profile(
            parallel_body_frac=0.12,
            name="twolf",
            leaf_frac=0.12,
            loop_carriers=1.9, carrier_via_load=0.2,
            chain_bias=0.82,
            frac_alu=0.477, frac_load=0.240, frac_store=0.080,
            frac_branch=0.140, frac_mult=0.013, frac_fp=0.050,
            dist_1_3=0.53, dist_4_7=0.14, dist_8p=0.04,
            dist_noncand=0.19, dist_dead=0.10,
            mispredict_rate=0.045, dl1_miss_rate=0.045, l2_miss_rate=0.2,
            mean_trip_count=12.0,
            paper_ipc_32=1.36, paper_ipc_unrestricted=1.50,
        ),
        _profile(
            parallel_body_frac=0.3,
            name="vortex",
            leaf_frac=0.12,
            loop_carriers=8.0, carrier_via_load=0.2,
            chain_bias=0.35,
            frac_alu=0.376, frac_load=0.270, frac_store=0.140,
            frac_branch=0.140, frac_mult=0.008, frac_fp=0.066,
            dist_1_3=0.37, dist_4_7=0.17, dist_8p=0.12,
            dist_noncand=0.24, dist_dead=0.10,
            mispredict_rate=0.03, dl1_miss_rate=0.05, l2_miss_rate=0.25,
            mean_trip_count=16.0,
            paper_ipc_32=1.60, paper_ipc_unrestricted=1.75,
        ),
        _profile(
            parallel_body_frac=0.15,
            name="vpr",
            leaf_frac=0.13,
            loop_carriers=2.2, carrier_via_load=0.2,
            chain_bias=0.8,
            frac_alu=0.447, frac_load=0.260, frac_store=0.090,
            frac_branch=0.130, frac_mult=0.013, frac_fp=0.060,
            dist_1_3=0.51, dist_4_7=0.15, dist_8p=0.05,
            dist_noncand=0.19, dist_dead=0.10,
            mispredict_rate=0.05, dl1_miss_rate=0.055, l2_miss_rate=0.28,
            mean_trip_count=14.0,
            paper_ipc_32=1.48, paper_ipc_unrestricted=1.64,
        ),
    )
}


def profile_names() -> Tuple[str, ...]:
    """Benchmark names in the paper's presentation order."""
    return tuple(SPEC_CINT2000)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by name."""
    try:
        return SPEC_CINT2000[name]
    except KeyError as exc:
        known = ", ".join(SPEC_CINT2000)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from exc
