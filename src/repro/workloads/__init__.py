"""Workloads: the SPEC CINT2000 substitute used by every experiment.

The paper evaluates on SPEC CINT2000 Alpha binaries compiled with the DEC
compilers — unavailable here.  Instead, this package provides:

* :mod:`repro.workloads.profiles` — per-benchmark :class:`WorkloadProfile`
  records that encode each benchmark's *published, machine-independent*
  characteristics (value-generating candidate fraction and dependence-edge
  distance distribution from Figure 6, instruction mix, branch and cache
  behaviour tuned toward Table 2 base IPCs),
* :mod:`repro.workloads.synthetic` — a seeded generator that builds a
  synthetic *static* program realizing a profile (loop bodies, register-level
  dependences, stores, branches) and walks it to produce the dynamic
  operation trace,
* :mod:`repro.workloads.kernels` — hand-written assembly kernels executed by
  the functional interpreter, for execution-driven validation and examples,
* :mod:`repro.workloads.trace` — the :class:`Trace` container the timing
  model consumes.
"""

from repro.workloads.profiles import (
    SPEC_CINT2000,
    WorkloadProfile,
    get_profile,
    profile_names,
)
from repro.workloads.synthetic import SyntheticWorkload, generate_trace
from repro.workloads.trace import Trace

__all__ = [
    "WorkloadProfile",
    "SPEC_CINT2000",
    "get_profile",
    "profile_names",
    "SyntheticWorkload",
    "generate_trace",
    "Trace",
]
