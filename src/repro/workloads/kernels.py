"""Hand-written assembly kernels for execution-driven runs.

These small programs run through the functional interpreter
(:mod:`repro.isa.interpreter`) to produce *real* traces — actual control
flow, actual addresses — used by the examples and by integration tests that
validate the timing model end to end.  Each kernel is chosen to stress a
behaviour the paper's mechanisms care about:

* ``vector_sum`` — a tight dependent-accumulate loop: the canonical case
  where 2-cycle scheduling loses a cycle per iteration and macro-op grouping
  wins it back (the paper's Figure 4/5 scenario).
* ``fibonacci`` — a pure serial dependence chain, worst case for any
  pipelined scheduler.
* ``pointer_chase`` — a linked-list walk: load-latency bound, insensitive
  to scheduling atomicity (multi-cycle ops never needed 1-cycle loops).
* ``dot_product`` — mixed loads + dependent ALU with independent work,
  giving the scheduler parallel chains to interleave.
* ``branchy_count`` — data-dependent branches exercising misprediction
  recovery and MOP-across-branch control bits.
* ``independent_streams`` — several independent accumulators: plenty of ILP,
  the case where 2-cycle scheduling barely hurts (the paper's vortex
  observation).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.assembler import Program, assemble
from repro.isa.interpreter import run_program
from repro.workloads.trace import Trace


def vector_sum(n: int = 64) -> Program:
    """Sum memory words 0..n-1 into r1 with a dependent accumulate."""
    return assemble(f"""
        li   r1, 0          # acc
        li   r2, 0          # index
        li   r3, {n}        # limit
    loop:
        lw   r4, 0(r2)
        add  r1, r1, r4     # dependent accumulate (MOP candidate chain)
        addi r2, r2, 1
        blt  r2, r3, loop
        sw   r1, 0(r3)
        halt
    """)


def fibonacci(n: int = 48) -> Program:
    """Serial Fibonacci chain: every add depends on the previous one."""
    return assemble(f"""
        li   r1, 0
        li   r2, 1
        li   r3, 0
        li   r4, {n}
    loop:
        add  r5, r1, r2     # fib step: serial chain of 1-cycle adds
        mov  r1, r2
        mov  r2, r5
        addi r3, r3, 1
        blt  r3, r4, loop
        sw   r5, 0(r4)
        halt
    """)


def pointer_chase(nodes: int = 32, hops: int = 96) -> Program:
    """Build a circular linked list, then chase it: load-latency bound."""
    return assemble(f"""
        # build: node i at address i*2, next pointer at i*2, value at i*2+1
        li   r1, 0          # i
        li   r2, {nodes}
    build:
        slli r3, r1, 1      # addr = i*2
        addi r4, r1, 1
        bne  r4, r2, notwrap
        li   r4, 0
    notwrap:
        slli r5, r4, 1      # next addr
        sw   r5, 0(r3)
        sw   r1, 1(r3)
        addi r1, r1, 1
        blt  r1, r2, build
        # chase
        li   r6, 0          # current node address
        li   r7, 0          # hop count
        li   r8, {hops}
        li   r9, 0          # checksum
    chase:
        lw   r10, 1(r6)     # value
        add  r9, r9, r10
        lw   r6, 0(r6)      # next pointer: serial load chain
        addi r7, r7, 1
        blt  r7, r8, chase
        sw   r9, 0(r8)
        halt
    """)


def dot_product(n: int = 48) -> Program:
    """Dot product: two load streams feeding multiply-accumulate."""
    return assemble(f"""
        li   r1, 0          # index
        li   r2, {n}        # limit
        li   r3, 0          # acc
        li   r4, 1000       # base of second vector
    init:
        sw   r1, 0(r1)
        add  r5, r4, r1
        sw   r1, 0(r5)
        addi r1, r1, 1
        blt  r1, r2, init
        li   r1, 0
    loop:
        lw   r6, 0(r1)
        add  r7, r4, r1
        lw   r8, 0(r7)
        mul  r9, r6, r8
        add  r3, r3, r9
        addi r1, r1, 1
        blt  r1, r2, loop
        sw   r3, 0(r4)
        halt
    """)


def branchy_count(n: int = 96) -> Program:
    """Count odd values with a data-dependent branch per iteration."""
    return assemble(f"""
        li   r1, 0          # i
        li   r2, {n}
        li   r3, 0          # odd count
        li   r4, 12345      # lcg state
    loop:
        mul  r4, r4, r4
        addi r4, r4, 1013
        andi r4, r4, 65535  # keep the LCG state bounded
        andi r5, r4, 1
        bez  r5, even
        addi r3, r3, 1
    even:
        addi r1, r1, 1
        blt  r1, r2, loop
        sw   r3, 0(r2)
        halt
    """)


def independent_streams(n: int = 64) -> Program:
    """Four independent accumulator chains: ILP-rich, scheduling-tolerant."""
    return assemble(f"""
        li   r1, 0
        li   r2, 0
        li   r3, 0
        li   r4, 0
        li   r5, 0          # i
        li   r6, {n}
    loop:
        addi r1, r1, 1      # four independent chains
        addi r2, r2, 2
        addi r3, r3, 3
        addi r4, r4, 4
        addi r5, r5, 1
        blt  r5, r6, loop
        add  r7, r1, r2
        add  r8, r3, r4
        add  r9, r7, r8
        sw   r9, 0(r6)
        halt
    """)


def matrix_multiply(n: int = 6) -> Program:
    """Naive n×n integer matrix multiply: nested loops, mixed loads/ALU.

    Matrix A at base 0, B at base n*n, C at base 2*n*n, row-major.
    """
    nn = n * n
    return assemble(f"""
        # initialize A[i]=i, B[i]=i+1
        li   r1, 0
        li   r2, {nn}
    init:
        sw   r1, 0(r1)
        addi r3, r1, {nn}
        addi r4, r1, 1
        sw   r4, 0(r3)
        addi r1, r1, 1
        blt  r1, r2, init
        li   r10, 0         # i
    iloop:
        li   r11, 0         # j
    jloop:
        li   r12, 0         # k
        li   r13, 0         # acc
    kloop:
        # A[i][k] = mem[i*n + k]
        li   r5, {n}
        mul  r6, r10, r5
        add  r6, r6, r12
        lw   r7, 0(r6)
        # B[k][j] = mem[n*n + k*n + j]
        mul  r8, r12, r5
        add  r8, r8, r11
        lw   r9, {nn}(r8)
        mul  r14, r7, r9
        add  r13, r13, r14
        addi r12, r12, 1
        blt  r12, r5, kloop
        # C[i][j] = acc
        mul  r6, r10, r5
        add  r6, r6, r11
        sw   r13, {2 * nn}(r6)
        addi r11, r11, 1
        blt  r11, r5, jloop
        addi r10, r10, 1
        blt  r10, r5, iloop
        halt
    """)


def histogram(buckets: int = 8, samples: int = 96) -> Program:
    """Bucketed counting: data-dependent addresses and read-modify-write."""
    return assemble(f"""
        li   r1, 0          # i
        li   r2, {samples}
        li   r3, 12345      # prng state
        li   r4, {buckets - 1}
    loop:
        mul  r3, r3, r3
        addi r3, r3, 7919
        andi r3, r3, 65535
        and  r5, r3, r4     # bucket index
        lw   r6, 100(r5)    # read counter
        addi r6, r6, 1
        sw   r6, 100(r5)    # write back
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    """)


def string_match(hay: int = 64, pattern: int = 4) -> Program:
    """Naive substring search: short inner loop with early exits."""
    return assemble(f"""
        # haystack: mem[i] = i mod 7; pattern at 1000: 3,4,5,6
        li   r1, 0
        li   r2, {hay}
    build:
        li   r4, 7
        div  r5, r1, r4
        mul  r5, r5, r4
        sub  r5, r1, r5     # i mod 7
        sw   r5, 0(r1)
        addi r1, r1, 1
        blt  r1, r2, build
        li   r1, 0
    pinit:
        addi r5, r1, 3
        sw   r5, 1000(r1)
        addi r1, r1, 1
        li   r6, {pattern}
        blt  r1, r6, pinit
        # search
        li   r1, 0          # position
        li   r9, 0          # match count
        subi r2, r2, {pattern}
    outer:
        li   r7, 0          # offset
    inner:
        add  r8, r1, r7
        lw   r10, 0(r8)
        lw   r11, 1000(r7)
        bne  r10, r11, miss
        addi r7, r7, 1
        blt  r7, r6, inner
        addi r9, r9, 1      # full match
    miss:
        addi r1, r1, 1
        blt  r1, r2, outer
        sw   r9, 2000(r0)
        halt
    """)


#: Kernel registry: name → zero-argument builder with sensible defaults.
KERNELS: Dict[str, Callable[[], Program]] = {
    "vector_sum": vector_sum,
    "fibonacci": fibonacci,
    "pointer_chase": pointer_chase,
    "dot_product": dot_product,
    "branchy_count": branchy_count,
    "independent_streams": independent_streams,
    "matrix_multiply": matrix_multiply,
    "histogram": histogram,
    "string_match": string_match,
}


def kernel_trace(name: str, max_ops: int = 1_000_000) -> Trace:
    """Assemble, execute, and return the dynamic trace of kernel *name*."""
    try:
        program = KERNELS[name]()
    except KeyError as exc:
        known = ", ".join(KERNELS)
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from exc
    return Trace(name, run_program(program, max_ops=max_ops))
