"""Trace serialization: save and reload dynamic traces.

A compact line-per-op text format so traces can be archived, diffed, and
shared between runs (or generated once and reused across a parameter
sweep without paying generator time).  Format, one op per line::

    seq pc opclass dest srcs taken target mispred memhint counts mnemonic

with ``-`` for absent fields and sources comma-separated.  A header line
carries the format version and trace name.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.workloads.trace import Trace

_FORMAT = "reprotrace-v1"


def _encode_optional(value) -> str:
    return "-" if value is None else str(int(value))


def _decode_optional(token: str) -> Optional[int]:
    return None if token == "-" else int(token)


def dump_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to *path* in the line format above."""
    lines = [f"{_FORMAT} {trace.name}"]
    for op in trace.ops:
        srcs = ",".join(str(s) for s in op.srcs) if op.srcs else "-"
        lines.append(" ".join([
            str(op.seq),
            str(op.pc),
            op.op_class.name,
            _encode_optional(op.dest),
            srcs,
            "1" if op.taken else "0",
            _encode_optional(op.target_pc),
            _encode_optional(op.mispred_hint),
            _encode_optional(op.mem_hint),
            "1" if op.counts_as_inst else "0",
            op.mnemonic,
        ]))
    Path(path).write_text("\n".join(lines) + "\n")


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`dump_trace`."""
    text = Path(path).read_text().splitlines()
    if not text:
        raise ValueError(f"{path}: empty trace file")
    header = text[0].split(maxsplit=1)
    if not header or header[0] != _FORMAT:
        raise ValueError(f"{path}: not a {_FORMAT} file")
    name = header[1] if len(header) > 1 else "trace"

    ops: List[DynInst] = []
    for lineno, line in enumerate(text[1:], start=2):
        if not line.strip():
            continue
        fields = line.split()
        if len(fields) != 11:
            raise ValueError(f"{path}:{lineno}: expected 11 fields, "
                             f"got {len(fields)}")
        (seq, pc, op_class, dest, srcs, taken, target, mispred,
         mem_hint, counts, mnemonic) = fields
        mispred_value = _decode_optional(mispred)
        ops.append(DynInst(
            seq=int(seq),
            pc=int(pc),
            op_class=OpClass[op_class],
            dest=_decode_optional(dest),
            srcs=tuple(int(s) for s in srcs.split(",")) if srcs != "-"
            else (),
            taken=taken == "1",
            target_pc=_decode_optional(target),
            mispred_hint=None if mispred_value is None
            else bool(mispred_value),
            mem_hint=_decode_optional(mem_hint),
            counts_as_inst=counts == "1",
            mnemonic=mnemonic,
        ))
    return Trace(name, ops)
