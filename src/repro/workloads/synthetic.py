"""Synthetic workload generator.

The generator builds, from a :class:`WorkloadProfile`, a synthetic *static
program* — loop bodies of slots with concrete register assignments — whose
dynamic execution realizes the profile's instruction mix and, crucially, its
Figure 6 dependence-edge distance distribution.  It then *walks* the static
program to produce the dynamic operation trace: loop-back branches iterate
with geometric trip counts, interior branches resolve per the profile's
taken rate, and branch mispredictions and cache-miss levels are pre-resolved
from the profile rates (the timing model honours these hints).

Why a static program rather than an i.i.d. instruction stream: macro-op
pointers are stored in the instruction cache and *reused* across dynamic
executions of the same PC (Section 5.1.3) — the paper's tolerance of a
100-cycle detection delay depends on this reuse.  A synthetic program with
stable PCs and loops reproduces that behaviour; an i.i.d. stream cannot.

Two mechanisms control the dependence structure:

* **Obligation scheduling** pins the Figure 6 statistic.  When a slot
  produces a register value, the builder samples the value's fate from the
  profile distribution (nearest dependent candidate at distance 1–3 / 4–7 /
  8+, nearest dependent non-candidate, or dead) and records an obligation at
  the target slot.  When construction reaches that slot, the obligation
  forces the slot's class (candidate vs. non-candidate) and makes it read
  the obligated register.  Registers with unfired obligations are reserved
  so no intervening slot accidentally shortens the edge, and dead values are
  never read again.

* **Loop carriers** pin the exploitable ILP.  Each loop body designates
  ``loop_carriers`` registers (induction variables / accumulators / walked
  pointers): they are read near the body's start, threaded through the
  body's dependence chains, and written back near its end, so successive
  iterations *serialize* through them exactly like real loops.  Without
  carriers every iteration would be dataflow-independent and the trip count
  would become free parallelism — no scheduler discipline would ever
  matter.  A carrier advanced by a load (``carrier_via_load``) models
  pointer chasing: its loop-carried edge is multi-cycle, which a pipelined
  scheduler tolerates but the memory system dominates (mcf).
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import DynInst, crack_store
from repro.isa.opcodes import OpClass
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace

#: Integer registers usable by the generator (r0 kept as a stable
#: "initialized at entry" source, r27–r30 free for future use, r31 is zero).
_INT_POOL: Tuple[int, ...] = tuple(range(1, 27))

#: Floating-point registers usable by the generator (f0–f29 → 32–61).
_FP_POOL: Tuple[int, ...] = tuple(range(32, 62))

#: Maximum nearest-tail distance the generator realizes for the "8+" bucket.
_MAX_DISTANCE = 15


@dataclass
class StaticSlot:
    """One slot of the synthetic static program."""

    pc: int
    op_class: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    store_data_src: Optional[int] = None
    taken_prob: float = 0.0
    target: Optional[int] = None
    is_loopback: bool = False
    mnemonic: str = ""


class _RegisterAllocator:
    """Round-robin allocator that respects reserved (pending) registers."""

    def __init__(self, pool: Tuple[int, ...]) -> None:
        self.pool = pool
        self.cursor = 0
        self.reserved: set = set()
        self.dead: set = set()

    def allocate(self) -> int:
        """Return the next register not reserved by a pending obligation."""
        for _ in range(len(self.pool)):
            reg = self.pool[self.cursor]
            self.cursor = (self.cursor + 1) % len(self.pool)
            if reg not in self.reserved:
                self.dead.discard(reg)
                return reg
        raise RuntimeError("register pool exhausted by pending obligations")


class _ObligationBook:
    """Pending consumer obligations, keyed by the slot that must fire them."""

    def __init__(self) -> None:
        self.by_slot: Dict[int, List[Tuple[int, str]]] = {}

    def schedule(self, slot: int, reg: int, kind: str,
                 min_slot: int = 0, max_slot: Optional[int] = None) -> bool:
        """Register that *slot* must consume *reg* with a *kind* consumer.

        At most two obligations fire per slot (a consumer has at most two
        source operands); extras slide forward, or backward when a
        ``max_slot`` bound (the loop body's last usable slot) would be
        crossed.  Returns False when no capacity exists in range.
        """
        candidate = slot
        while max_slot is None or candidate <= max_slot:
            if len(self.by_slot.get(candidate, [])) < 2:
                self.by_slot.setdefault(candidate, []).append((reg, kind))
                return True
            candidate += 1
        candidate = min(slot, max_slot) if max_slot is not None else slot
        while candidate > min_slot:
            if len(self.by_slot.get(candidate, [])) < 2:
                self.by_slot.setdefault(candidate, []).append((reg, kind))
                return True
            candidate -= 1
        return False

    def pop(self, slot: int) -> List[Tuple[int, str]]:
        return self.by_slot.pop(slot, [])


@dataclass
class _BodyState:
    """Loop-carrier bookkeeping for the body under construction."""

    start: int
    end: int
    carriers: List[int] = field(default_factory=list)
    unread: List[int] = field(default_factory=list)
    unwritten: List[int] = field(default_factory=list)
    load_carriers: set = field(default_factory=set)
    #: DOALL body: no loop-carried chain; iterations are independent.
    parallel: bool = False

    def in_read_zone(self, idx: int) -> bool:
        """Early slots of a parallel body must root at entry-ready values
        so iterations stay independent across the loop-back edge."""
        return idx - self.start < 8

    def in_write_zone(self, idx: int) -> bool:
        """The closing slots of the body, where carriers are written back."""
        return idx >= self.end - max(4, 3 * len(self.unwritten))

    def must_write_now(self, idx: int) -> bool:
        """Remaining slots just suffice for the remaining carrier writes."""
        return bool(self.unwritten) and (self.end - idx) <= len(self.unwritten)


class SyntheticWorkload:
    """A synthetic benchmark: static program + dynamic trace walker.

    Args:
        profile: the benchmark profile to realize.
        seed: RNG seed; the same (profile, seed, size) triple always yields
            the same program and trace, so experiments are reproducible.
        static_size: number of static slots to generate (the "text size").
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        static_size: int = 2048,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.static_size = static_size
        # zlib.crc32 rather than hash(): str hashing is randomized per
        # process, and traces must be bit-identical across runs.
        name_key = zlib.crc32(profile.name.encode())
        self._rng = random.Random((name_key ^ seed) & 0xFFFFFFFF)
        self.slots: List[StaticSlot] = []
        self._build()

    # ------------------------------------------------------------------
    # Static program construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        rng = self._rng
        profile = self.profile
        ints = _RegisterAllocator(_INT_POOL)
        fps = _RegisterAllocator(_FP_POOL)
        obligations = _ObligationBook()
        # Recently-retired registers usable as extra source operands.
        retired: deque = deque(range(1, 9), maxlen=12)
        fp_retired: deque = deque(range(32, 40), maxlen=8)

        counts = {key: 0 for key in
                  ("alu", "load", "store", "branch", "mult", "fp")}
        targets = {
            "alu": profile.frac_alu,
            "load": profile.frac_load,
            "store": profile.frac_store,
            "branch": profile.frac_branch,
            "mult": profile.frac_mult,
            "fp": profile.frac_fp,
        }

        def deficit(key: str, total: int) -> float:
            return targets[key] * (total + 1) - counts[key]

        def pick_class(allowed: Tuple[str, ...], total: int) -> str:
            return max(allowed, key=lambda key: deficit(key, total))

        def pick_retired(chain: bool = False) -> int:
            """Pick a source register among recently-retired values.

            ``chain=True`` continues (and consumes) the freshest thread so
            chains stay serial rather than forking; otherwise the profile's
            chain bias decides between the freshest value (coupling this
            operation's depth to a live chain) and an older one.
            """
            usable = [r for r in retired
                      if r not in ints.reserved and r not in ints.dead]
            if not usable:
                return 0  # entry-initialized register, always safe
            if chain:
                reg = usable[-1]
                retired.remove(reg)
                return reg
            if rng.random() < profile.chain_bias:
                return usable[-1]
            return rng.choice(usable)

        def pick_fp_retired() -> int:
            usable = [r for r in fp_retired if r not in fps.reserved]
            return rng.choice(usable) if usable else 32

        def retire(reg: int) -> None:
            ints.reserved.discard(reg)
            if reg not in ints.dead:
                retired.append(reg)

        def schedule_fate(idx: int, dest: int) -> None:
            """Sample the fate of a value-generating candidate's value.

            The consumer slot is clamped inside the current body: an
            obligation past the loop-back branch would bind a slot in the
            *next static body*, which the dynamic loop never reaches until
            loop exit — the value would look dynamically dead on almost
            every iteration.
            """
            roll = rng.random()
            if roll < profile.dist_1_3:
                dist = rng.randint(1, 3)
                kind = "cand"
            elif roll < profile.dist_1_3 + profile.dist_4_7:
                dist = rng.randint(4, 7)
                kind = "cand"
            elif roll < (profile.dist_1_3 + profile.dist_4_7
                         + profile.dist_8p):
                dist = rng.randint(8, _MAX_DISTANCE)
                kind = "cand"
            elif roll < 1.0 - profile.dist_dead:
                dist = rng.randint(1, 6)
                kind = "noncand"
            else:
                ints.dead.add(dest)
                return
            dist = min(dist, body.end - 1 - idx)
            if dist < 1 or not obligations.schedule(
                    idx + dist, dest, kind,
                    min_slot=idx, max_slot=body.end - 1):
                ints.dead.add(dest)
                return
            ints.reserved.add(dest)

        def open_body(start: int) -> _BodyState:
            length = rng.randint(*profile.body_size)
            body = _BodyState(start=start, end=start + length)
            if rng.random() < profile.parallel_body_frac:
                body.parallel = True       # DOALL loop: no carried chain
                return body
            mean = max(1.0, profile.loop_carriers)
            k = max(1, min(round(rng.gauss(mean, 0.6)), length // 5 + 1))
            for _ in range(k):
                reg = ints.allocate()
                ints.reserved.add(reg)      # protected for the whole body
                body.carriers.append(reg)
                if rng.random() < profile.carrier_via_load:
                    body.load_carriers.add(reg)
            body.unread = list(body.carriers)
            body.unwritten = list(body.carriers)
            return body

        def close_body(body: _BodyState) -> None:
            for reg in body.carriers:
                ints.reserved.discard(reg)

        body = open_body(0)
        idx = 0
        while idx < self.static_size:
            fired = obligations.pop(idx)
            cand_regs = [reg for reg, kind in fired if kind == "cand"]
            noncand_regs = [reg for reg, kind in fired if kind == "noncand"]
            fp_regs = [reg for reg, kind in fired if kind == "fp"]
            total = idx + 1

            if idx >= body.end:
                # Forced loop-back branch closing the current body; it tests
                # a loop carrier, so its resolution rides the carried chain.
                src = (body.carriers[-1] if body.carriers
                       else (cand_regs[0] if cand_regs else pick_retired()))
                trip = max(2.0, profile.mean_trip_count)
                self.slots.append(StaticSlot(
                    pc=idx, op_class=OpClass.BRANCH, srcs=(src,),
                    taken_prob=1.0 - 1.0 / trip, target=body.start,
                    is_loopback=True, mnemonic="bloop",
                ))
                counts["branch"] += 1
                for reg, kind in fired:
                    if kind == "fp":
                        fps.reserved.discard(reg)
                        fp_retired.append(reg)
                    else:
                        retire(reg)
                close_body(body)
                body = open_body(idx + 1)
                idx += 1
                continue

            if fp_regs:
                key = "fp"
            elif body.must_write_now(idx):
                next_carrier = body.unwritten[-1]
                key = "load" if next_carrier in body.load_carriers else "alu"
            elif cand_regs:
                key = pick_class(("alu", "store", "branch"), total)
            elif noncand_regs:
                key = pick_class(("load", "mult"), total)
            else:
                key = pick_class(
                    ("alu", "load", "store", "branch", "mult", "fp"), total
                )
                if key == "fp" and targets["fp"] <= 0.0:
                    key = "alu"

            builder = getattr(self, f"_build_{key}")
            slot = builder(
                idx=idx, rng=rng, ints=ints, fps=fps,
                cand_regs=cand_regs, noncand_regs=noncand_regs,
                fp_regs=fp_regs, pick_retired=pick_retired,
                pick_fp_retired=pick_fp_retired,
                schedule_fate=schedule_fate, obligations=obligations,
                body=body, fp_retired=fp_retired,
            )
            self.slots.append(slot)
            counts[key] += 1
            for reg, kind in fired:
                if kind == "fp":
                    fps.reserved.discard(reg)
                    fp_retired.append(reg)
                else:
                    retire(reg)
            idx += 1

        close_body(body)
        # Outermost loop: jump back to the program start.
        self.slots.append(StaticSlot(
            pc=self.static_size, op_class=OpClass.JUMP, taken_prob=1.0,
            target=0, mnemonic="jmp",
        ))

    # -- per-class slot builders ------------------------------------------

    def _carrier_dest(self, idx: int, body: _BodyState,
                      want_load: bool) -> Optional[int]:
        """Claim a carrier write-back if this slot sits in the write zone."""
        if not body.unwritten or not body.in_write_zone(idx):
            return None
        for reg in reversed(body.unwritten):
            if (reg in body.load_carriers) == want_load:
                body.unwritten.remove(reg)
                return reg
        if body.must_write_now(idx):
            return body.unwritten.pop()
        return None

    def _build_alu(self, idx, rng, ints, cand_regs, pick_retired,
                   schedule_fate, body, **_) -> StaticSlot:
        srcs = list(cand_regs[:2])
        if not srcs:
            if body.unread:
                srcs.append(body.unread.pop(0))  # read a loop carrier
            elif body.parallel and body.in_read_zone(idx):
                srcs.append(0)  # root at an entry-ready value: iterations
                                # of a DOALL body must stay independent
            elif rng.random() < self.profile.leaf_frac:
                srcs.append(0)  # spawn a young chain from a ready value
            else:
                srcs.append(pick_retired(chain=True))
        if len(srcs) < 2:
            # Loop-carrier reads take priority over filler sources: every
            # carrier written at the bottom of the body must be consumed
            # near its top, or the loop-carried chain breaks and the
            # carrier value shows up as dynamically dead.
            if body.unread:
                srcs.append(body.unread.pop(0))
            elif rng.random() < 0.8:
                if body.parallel and body.in_read_zone(idx):
                    srcs.append(0)
                else:
                    srcs.append(pick_retired())
        dest = self._carrier_dest(idx, body, want_load=False)
        if dest is None:
            dest = ints.allocate()
            schedule_fate(idx, dest)
        return StaticSlot(pc=idx, op_class=OpClass.INT_ALU, dest=dest,
                          srcs=tuple(srcs), mnemonic="alu")

    def _build_load(self, idx, rng, ints, noncand_regs, pick_retired,
                    obligations, body, **_) -> StaticSlot:
        if noncand_regs:
            base = noncand_regs[0]
        elif body.unread:
            base = body.unread.pop(0)            # pointer-walk read
        elif body.parallel and body.in_read_zone(idx):
            base = 0                             # independent iterations
        else:
            base = pick_retired()
        dest = self._carrier_dest(idx, body, want_load=True)
        if dest is not None:
            return StaticSlot(pc=idx, op_class=OpClass.LOAD, dest=dest,
                              srcs=(base,), mnemonic="lw")
        dest = ints.allocate()
        roll = rng.random()
        if roll < 0.70:
            kind, dist = "cand", rng.randint(1, 4)
        elif roll < 0.85:
            kind, dist = "noncand", rng.randint(1, 6)
        else:
            kind = None
        if kind is not None:
            dist = min(dist, body.end - 1 - idx)
            if dist >= 1 and obligations.schedule(
                    idx + dist, dest, kind,
                    min_slot=idx, max_slot=body.end - 1):
                ints.reserved.add(dest)
            else:
                ints.dead.add(dest)
        else:
            ints.dead.add(dest)
        return StaticSlot(pc=idx, op_class=OpClass.LOAD, dest=dest,
                          srcs=(base,), mnemonic="lw")

    def _build_store(self, idx, rng, cand_regs, pick_retired, **_
                     ) -> StaticSlot:
        addr = cand_regs[0] if cand_regs else pick_retired()
        data = pick_retired()
        return StaticSlot(pc=idx, op_class=OpClass.STORE_ADDR, srcs=(addr,),
                          store_data_src=data, mnemonic="sw")

    def _build_branch(self, idx, rng, cand_regs, pick_retired, body, **_
                      ) -> StaticSlot:
        src = cand_regs[0] if cand_regs else pick_retired()
        # Most taken forward branches skip nothing (empty hammocks): the
        # taken direction still breaks the fetch group and creates the
        # control-flow discontinuity MOP pointers must track, but producer
        # slots are not skipped, so the dependence structure — and with it
        # the Figure 6 calibration — survives the walk.  A minority skip
        # one or two slots, exercising real path divergence.
        if rng.random() < 0.15:
            skip = rng.randint(1, 2)
        else:
            skip = 0
        target = min(idx + 1 + skip, body.end, self.static_size)
        return StaticSlot(pc=idx, op_class=OpClass.BRANCH, srcs=(src,),
                          taken_prob=self.profile.fwd_taken_rate,
                          target=target, mnemonic="br")

    def _build_mult(self, idx, rng, ints, noncand_regs, pick_retired,
                    obligations, body, **_) -> StaticSlot:
        srcs = list(noncand_regs[:2])
        while len(srcs) < 2:
            srcs.append(pick_retired())
        dest = ints.allocate()
        dist = min(rng.randint(1, 6), body.end - 1 - idx)
        if (rng.random() < 0.6 and dist >= 1
                and obligations.schedule(idx + dist, dest, "cand",
                                         min_slot=idx,
                                         max_slot=body.end - 1)):
            ints.reserved.add(dest)
        else:
            ints.dead.add(dest)
        op_class = OpClass.INT_DIV if rng.random() < 0.05 else OpClass.INT_MULT
        return StaticSlot(pc=idx, op_class=op_class, dest=dest,
                          srcs=tuple(srcs), mnemonic="mul")

    def _build_fp(self, idx, rng, fps, fp_regs, pick_fp_retired,
                  obligations, body, **_) -> StaticSlot:
        srcs = list(fp_regs[:2])
        while len(srcs) < 2:
            srcs.append(pick_fp_retired())
        dest = fps.allocate()
        dist = min(rng.randint(1, 6), body.end - 1 - idx)
        if rng.random() < 0.7 and dist >= 1:
            if obligations.schedule(idx + dist, dest, "fp",
                                    min_slot=idx, max_slot=body.end - 1):
                fps.reserved.add(dest)
        roll = rng.random()
        if roll < 0.6:
            op_class = OpClass.FP_ALU
        elif roll < 0.9:
            op_class = OpClass.FP_MULT
        else:
            op_class = OpClass.FP_DIV
        return StaticSlot(pc=idx, op_class=op_class, dest=dest,
                          srcs=tuple(srcs), mnemonic="fp")

    # ------------------------------------------------------------------
    # Dynamic walk
    # ------------------------------------------------------------------

    def trace(self, num_insts: int, seed: Optional[int] = None) -> Trace:
        """Walk the static program and return *num_insts* committed insts.

        The walk pre-resolves branch outcomes (per-slot taken probability),
        branch-misprediction hints (profile rate, conditional branches
        only), and load memory-level hints (DL1 / L2 / memory) that the
        timing model honours instead of simulating data addresses.
        """
        name_key = zlib.crc32(self.profile.name.encode())
        walk_seed = (name_key ^ (seed if seed is not None
                                 else self.seed + 7919)) & 0xFFFFFFFF
        # Independent streams per decision kind: changing, say, the
        # misprediction rate must not reshuffle branch outcomes, or every
        # profile tweak would regenerate an unrelated trace.
        rng_taken = random.Random(walk_seed)
        rng_mispred = random.Random(walk_seed ^ 0x5BD1E995)
        rng_mem = random.Random(walk_seed ^ 0x2545F491)
        profile = self.profile
        ops: List[DynInst] = []
        insts = 0
        seq = 0
        pc = 0
        limit = len(self.slots)
        while insts < num_insts:
            slot = self.slots[pc % limit]
            if slot.op_class is OpClass.STORE_ADDR:
                assert slot.store_data_src is not None
                addr_op, data_op = crack_store(
                    seq=seq, pc=slot.pc, addr_srcs=slot.srcs,
                    data_src=slot.store_data_src,
                )
                ops.append(addr_op)
                ops.append(data_op)
                seq += 2
                insts += 1
                pc = slot.pc + 1
                continue

            taken = False
            mispred = None
            mem_hint = None
            if slot.op_class is OpClass.BRANCH:
                taken = rng_taken.random() < slot.taken_prob
                mispred = rng_mispred.random() < profile.mispredict_rate
            elif slot.op_class is OpClass.JUMP:
                taken = True
                mispred = False
            elif slot.op_class is OpClass.LOAD:
                # Two draws per load, unconditionally, so tuning the DL1
                # rate does not shift the L2 outcome stream.
                dl1_roll = rng_mem.random()
                l2_roll = rng_mem.random()
                if dl1_roll >= profile.dl1_miss_rate:
                    mem_hint = 0
                elif l2_roll >= profile.l2_miss_rate:
                    mem_hint = 1
                else:
                    mem_hint = 2

            ops.append(DynInst(
                seq=seq, pc=slot.pc, op_class=slot.op_class, dest=slot.dest,
                srcs=slot.srcs, taken=taken, target_pc=slot.target,
                mispred_hint=mispred, mem_hint=mem_hint,
                mnemonic=slot.mnemonic,
            ))
            seq += 1
            insts += 1
            pc = (slot.target if taken and slot.target is not None
                  else slot.pc + 1)
        return Trace(self.profile.name, ops)


def generate_trace(
    profile: WorkloadProfile,
    num_insts: int,
    seed: int = 1,
    static_size: int = 2048,
) -> Trace:
    """Convenience wrapper: build a workload and return its trace."""
    return SyntheticWorkload(profile, seed=seed,
                             static_size=static_size).trace(num_insts)
