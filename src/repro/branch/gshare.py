"""Gshare branch predictor: global history XOR PC indexing."""

from __future__ import annotations


class GsharePredictor:
    """2-bit counter table indexed by PC XOR global branch history.

    The speculative history register is updated at predict time and repaired
    on mispredictions by the recovery path (``repair_history``), matching
    how real frontends checkpoint history.
    """

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.history_bits = entries.bit_length() - 1
        self.table = [1] * entries
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predict direction using the current speculative history."""
        return self.table[self._index(pc)] >= 2

    def counter(self, pc: int) -> int:
        """Raw counter for the current (pc, history) pair."""
        return self.table[self._index(pc)]

    def speculate(self, taken: bool) -> int:
        """Shift the predicted direction into the speculative history.

        Returns the history value *before* the shift so callers can
        checkpoint it for misprediction repair.
        """
        checkpoint = self.history
        mask = (1 << self.history_bits) - 1
        self.history = ((self.history << 1) | int(taken)) & mask
        return checkpoint

    def repair_history(self, checkpoint: int, taken: bool) -> None:
        """Restore history to *checkpoint* then shift the real outcome."""
        mask = (1 << self.history_bits) - 1
        self.history = ((checkpoint << 1) | int(taken)) & mask

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Train the counter for the (pc, history-at-predict) pair."""
        idx = (pc ^ history) & (self.entries - 1)
        value = self.table[idx]
        if taken:
            self.table[idx] = min(3, value + 1)
        else:
            self.table[idx] = max(0, value - 1)
