"""Return address stack (Table 1: 16 entries)."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Fixed-depth circular return address stack.

    Pushing past the top overwrites the oldest entry (standard wrap
    behaviour); popping an empty stack returns ``None``.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
