"""Bimodal branch predictor: a table of 2-bit saturating counters."""

from __future__ import annotations


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters.

    Counters start weakly-taken-biased per classic SimpleScalar behaviour
    (initial value 1, i.e. weakly not-taken); ``predict`` returns the
    direction, ``update`` trains toward the resolved outcome.
    """

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.table = [1] * entries

    def _index(self, pc: int) -> int:
        return pc & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at *pc*."""
        return self.table[self._index(pc)] >= 2

    def counter(self, pc: int) -> int:
        """Expose the raw counter (used by the combined selector)."""
        return self.table[self._index(pc)]

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter at *pc* toward the resolved direction."""
        idx = self._index(pc)
        value = self.table[idx]
        if taken:
            self.table[idx] = min(3, value + 1)
        else:
            self.table[idx] = max(0, value - 1)
