"""Branch target buffer: set-associative PC → target cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement (Table 1: 1k-entry 4-way).

    A taken-predicted branch whose target misses in the BTB cannot redirect
    fetch that cycle; the frontend treats it as a (cheap) fetch bubble.
    """

    def __init__(self, entries: int = 1024, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by associativity")
        self.sets = entries // assoc
        if self.sets & (self.sets - 1):
            raise ValueError("set count must be a power of two")
        self.assoc = assoc
        self._sets: list = [OrderedDict() for _ in range(self.sets)]

    def _set_for(self, pc: int) -> OrderedDict:
        return self._sets[pc & (self.sets - 1)]

    def lookup(self, pc: int) -> Optional[int]:
        """Return the cached target for *pc*, updating LRU, or ``None``."""
        entry_set = self._set_for(pc)
        if pc in entry_set:
            entry_set.move_to_end(pc)
            return entry_set[pc]
        return None

    def install(self, pc: int, target: int) -> None:
        """Insert or refresh the mapping pc → target."""
        entry_set = self._set_for(pc)
        if pc in entry_set:
            entry_set.move_to_end(pc)
            entry_set[pc] = target
            return
        if len(entry_set) >= self.assoc:
            entry_set.popitem(last=False)
        entry_set[pc] = target
