"""Branch prediction substrate.

Implements the paper's Table 1 configuration: a combined predictor made of a
4k-entry bimodal table and a 4k-entry gshare, arbitrated by a 4k-entry
selector; a 1k-entry 4-way BTB; and a 16-entry return address stack.

The timing model uses these predictors for execution-driven (kernel) traces.
Synthetic SPEC-like traces instead carry pre-resolved misprediction hints
(profile rates), because the synthetic branch outcomes are random draws and
would not exhibit the real benchmark's predictability structure.
"""

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.combined import CombinedPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "BimodalPredictor",
    "GsharePredictor",
    "CombinedPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
]
