"""Combined (tournament) predictor: bimodal + gshare with a selector.

Table 1: "Combined bimodal (4k entries) / gshare (4k entries) with a
selector (4k entries)".  The selector is a table of 2-bit counters trained
toward whichever component predicted correctly, as in the Alpha 21264-style
tournament scheme SimpleScalar models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor


@dataclass
class BranchPrediction:
    """Everything the frontend needs to act on and later train from."""

    taken: bool
    bimodal_taken: bool
    gshare_taken: bool
    chose_gshare: bool
    history_checkpoint: int


class CombinedPredictor:
    """Tournament of a bimodal and a gshare predictor.

    ``predict`` returns a :class:`BranchPrediction` carrying the component
    predictions and the gshare history checkpoint; ``update`` consumes it
    together with the resolved direction to train all three tables and, on a
    misprediction, repair the speculative history.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        gshare_entries: int = 4096,
        selector_entries: int = 4096,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gshare = GsharePredictor(gshare_entries)
        if selector_entries <= 0 or selector_entries & (selector_entries - 1):
            raise ValueError("selector entries must be a power of two")
        self.selector = [1] * selector_entries
        self._selector_mask = selector_entries - 1

    def predict(self, pc: int) -> BranchPrediction:
        """Predict the branch at *pc* and speculate gshare history."""
        bimodal_taken = self.bimodal.predict(pc)
        gshare_taken = self.gshare.predict(pc)
        chose_gshare = self.selector[pc & self._selector_mask] >= 2
        taken = gshare_taken if chose_gshare else bimodal_taken
        checkpoint = self.gshare.speculate(taken)
        return BranchPrediction(
            taken=taken,
            bimodal_taken=bimodal_taken,
            gshare_taken=gshare_taken,
            chose_gshare=chose_gshare,
            history_checkpoint=checkpoint,
        )

    def update(self, pc: int, prediction: BranchPrediction, taken: bool) -> None:
        """Train components and selector; repair history on mispredicts."""
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, prediction.history_checkpoint, taken)

        bimodal_right = prediction.bimodal_taken == taken
        gshare_right = prediction.gshare_taken == taken
        idx = pc & self._selector_mask
        if gshare_right and not bimodal_right:
            self.selector[idx] = min(3, self.selector[idx] + 1)
        elif bimodal_right and not gshare_right:
            self.selector[idx] = max(0, self.selector[idx] - 1)

        if prediction.taken != taken:
            self.gshare.repair_history(prediction.history_checkpoint, taken)
