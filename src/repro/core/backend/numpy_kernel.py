"""The numpy simulation kernel: vectorized scheduling loops.

:class:`NumpyProcessor` subclasses the golden-reference
:class:`~repro.core.pipeline.Processor` and swaps the per-cycle hot
paths for array code while keeping every *semantic* decision in the
shared reference methods.  The contract is **bit identity** (see
:mod:`repro.core.backend`): the rewrites below change how the ready set
is stored and how inert cycles are traversed, never what issues when.

Three mechanisms carry the speedup:

1. **Slot-table ready set.**  The reference keeps ready entries in a
   lazily-cleaned binary heap that is popped and re-pushed every cycle
   an entry stays deferred.  Here the ready set is a structure-of-arrays
   (seq, max(ready_cycle, lockout_until)) over reusable slots; select
   computes the selectable mask with one compare per slot and visits
   survivors oldest-first.  Above :data:`_VECTOR_MIN_SLOTS` live slots
   the mask and ordering run as numpy bit-vector ops (compare,
   ``flatnonzero``, ``argsort``); below it, numpy's fixed per-call cost
   exceeds the scan, so the same mask is evaluated over the plain-list
   slot mirrors.  Slots are reclaimed *eagerly* (the reference's
   ``_drop_ready`` hook), so the table also answers "when can anything
   next issue?" exactly — which enables:

2. **Idle-cycle fast-forward.**  When the next cycle provably does no
   work — no due events, nothing selectable, insert blocked or idle,
   fetch stalled or drained, commit head incomplete — the kernel jumps
   straight to the earliest cycle that *can* act (next event, next
   ready/lockout release, group-buffer head, pending-tail deadline,
   fetch restart, watchdog/MOP-split deadlines) and bulk-accounts the
   per-cycle statistics the reference would have accrued (occupancy
   histogram, fetch/ROB/IQ stall counters).  Stall-dominated regions
   (memory-bound or mispredict-heavy traces) collapse to O(events).

3. **Vectorized dependence matrix.**  :class:`NumpyMopDetector` builds
   Figure 9's dependence matrix with one broadcasted equality compare
   (writers × readers × source position) into preallocated buffers,
   then derives each operand's last in-window writer with a masked
   running maximum.

This module is the one place in ``src/repro`` allowed to import numpy
(simlint SL008); it is only imported once the ``numpy`` backend is
actually selected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.issue_queue import READY, IQEntry
from repro.core.pipeline import (
    EVENT_BROADCAST,
    EVENT_COMPLETE,
    EVENT_MISS,
    MOP_SPLIT_TIMEOUT,
    WATCHDOG_CYCLES,
    DeadlockError,
    Processor,
)
from repro.core.scheduler.base import COLLISION_SCOREBOARD
from repro.core.stats import SimStats
from repro.core.uop import FU_NONE, Uop
from repro.mop.detection import MopDetector, _Record

#: "no slot / never" marker in the int64 ready-set mirrors; far above
#: any reachable cycle count yet safe to compare without overflow.
_NEVER = 2 ** 62

#: live-slot span above which the select scan materializes the slot
#: mirrors as int64 arrays and runs the mask/order as numpy ops.  The
#: fixed per-call cost of the vector chain (~1µs per op) only amortizes
#: once the scan covers a few dozen slots; below that the same mask is
#: evaluated over the plain lists.  Both paths visit the same slots in
#: the same (seq) order, so the threshold is invisible to results.
_VECTOR_MIN_SLOTS = 48

#: detection-window size below which the broadcasted dependence-matrix
#: build costs more than the reference's last-writer dict scan (the
#: matrix is O(n² · nsrc) cells versus the scan's O(n · nsrc) dict
#: lookups, and numpy charges ~1µs per array op regardless of size).
#: The window is two insert groups (2 × width), so machines up to
#: 16-wide take the scalar path; the vector path carries wider windows
#: and is exercised directly by the parity tests.
_VECTOR_MIN_WINDOW = 32


class NumpyMopDetector(MopDetector):
    """Figure 9 dependence matrix on numpy broadcasting.

    Only the matrix construction (``_dependences``) is vectorized; tail
    selection and the independent-MOP pass reuse the reference scans so
    every heuristic decision stays shared code.  The detection window is
    tiny (two insert groups), so all buffers are preallocated once and
    every array op writes into them — the per-group cost is the compare
    chain itself, not allocator traffic.
    """

    def __init__(self, config: MachineConfig, pointers) -> None:
        super().__init__(config, pointers)
        self._alloc(2 * config.width, 2)

    def _alloc(self, w: int, nsrc: int) -> None:
        self._w = w
        self._nsrc_cap = nsrc
        # Register ids are non-negative; -1 (writes nothing) and -2 (no
        # operand at this position) can never compare equal, so padded
        # cells fall out of the matrix.
        self._dest = np.full(w, -1, dtype=np.int64)
        self._srcs = np.full((w, nsrc), -2, dtype=np.int64)
        # Writer index + 1, so 0 means "no in-window writer" after the
        # masked running max.
        self._ramp = (np.arange(w, dtype=np.int64) + 1)[:, None, None]
        # before[i, j] ⇔ i strictly precedes j in the window.
        self._before = np.triu(np.ones((w, w), dtype=np.bool_), 1)[:, :, None]
        self._m3 = np.empty((w, w, nsrc), dtype=np.bool_)
        self._i3 = np.empty((w, w, nsrc), dtype=np.int64)
        self._prod = np.empty((w, nsrc), dtype=np.int64)

    def _dependences(
        self, window: List[_Record]
    ) -> Dict[Tuple[int, int], int]:
        n = len(window)
        if n < _VECTOR_MIN_WINDOW:
            return super()._dependences(window)
        nsrc = 0
        for record in window:
            if len(record.srcs) > nsrc:
                nsrc = len(record.srcs)
        if nsrc == 0:
            return {}
        if n > self._w or nsrc > self._nsrc_cap:
            self._alloc(max(n, self._w), max(nsrc, self._nsrc_cap))
        dest = self._dest[:n]
        srcs = self._srcs[:n, :nsrc]
        dest.fill(-1)
        srcs.fill(-2)
        for j, record in enumerate(window):
            if record.dest is not None:
                dest[j] = record.dest
            for p, src in enumerate(record.srcs):
                srcs[j, p] = src
        # m3[i, j, p]: op i writes the register op j reads at source
        # position p, with i strictly earlier in the window.
        m3 = self._m3[:n, :n, :nsrc]
        np.equal(dest[:, None, None], srcs[None, :, :], out=m3)
        m3 &= self._before[:n, :n]
        # Each operand's producer is its *last* in-window writer: the
        # running max over the writer axis of the masked index ramp.
        i3 = self._i3[:n, :n, :nsrc]
        np.multiply(self._ramp[:n], m3, out=i3)
        prod = self._prod[:n, :nsrc]
        i3.max(axis=0, out=prod)
        if not prod.any():
            return {}
        deps: Dict[Tuple[int, int], int] = {}
        for j, row in enumerate(prod.tolist()):
            for p, writer in enumerate(row):
                if writer:
                    deps[(j, p)] = writer - 1
        return deps


class NumpyProcessor(Processor):
    """Vectorized simulation kernel (the ``numpy`` backend).

    Every override below is a re-expression of the corresponding
    reference method over the ready-set slot table; order-sensitive
    decisions (oldest-first select, collision scan order, stall
    attribution) are made identically, so stats — and traces, when a
    sink is attached — match the reference bit for bit.
    """

    detector_cls = NumpyMopDetector

    def __init__(self, config: MachineConfig, trace, sink=None) -> None:
        super().__init__(config, trace, sink=sink)
        # Ready-set slot table.  ``_slot_next[i]`` is max(ready_cycle,
        # lockout_until) for the live entry in slot i (_NEVER when slot
        # i is free); ``_slot_seq`` mirrors entry.seq for oldest-first
        # ordering.  Kept as plain lists — the common small-set scans
        # and the idle-gate minimum read them directly, and the vector
        # path materializes int64 views on demand.
        cap = 64
        self._slot_next: List[int] = [_NEVER] * cap
        self._slot_seq: List[int] = [_NEVER] * cap
        self._slot_entries: List[Optional[IQEntry]] = [None] * cap
        self._slot_free: List[int] = list(range(cap - 1, -1, -1))
        self._slot_top = 0          # exclusive upper bound of live slots
        self._slot_count = 0        # live READY entries
        # Lower bound on min(_slot_next) over live slots; may go stale
        # *low* after a slot is freed (harmless: one empty scan, which
        # refreshes it exactly) but is never stale high, so it soundly
        # gates both the select scan and the idle fast-forward.
        self._slot_min_next = _NEVER

    # ------------------------------------------------------------------
    # Ready-set slot management
    # ------------------------------------------------------------------

    def _grow_slots(self) -> None:
        old = len(self._slot_next)
        self._slot_next.extend([_NEVER] * old)
        self._slot_seq.extend([_NEVER] * old)
        self._slot_entries.extend([None] * old)
        self._slot_free.extend(range(2 * old - 1, old - 1, -1))

    def _free_slot(self, slot: int, entry: IQEntry) -> None:
        entries = self._slot_entries
        entries[slot] = None
        self._slot_next[slot] = _NEVER
        self._slot_seq[slot] = _NEVER
        self._slot_free.append(slot)
        self._slot_count -= 1
        entry.backend_slot = None
        # Keep the scan span tight: pull the high-water mark back over
        # any trailing run of free slots.
        top = self._slot_top
        if slot + 1 == top:
            while top and entries[top - 1] is None:
                top -= 1
            self._slot_top = top

    def _drop_ready(self, entry: IQEntry) -> None:
        # Reference hook: a READY entry left the ready set without being
        # selected (rescind or scoreboard pileup).  Reclaim its slot so
        # the table holds exactly the READY entries.
        slot = entry.backend_slot
        if slot is not None and self._slot_entries[slot] is entry:
            self._free_slot(slot, entry)

    def _make_ready(
        self,
        entry: IQEntry,
        now: int,
        earliest_select: Optional[int] = None,
    ) -> None:
        entry.state = READY
        entry.ready_cycle = earliest_select if earliest_select is not None \
            else now
        if self._sink is not None:
            self._emit_entry("wakeup", entry, entry.ready_cycle)
        slot = entry.backend_slot
        if slot is None or self._slot_entries[slot] is not entry:
            # Not resident (or the remembered slot was recycled to some
            # other entry in the meantime): allocate.
            if not self._slot_free:
                self._grow_slots()
            slot = self._slot_free.pop()
            self._slot_entries[slot] = entry
            entry.backend_slot = slot
            self._slot_count += 1
            if slot >= self._slot_top:
                self._slot_top = slot + 1
        self._slot_seq[slot] = entry.seq
        nxt = entry.ready_cycle
        if entry.lockout_until > nxt:
            nxt = entry.lockout_until
        self._slot_next[slot] = nxt
        if nxt < self._slot_min_next:
            self._slot_min_next = nxt
        if self.discipline.speculative_wakeup:
            bt = entry.ready_cycle + self.discipline.broadcast_offset(
                entry.sched_latency)
            entry.broadcast_cycle = bt
            entry.spec_broadcast_cycle = bt
            self._push_event(bt, (EVENT_BROADCAST, entry, bt))

    # ------------------------------------------------------------------
    # Select
    # ------------------------------------------------------------------

    def _selectable(self, now: int) -> List[int]:
        """Slots selectable this cycle, oldest (seq) first."""
        top = self._slot_top
        if top >= _VECTOR_MIN_SLOTS:
            nxt = np.array(self._slot_next[:top], dtype=np.int64)
            cand = np.flatnonzero(nxt <= now)
            if cand.size > 1:
                seq = np.array(self._slot_seq[:top], dtype=np.int64)
                cand = cand[np.argsort(seq[cand])]
            return cand.tolist()
        nxt_list = self._slot_next
        slots = [i for i in range(top) if nxt_list[i] <= now]
        if len(slots) > 1:
            slots.sort(key=self._slot_seq.__getitem__)
        return slots

    def _next_ready_time(self) -> int:
        """Exact min over live slots of max(ready, lockout) (_NEVER when
        the ready set is empty; free slots hold _NEVER)."""
        if not self._slot_count:
            return _NEVER
        top = self._slot_top
        if top >= _VECTOR_MIN_SLOTS:
            return int(np.array(self._slot_next[:top],
                                dtype=np.int64).min())
        return min(self._slot_next[:top])

    def _select(self, now: int, slots: int,
                fu_avail: Dict[str, int]) -> None:
        leftover: Optional[List[int]] = None
        if self._slot_count and self._slot_min_next <= now:
            cand = self._selectable(now)
            leftover = []
            scoreboard = (self.discipline.collision_mode
                          == COLLISION_SCOREBOARD)
            entries = self._slot_entries
            stats = self.stats
            for pos, slot in enumerate(cand):
                if slots <= 0:
                    leftover.extend(cand[pos:])
                    break
                entry = entries[slot]
                if (entry is None or entry.state != READY
                        or entry.pending_tail):
                    # Mirrors the reference's stale-pop drop.  Eager
                    # reclamation makes this unreachable, but a missed
                    # transition must degrade to the reference's lazy
                    # cleanup, not to a double issue.
                    if entry is not None:
                        self._free_slot(slot, entry)
                    continue
                fu = entry.head.fu_class
                if fu != FU_NONE and fu_avail.get(fu, 0) <= 0:
                    # Deferred in place; its seq keeps its priority.
                    leftover.append(slot)
                    continue
                if scoreboard and not self._operands_truly_ready(entry,
                                                                 now):
                    # Pileup victim burns the slot (Section 6.5); the
                    # _pileup_replay -> _drop_ready hook frees its slot.
                    slots -= 1
                    stats.pileup_victims += 1
                    self._pileup_replay(entry, now)
                    continue
                self._free_slot(slot, entry)
                self._issue(entry, now, fu_avail)
                slots -= 1
            # Deferred entries may remain; refresh the scan gate exactly.
            self._slot_min_next = self._next_ready_time()
        if self.discipline.speculative_wakeup:
            self._handle_collisions(now, leftover)

    def _handle_collisions(self, now: int,
                           leftover: Optional[List[int]] = None) -> None:
        # Same visit set and (seq-sorted) order as the reference scan:
        # ready-this-cycle entries that select did not issue.  When the
        # select scan ran, those are exactly its leftover slots — in
        # order — so the mask is not recomputed.
        if leftover is None:
            if not self._slot_count or self._slot_min_next > now:
                return
            leftover = self._selectable(now)
        for slot in leftover:
            entry = self._slot_entries[slot]
            if (entry is None or entry.state != READY
                    or entry.pending_tail):
                if entry is not None:
                    self._free_slot(slot, entry)
                continue
            self._collide(entry, now)

    # ------------------------------------------------------------------
    # One cycle (lean re-statement of the reference _cycle)
    # ------------------------------------------------------------------

    def _cycle(self) -> None:
        self.now = now = self.now + 1

        occ = self.iq.occupied
        hist = self._occ_hist
        hist[occ] = hist.get(occ, 0) + 1

        fu_avail = dict(self._fu_limits)
        reserved = self._fu_reserved_future.pop(now, None)
        if reserved:
            for fu, count in reserved.items():
                fu_avail[fu] = fu_avail.get(fu, 0) - count
        slots = self.config.width - self._sequencing_future.pop(now, 0)

        events = self._events.pop(now, None)
        if events:
            if len(events) > 1:
                # Same priority order as the reference's sorted() — the
                # sort is stable, so ties keep insertion order.
                events.sort(key=_event_kind)
            for event in events:
                kind = event[0]
                if kind == EVENT_COMPLETE:
                    self._on_complete(event[1], event[2])
                elif kind == EVENT_MISS:
                    self._on_load_miss(event[1], event[2], event[3])
                else:
                    self._on_broadcast(event[1], event[2])

        self._expire_pending(now)
        if (now - self._last_issue_cycle > MOP_SPLIT_TIMEOUT
                and len(self.iq)):
            self._split_stuck_mop(now)
        self._select(now, slots, fu_avail)
        self._insert(now)
        self._fetch(now)
        self._commit(now)

    # ------------------------------------------------------------------
    # Insert fast path (no macro-op formation)
    # ------------------------------------------------------------------

    def _insert(self, now: int) -> None:
        if self.formation is not None:
            return super()._insert(now)
        # Non-MOP disciplines only ever produce SOLO directives with unit
        # cost; skip the directive objects and admit raw uops directly.
        buffer = self._group_buffer
        queue = self._insert_queue
        while buffer and buffer[0][0] <= now:
            _ready, group = buffer.popleft()
            queue.extend(group)
        if not queue:
            return
        width = self.config.width
        rob_size = self.config.rob_size
        rob = self.rob
        iq = self.iq
        stats = self.stats
        inserted = 0
        while queue and inserted < width:
            if len(rob) + 1 > rob_size:
                stats.rob_full_stall_cycles += 1
                break
            if not iq.has_space(1):
                stats.iq_full_stall_cycles += 1
                break
            self._insert_solo(queue.popleft(), now)
            inserted += 1

    def _insert_head_stall(self) -> Optional[str]:
        """Which full resource blocks the insert-queue head (else None).

        Mirrors the reference ``_insert`` head checks so skipped cycles
        charge the same stall counter the per-cycle loop would have.
        """
        head = self._insert_queue[0]
        if self.formation is None or isinstance(head, Uop):
            rob_cost = iq_cost = 1
        else:
            cost = self._directive_cost(head)
            rob_cost, iq_cost = cost["rob"], cost["iq"]
        if len(self.rob) + rob_cost > self.config.rob_size:
            return "rob"
        if iq_cost and not self.iq.has_space(iq_cost):
            return "iq"
        return None

    # ------------------------------------------------------------------
    # Idle-cycle fast-forward
    # ------------------------------------------------------------------

    def _idle_until(self) -> Optional[Tuple[int, bool, Optional[str]]]:
        """Provably-inert stretch ahead, if any.

        Returns ``(target, fetch_stalls, insert_stall)`` meaning cycles
        ``now+1 .. target-1`` would each run the full reference _cycle
        without changing any state except the per-cycle counters named
        by the flags — so the run loop may jump to ``target - 1`` after
        bulk-accounting them.  ``None`` when the very next cycle may do
        real work.
        """
        now = self.now
        # Cheapest gates first: the ready set (one compare against a
        # sound lower bound) and the ROB head (commit drains whenever
        # it is complete).
        if self._slot_min_next <= now + 1 and self._slot_count:
            return None
        rob = self.rob
        if rob and rob[0].completed:
            return None
        cap = self._last_commit_cycle + WATCHDOG_CYCLES + 1
        if len(self.iq):
            split = self._last_issue_cycle + MOP_SPLIT_TIMEOUT + 1
            if split < cap:
                cap = split
        # Insert: a ready group-buffer head means formation/insert work.
        buffer = self._group_buffer
        if buffer:
            head_ready = buffer[0][0]
            if head_ready <= now + 1:
                return None
            if head_ready < cap:
                cap = head_ready
        insert_stall: Optional[str] = None
        if self._insert_queue:
            insert_stall = self._insert_head_stall()
            if insert_stall is None:
                return None  # head admits next cycle
        # Fetch: inert only when drained, gated, or stalled.
        frontend = self.frontend
        fetch_stalls = False
        if (len(buffer)
                >= self.config.effective_frontend_depth + 4):
            pass  # group buffer full: fetch_group is not even called
        elif frontend.waiting_branch is not None:
            fetch_stalls = True  # resolution arrives via an event
        elif frontend.exhausted:
            pass
        elif frontend.stalled_until > now + 1:
            fetch_stalls = True
            if frontend.stalled_until < cap:
                cap = frontend.stalled_until
        else:
            return None  # fetch proceeds next cycle
        # Select: the table holds exactly the READY entries, so their
        # earliest max(ready, lockout) bounds the next possible issue,
        # pileup, or collision.
        if self._slot_count:
            next_ready = self._next_ready_time()
            self._slot_min_next = next_ready
            if next_ready <= now + 1:
                return None
            if next_ready < cap:
                cap = next_ready
        # Events wake consumers, complete entries, discover misses.
        events = self._events
        if events:
            next_event = min(events)
            if next_event < cap:
                cap = next_event
        # Pending macro-op heads abandon their tails at a deadline.
        if self._pending_entries:
            deadline = min(self._pending_deadline.values(), default=cap)
            if deadline < cap:
                cap = deadline
        if cap <= now + 1:
            return None
        return cap, fetch_stalls, insert_stall

    def _skip_to(self, target: int, fetch_stalls: bool,
                 insert_stall: Optional[str]) -> None:
        """Jump to ``target - 1``, bulk-accruing per-cycle counters."""
        delta = target - 1 - self.now
        occ = self.iq.occupied
        self._occ_hist[occ] = self._occ_hist.get(occ, 0) + delta
        stats = self.stats
        if fetch_stalls:
            stats.fetch_stall_cycles += delta
        if insert_stall == "rob":
            stats.rob_full_stall_cycles += delta
        elif insert_stall == "iq":
            stats.iq_full_stall_cycles += delta
        # Reference cycles pop these per-cycle reservation keys as they
        # pass; drop any that the jump steps over (they could only have
        # mattered to a select, and nothing is selectable in the gap).
        for table in (self._fu_reserved_future, self._sequencing_future):
            if table:
                for key in [k for k in table if k < target]:
                    del table[key]
        self.now = target - 1

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimStats:
        while not self._finished():
            self._cycle()
            if max_cycles is not None and self.now >= max_cycles:
                break
            if self.now - self._last_commit_cycle > WATCHDOG_CYCLES:
                raise DeadlockError(
                    f"no commit for {WATCHDOG_CYCLES} cycles at cycle "
                    f"{self.now}; rob={len(self.rob)} iq={len(self.iq)} "
                    f"head={self.rob[0] if self.rob else None}",
                    cycle=self.now,
                    pending={
                        "rob": len(self.rob),
                        "iq": len(self.iq),
                        "last_commit_cycle": self._last_commit_cycle,
                        "head": repr(self.rob[0]) if self.rob else None,
                    },
                )
            # A drained machine is inert forever; let the loop condition
            # end the run at the reference's cycle, not the watchdog cap.
            idle = None if self._finished() else self._idle_until()
            if idle is not None:
                target, fetch_stalls, insert_stall = idle
                if max_cycles is not None and target > max_cycles:
                    target = max_cycles
                if target > self.now + 1:
                    self._skip_to(target, fetch_stalls, insert_stall)
        self.stats.cycles = self.now
        self.stats.iq_occupancy_hist = {
            str(occ): cycles
            for occ, cycles in sorted(self._occ_hist.items())
        }
        return self.stats


def _event_kind(event: tuple) -> int:
    return event[0]
