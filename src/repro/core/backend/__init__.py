"""Simulation-kernel backends: one timing model, two implementations.

The cycle-level semantics of the machine live in
:class:`repro.core.pipeline.Processor` — the dependency-free pure-Python
*golden reference*.  The ``numpy`` backend
(:mod:`repro.core.backend.numpy_kernel`) reimplements the hot scheduling
loops — wakeup/broadcast bookkeeping, oldest-first select, the
scoreboard collision check, and the dependence-matrix MOP detection of
Figures 8/9 — on numpy bit-vector/bit-matrix operations, plus an
idle-cycle fast-forward for stall-dominated stretches.

The contract between the two is **bit identity**: for any trace and any
:class:`~repro.core.config.MachineConfig`, both backends produce the
same :class:`~repro.core.stats.SimStats` field for field, raise the same
picklable errors at the same cycle, and (when instrumented) emit the
same trace events.  ``tests/test_backend_parity.py`` enforces this with
a randomized differential harness; because of it, the experiment
executor's result cache deliberately leaves ``config.backend`` out of
the cell key — the two backends *share* cached results.

Layering: this package is the only place in ``src/repro`` allowed to
import :mod:`numpy` (simlint rule SL008), and it does so lazily — the
reference model, and any host without numpy, never pays the import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.core.pipeline import Processor

#: Canonical backend names, in preference order for documentation.
BACKEND_PYTHON = "python"
BACKEND_NUMPY = "numpy"
BACKEND_NAMES: Tuple[str, ...] = (BACKEND_PYTHON, BACKEND_NUMPY)


class BackendUnavailableError(RuntimeError):
    """The requested backend cannot run on this host.

    Raised when the ``numpy`` backend is selected but :mod:`numpy` is
    not importable.  Message-only, so it survives pickling across the
    experiment executor's worker-pool boundary unchanged (SL003).
    """


def _load_python_processor() -> "type[Processor]":
    from repro.core.pipeline import Processor
    return Processor


def _load_numpy_processor() -> "type[Processor]":
    try:
        import numpy  # noqa: F401  (availability probe)
    except ImportError as exc:
        raise BackendUnavailableError(
            f"backend 'numpy' needs the numpy package, which is not "
            f"importable here ({exc}); install numpy or run with "
            f"backend='python'") from exc
    from repro.core.backend.numpy_kernel import NumpyProcessor
    return NumpyProcessor


@dataclass(frozen=True)
class Backend:
    """One selectable simulation kernel."""

    name: str
    description: str
    #: lazy loader so selecting ``python`` never imports numpy (and a
    #: missing numpy only fails when the numpy backend is actually used).
    _loader: Callable[[], "type[Processor]"] = field(repr=False)

    def processor_class(self) -> "type[Processor]":
        """The :class:`~repro.core.pipeline.Processor` subclass to run."""
        return self._loader()

    def available(self) -> bool:
        """Can this backend run on the current host?"""
        try:
            self.processor_class()
        except BackendUnavailableError:
            return False
        return True


_REGISTRY: Dict[str, Backend] = {
    BACKEND_PYTHON: Backend(
        name=BACKEND_PYTHON,
        description="pure-Python golden reference (dependency-free)",
        _loader=_load_python_processor,
    ),
    BACKEND_NUMPY: Backend(
        name=BACKEND_NUMPY,
        description="vectorized numpy scheduling kernel (bit-identical)",
        _loader=_load_numpy_processor,
    ),
}


def get_backend(name: str) -> Backend:
    """Look up a backend by name; raises ``ValueError`` on unknowns."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose one of "
            f"{', '.join(sorted(_REGISTRY))}") from None


def available_backends() -> Tuple[str, ...]:
    """Names of the backends that can run on this host."""
    return tuple(name for name, backend in _REGISTRY.items()
                 if backend.available())
