"""Select-free scheduling (Brown et al. [8]), the Figure 16 comparison.

Select-free scheduling moves selection out of the critical loop: wakeup is
performed speculatively, assuming every ready instruction is also selected.
When more instructions are ready than the machine can select (a
*collision*), instructions woken by the non-selected *collision victims*
were woken erroneously.  The two configurations differ in how that error is
repaired:

* **Squash Dep** (`select-free-squash-dep`): dependents of a collision
  victim are selectively invalidated before they can issue, then re-woken
  when the victim actually issues — so no *pileup victims* ever issue.  The
  cost is the extra re-wakeup cycle on squashed dependents.  The original
  paper notes this configuration assumes an idealized squash mechanism.
* **Scoreboard** (`select-free-scoreboard`): dependents are allowed to
  issue; a register-file scoreboard detects operands that never arrived and
  the *pileup victims* are invalidated and replayed after the fact.  Pileup
  victims consume real issue bandwidth and wake further instructions
  incorrectly, which is why this configuration loses noticeably more
  performance (Section 6.5).
"""

from __future__ import annotations

from repro.core.scheduler.base import (
    COLLISION_SCOREBOARD,
    COLLISION_SQUASH,
    SchedulingDiscipline,
)


class SelectFreeSquashDep(SchedulingDiscipline):
    """Select-free wakeup with selective dependent squashing."""

    name = "select-free-squash-dep"
    speculative_wakeup = True
    collision_mode = COLLISION_SQUASH
    #: extra cycles consumers of a collision victim lose to the re-wakeup.
    squash_rewakeup_penalty = 1

    def broadcast_offset(self, latency: int) -> int:
        return latency


class SelectFreeScoreboard(SchedulingDiscipline):
    """Select-free wakeup with scoreboard pileup-victim replay."""

    name = "select-free-scoreboard"
    speculative_wakeup = True
    collision_mode = COLLISION_SCOREBOARD

    def broadcast_offset(self, latency: int) -> int:
        return latency
