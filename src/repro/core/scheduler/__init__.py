"""Scheduling disciplines.

A discipline parameterizes the shared wakeup/select engine in
:mod:`repro.core.pipeline` with the *timing law* of one scheduler design:

* when a producer's tag broadcast becomes visible to consumers, relative to
  its select cycle (the back-to-back law of Figure 5),
* whether wakeup is speculative (select-free: broadcast at ready time,
  before selection is confirmed), and
* how select collisions are repaired (squash-dep vs. scoreboard).
"""

from repro.core.scheduler.base import (
    SchedulingDiscipline,
    make_discipline,
)
from repro.core.scheduler.pipelined import (
    AtomicDiscipline,
    TwoCycleDiscipline,
    MacroOpDiscipline,
)
from repro.core.scheduler.selectfree import (
    SelectFreeScoreboard,
    SelectFreeSquashDep,
)

__all__ = [
    "SchedulingDiscipline",
    "make_discipline",
    "AtomicDiscipline",
    "TwoCycleDiscipline",
    "MacroOpDiscipline",
    "SelectFreeSquashDep",
    "SelectFreeScoreboard",
]
