"""Non-speculative disciplines: base (atomic), 2-cycle, and macro-op."""

from __future__ import annotations

from repro.core.scheduler.base import SchedulingDiscipline


class AtomicDiscipline(SchedulingDiscipline):
    """Ideally pipelined atomic scheduling — the paper's *base* model.

    Wakeup and select complete within one cycle, so a consumer can be
    selected exactly ``latency`` cycles after its producer: dependent
    single-cycle operations execute back to back.  All performance results
    in Section 6 are normalized to this discipline.
    """

    name = "base"

    def broadcast_offset(self, latency: int) -> int:
        return latency


class TwoCycleDiscipline(SchedulingDiscipline):
    """Pipelined N-cycle scheduling: wakeup and select in separate stages.

    With the paper's depth of two, the scheduling loop spans two cycles and
    the earliest consumer select is ``max(latency, 2)`` after the producer:
    a one-cycle bubble between dependent single-cycle operations, fully
    hidden for multi-cycle operations (Figure 5, middle column).  Deeper
    loops (the Section 4.3 extension, paired with larger MOPs) generalize
    the bubble to ``depth - latency`` cycles.
    """

    name = "2-cycle"

    def __init__(self, depth: int = 2) -> None:
        self.depth = depth
        if depth != 2:
            self.name = f"{depth}-cycle"

    def broadcast_offset(self, latency: int) -> int:
        return max(latency, self.depth)


class MacroOpDiscipline(TwoCycleDiscipline):
    """Macro-op scheduling: 2-cycle pipelined scheduling over MOPs.

    The timing law is identical to 2-cycle scheduling — the point of the
    technique is that grouped pairs become non-pipelined 2-cycle units, so
    ``max(2, 2) = 2`` costs them nothing: the MOP tail executes one cycle
    after the head and tail consumers proceed back-to-back (Figure 5, right
    column).  Ungrouped single-cycle instructions behave as in plain 2-cycle
    scheduling (Section 3.1).
    """

    name = "macro-op"
    uses_macro_ops = True

    def __init__(self, depth: int = 2) -> None:
        super().__init__(depth)
        self.name = "macro-op" if depth == 2 else f"macro-op-{depth}"
