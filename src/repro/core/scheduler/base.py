"""Scheduling-discipline interface and factory."""

from __future__ import annotations

import abc

from repro.core.config import MachineConfig, SchedulerKind

#: Collision-repair modes for speculative (select-free) wakeup.
COLLISION_NONE = "none"
COLLISION_SQUASH = "squash"
COLLISION_SCOREBOARD = "scoreboard"


class SchedulingDiscipline(abc.ABC):
    """The timing law of one scheduler design.

    ``broadcast_offset(latency)`` answers: after an entry with scheduling
    latency *latency* is selected at cycle *t*, at which cycle ``t + offset``
    may a consumer whose last operand it supplies be selected?  Figure 5 in
    one function:

    * atomic (base): ``offset = latency`` — back-to-back for 1-cycle ops,
    * 2-cycle pipelined: ``offset = max(latency, 2)`` — one bubble for
      1-cycle ops, hidden for multi-cycle ops,
    * macro-op: same law, but grouped pairs are 2-cycle units so the bubble
      disappears for the pair's tail consumers,
    * select-free: ``offset = latency`` measured from *ready* time
      (speculative wakeup), repaired on collisions.
    """

    #: human-readable name used in reports.
    name: str = "abstract"
    #: broadcast at ready time (speculative) instead of select time.
    speculative_wakeup: bool = False
    #: collision repair: none / squash / scoreboard.
    collision_mode: str = COLLISION_NONE
    #: whether MOP formation and detection are active.
    uses_macro_ops: bool = False

    @abc.abstractmethod
    def broadcast_offset(self, latency: int) -> int:
        """Cycles from select (or ready, if speculative) to consumer select."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


def make_discipline(config: MachineConfig) -> SchedulingDiscipline:
    """Instantiate the discipline selected by *config*."""
    from repro.core.scheduler.pipelined import (
        AtomicDiscipline,
        MacroOpDiscipline,
        TwoCycleDiscipline,
    )
    from repro.core.scheduler.selectfree import (
        SelectFreeScoreboard,
        SelectFreeSquashDep,
    )

    kind = config.scheduler
    if kind is SchedulerKind.BASE:
        return AtomicDiscipline()
    if kind is SchedulerKind.TWO_CYCLE:
        return TwoCycleDiscipline(depth=config.sched_loop_depth)
    if kind is SchedulerKind.MACRO_OP:
        return MacroOpDiscipline(depth=config.sched_loop_depth)
    if kind is SchedulerKind.SELECT_FREE_SQUASH:
        return SelectFreeSquashDep()
    if kind is SchedulerKind.SELECT_FREE_SCOREBOARD:
        return SelectFreeScoreboard()
    raise ValueError(f"unknown scheduler kind: {kind}")
