"""Frontend: fetch from a trace with branch prediction and IL1 timing.

Trace-driven conventions: the trace is the committed (correct) path, so
wrong-path operations are not injected.  A mispredicted branch instead
*stalls fetch* from the cycle it is fetched until it resolves, which charges
the same recovery bubble a wrong-path squash would (the paper's "at least 14
cycles for misprediction recovery" is enforced as a floor).

Branch outcomes come from two sources:

* synthetic SPEC-like traces carry ``mispred_hint`` flags pre-drawn at the
  profile's misprediction rate;
* execution-driven kernel traces leave the hint unset, and the real
  combined predictor + BTB decide (and are trained at branch resolution).

Fetch follows Table 1's rule: it stops at the first taken branch in a
cycle.  No-ops are filtered at decode without consuming pipeline slots,
matching the paper's treatment of Alpha no-ops.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch import BranchTargetBuffer, CombinedPredictor
from repro.core.config import MachineConfig
from repro.core.stats import SimStats
from repro.core.uop import Uop
from repro.isa.opcodes import OpClass
from repro.memory import MemoryHierarchy
from repro.workloads.trace import Trace


class Frontend:
    """Fetches up to ``width`` operations per cycle from a trace."""

    def __init__(
        self,
        config: MachineConfig,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        stats: SimStats,
    ) -> None:
        self.config = config
        self.ops = trace.ops
        self.pos = 0
        self.hierarchy = hierarchy
        self.stats = stats
        self.predictor = CombinedPredictor(
            config.bimodal_entries,
            config.gshare_entries,
            config.selector_entries,
        )
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.stalled_until = 0
        #: the in-flight mispredicted branch fetch is waiting on, if any.
        self.waiting_branch: Optional[Uop] = None
        self._il1_charged_pos = -1

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.ops)

    # ------------------------------------------------------------------

    def fetch_group(self, now: int) -> List[Uop]:
        """Fetch one group; empty when stalled or out of trace."""
        if self.exhausted or self.waiting_branch is not None:
            if self.waiting_branch is not None:
                self.stats.fetch_stall_cycles += 1
            return []
        if now < self.stalled_until:
            self.stats.fetch_stall_cycles += 1
            return []

        # Instruction-cache access for this fetch group (charged once).
        if self._il1_charged_pos != self.pos:
            latency = self.hierarchy.fetch_latency(self.ops[self.pos].pc)
            self._il1_charged_pos = self.pos
            extra = latency - self.config.il1_latency
            if extra > 0:
                self.stalled_until = now + extra
                self.stats.fetch_stall_cycles += 1
                return []

        group: List[Uop] = []
        while len(group) < self.config.width and not self.exhausted:
            inst = self.ops[self.pos]
            if inst.op_class is OpClass.NOP:
                self.pos += 1          # decoded away, no pipeline slot
                continue
            uop = Uop(inst, fetch_cycle=now)
            self.pos += 1
            group.append(uop)
            if inst.is_branch:
                self.stats.branches += 1
                stop = self._handle_branch(uop, now)
                if stop:
                    break
        return group

    # ------------------------------------------------------------------

    def _handle_branch(self, uop: Uop, now: int) -> bool:
        """Predict *uop*; returns True when fetch must stop after it."""
        inst = uop.inst
        if inst.mispred_hint is not None:
            # Synthetic trace: outcome pre-resolved at the profile rate.
            uop.mispredicted = inst.mispred_hint
        else:
            uop.mispredicted = self._predict_real(uop, now)

        if uop.mispredicted:
            self.stats.mispredicted_branches += 1
            self.waiting_branch = uop
            return True
        # Correctly predicted: a taken branch still ends this fetch group.
        return inst.taken

    def _predict_real(self, uop: Uop, now: int) -> bool:
        """Run the combined predictor + BTB; True on misprediction."""
        inst = uop.inst
        if inst.op_class is OpClass.JUMP:
            # Direct jump: direction is static; only the target can miss.
            if self.btb.lookup(inst.pc) is None:
                self.btb.install(inst.pc, inst.next_pc)
                self.stalled_until = max(self.stalled_until, now + 1)
            return False
        if inst.op_class is OpClass.JUMP_INDIRECT:
            predicted_target = self.btb.lookup(inst.pc)
            self.btb.install(inst.pc, inst.next_pc)
            return predicted_target != inst.next_pc
        prediction = self.predictor.predict(inst.pc)
        uop.prediction = prediction
        if prediction.taken and self.btb.lookup(inst.pc) is None:
            # Predicted taken but no target: one-cycle fetch bubble.
            self.btb.install(inst.pc, inst.next_pc)
            self.stalled_until = max(self.stalled_until, now + 1)
        return prediction.taken != inst.taken

    # ------------------------------------------------------------------

    def on_branch_resolved(self, uop: Uop, now: int) -> None:
        """Train the predictor; restart fetch after a misprediction."""
        if uop.prediction is not None:
            self.predictor.update(uop.inst.pc, uop.prediction,
                                  uop.inst.taken)
            self.btb.install(uop.inst.pc, uop.inst.next_pc)
        if self.waiting_branch is uop:
            self.waiting_branch = None
            resume = max(
                now + 1,
                uop.fetch_cycle + self.config.min_mispredict_penalty,
            )
            self.stalled_until = max(self.stalled_until, resume)
