"""Per-instruction pipeline timeline recording and rendering.

Attach a :class:`PipeViewer` to a :class:`~repro.core.pipeline.Processor`
to record, for every operation, the cycles at which it was fetched,
inserted into the issue queue, issued (each attempt, so replays are
visible), completed, and committed — then render gem5-O3-style ASCII
timelines.  Invaluable for seeing macro-op scheduling act: grouped pairs
issue on the same cycle and their consumers follow back to back.

>>> from repro.core import MachineConfig, SchedulerKind
>>> from repro.core.pipeline import Processor
>>> from repro.core.pipeview import PipeViewer
>>> from repro.workloads.kernels import kernel_trace
>>> trace = kernel_trace("vector_sum")
>>> processor = Processor(MachineConfig.paper_default(
...     scheduler=SchedulerKind.MACRO_OP), trace)
>>> viewer = PipeViewer.attach(processor)
>>> _ = processor.run()
>>> text = viewer.render(start=0, count=8)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.pipeline import Processor
from repro.core.uop import MOP_HEAD, MOP_TAIL


@dataclass
class OpTimeline:
    """Stage timestamps for one dynamic operation."""

    seq: int
    pc: int
    mnemonic: str
    role: str = " "
    fetch: Optional[int] = None
    insert: Optional[int] = None
    issues: List[int] = field(default_factory=list)
    complete: Optional[int] = None
    commit: Optional[int] = None

    @property
    def issue(self) -> Optional[int]:
        """The final (successful) issue cycle."""
        return self.issues[-1] if self.issues else None

    @property
    def replays(self) -> int:
        return max(0, len(self.issues) - 1)


class PipeViewer:
    """Records per-op stage timing by wrapping Processor hooks."""

    def __init__(self) -> None:
        self.timelines: Dict[int, OpTimeline] = {}

    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, processor: Processor) -> "PipeViewer":
        """Instrument *processor*; call before ``run()``."""
        viewer = cls()
        viewer._wrap(processor)
        return viewer

    def _timeline(self, uop) -> OpTimeline:
        timeline = self.timelines.get(uop.seq)
        if timeline is None:
            timeline = OpTimeline(seq=uop.seq, pc=uop.inst.pc,
                                  mnemonic=uop.inst.mnemonic)
            timeline.fetch = uop.fetch_cycle
            self.timelines[uop.seq] = timeline
        if uop.role == MOP_HEAD:
            timeline.role = "H"
        elif uop.role == MOP_TAIL:
            timeline.role = "T"
        return timeline

    def _wrap(self, processor: Processor) -> None:
        original_issue = processor._issue
        original_finish = processor._finish_insert
        original_commit = processor._commit
        original_complete = processor._on_complete
        viewer = self

        def issue(entry, now, fu_avail):
            for uop in entry.uops:
                viewer._timeline(uop).issues.append(now)
            return original_issue(entry, now, fu_avail)

        def finish_insert(entry, head, now):
            viewer._timeline(head).insert = now
            return original_finish(entry, head, now)

        def on_complete(entry, gen):
            result = original_complete(entry, gen)
            for uop in entry.uops:
                if uop.completed:
                    viewer._timeline(uop).complete = uop.completion_cycle
            return result

        def commit(now):
            before = processor.stats.committed_ops
            rob_head = list(processor.rob)[:processor.config.width]
            result = original_commit(now)
            committed = processor.stats.committed_ops - before
            for uop in rob_head[:committed]:
                viewer._timeline(uop).commit = now
            return result

        processor._issue = issue
        processor._finish_insert = finish_insert
        processor._on_complete = on_complete
        processor._commit = commit

    # ------------------------------------------------------------------

    def render(self, start: int = 0, count: int = 20,
               width: int = 64) -> str:
        """ASCII timelines for ops with seq in [start, start+count).

        Stage letters: ``f`` fetch, ``q`` queue insert, ``i`` issue
        (lowercase ``r`` for replayed attempts), ``c`` complete,
        ``C`` commit.  MOP heads/tails carry H/T tags.
        """
        selected = [self.timelines[seq]
                    for seq in sorted(self.timelines)
                    if start <= seq < start + count]
        if not selected:
            return "(no recorded operations in range)"
        # Anchor at the earliest issue: on a backed-up machine, ops sit in
        # the queue far longer than the window is wide, and issue-to-commit
        # is where scheduling disciplines differ.
        anchors = ([t.issue for t in selected if t.issue is not None]
                   or [t.insert for t in selected if t.insert is not None]
                   or [t.fetch for t in selected if t.fetch is not None])
        t0 = min(anchors)
        lines = [f"cycle origin: {t0}"]
        for timeline in selected:
            row = [" "] * width

            def mark(cycle: Optional[int], char: str) -> None:
                if cycle is None:
                    return
                offset = cycle - t0
                if 0 <= offset < width:
                    row[offset] = char

            mark(timeline.fetch, "f")
            mark(timeline.insert, "q")
            for attempt in timeline.issues[:-1]:
                mark(attempt, "r")
            mark(timeline.issue, "i")
            mark(timeline.complete, "c")
            mark(timeline.commit, "C")
            label = (f"{timeline.seq:5d} {timeline.role}"
                     f" {timeline.mnemonic:8.8s}")
            lines.append(f"{label} |{''.join(row)}|")
        return "\n".join(lines)

    def summary(self) -> str:
        """Aggregate latency breakdown over all recorded operations."""
        done = [t for t in self.timelines.values()
                if t.commit is not None and t.fetch is not None]
        if not done:
            return "(nothing committed)"
        total = len(done)
        avg_lat = sum(t.commit - t.fetch for t in done) / total
        replays = sum(t.replays for t in done)
        grouped = sum(1 for t in done if t.role in "HT")
        return (f"{total} ops committed; avg fetch→commit "
                f"{avg_lat:.1f} cycles; {replays} replayed issues; "
                f"{grouped} ops in macro-ops")
