"""Per-instruction pipeline timeline recording and rendering.

A :class:`PipeViewer` is a trace *consumer*: it implements the
:class:`~repro.trace.sink.TraceSink` protocol, so it can be attached
live to a :class:`~repro.core.pipeline.Processor` (recording events as
the simulation emits them) or replay a JSONL trace written earlier by a
:class:`~repro.trace.sink.JsonlTraceSink` — both paths build identical
timelines.  It renders gem5-O3-style ASCII timelines; invaluable for
seeing macro-op scheduling act: grouped pairs issue on the same cycle
and their consumers follow back to back.

>>> from repro.core import MachineConfig, SchedulerKind
>>> from repro.core.pipeline import Processor
>>> from repro.core.pipeview import PipeViewer
>>> from repro.workloads.kernels import kernel_trace
>>> trace = kernel_trace("vector_sum")
>>> processor = Processor(MachineConfig.paper_default(
...     scheduler=SchedulerKind.MACRO_OP), trace)
>>> viewer = PipeViewer.attach(processor)
>>> _ = processor.run()
>>> text = viewer.render(start=0, count=8)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.core.pipeline import Processor

if TYPE_CHECKING:
    # Annotation-only: an eager import here would violate the layering
    # contract (core must not load repro.trace at import time — SL002).
    from repro.trace.events import TraceEvent


@dataclass
class OpTimeline:
    """Stage timestamps for one dynamic operation."""

    seq: int
    pc: int
    mnemonic: str
    role: str = " "
    fetch: Optional[int] = None
    insert: Optional[int] = None
    issues: List[int] = field(default_factory=list)
    execs: List[int] = field(default_factory=list)
    complete: Optional[int] = None
    commit: Optional[int] = None
    replay_causes: List[str] = field(default_factory=list)

    @property
    def issue(self) -> Optional[int]:
        """The final (successful) issue cycle."""
        return self.issues[-1] if self.issues else None

    @property
    def exec(self) -> Optional[int]:
        """The final execution-start cycle."""
        return self.execs[-1] if self.execs else None

    @property
    def replays(self) -> int:
        # Scoreboard pileup victims are caught at select and never emit
        # a second issue event, so count replay events, not re-issues.
        return max(len(self.replay_causes), len(self.issues) - 1)


class PipeViewer:
    """Builds per-op stage timelines from pipeline trace events.

    Implements the :class:`~repro.trace.sink.TraceSink` protocol
    (``emit``/``close``), so it can be handed directly to
    :meth:`Processor.set_trace_sink` or composed behind a
    :class:`~repro.trace.sink.TeeSink` with a file sink.
    """

    def __init__(self) -> None:
        self.timelines: Dict[int, OpTimeline] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def attach(cls, processor: Processor) -> "PipeViewer":
        """Record *processor*'s events live; call before ``run()``.

        If the processor already has a sink (say, a file trace), the
        viewer tees alongside it rather than replacing it.
        """
        viewer = cls()
        if processor._sink is not None:
            from repro.trace.sink import TeeSink
            processor.set_trace_sink(TeeSink(processor._sink, viewer))
        else:
            processor.set_trace_sink(viewer)
        return viewer

    @classmethod
    def from_jsonl(cls, path: os.PathLike) -> "PipeViewer":
        """Rebuild timelines from a JSONL trace file."""
        from repro.trace.sink import read_trace
        viewer = cls()
        viewer.record(read_trace(path))
        return viewer

    def record(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.emit(event)

    # -- TraceSink protocol --------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        timeline = self.timelines.get(event.seq)
        if timeline is None:
            timeline = OpTimeline(seq=event.seq, pc=event.pc,
                                  mnemonic=event.mnemonic)
            self.timelines[event.seq] = timeline
        if event.role != " ":
            timeline.role = event.role
        kind = event.kind
        if kind == "fetch":
            timeline.fetch = event.cycle
        elif kind == "insert":
            timeline.insert = event.cycle
        elif kind == "issue":
            timeline.issues.append(event.cycle)
        elif kind == "exec":
            timeline.execs.append(event.cycle)
        elif kind == "writeback":
            timeline.complete = event.cycle
        elif kind == "commit":
            timeline.commit = event.cycle
        elif kind == "replay" and event.cause is not None:
            timeline.replay_causes.append(event.cause)
        # wakeup/select/squash events carry no timeline mark (select is
        # the issue cycle; squashed wakeups recur), but flow through here
        # so a viewer subclass can observe them.

    def close(self) -> None:
        pass

    # -- rendering ------------------------------------------------------

    def render(self, start: int = 0, count: int = 20,
               width: int = 64) -> str:
        """ASCII timelines for ops with seq in [start, start+count).

        Stage letters: ``f`` fetch, ``q`` queue insert, ``i`` issue
        (lowercase ``r`` for replayed attempts), ``e`` execute,
        ``c`` complete, ``C`` commit.  MOP heads/tails carry H/T tags.
        """
        selected = [self.timelines[seq]
                    for seq in sorted(self.timelines)
                    if start <= seq < start + count]
        if not selected:
            return "(no recorded operations in range)"
        # Anchor at the earliest issue: on a backed-up machine, ops sit in
        # the queue far longer than the window is wide, and issue-to-commit
        # is where scheduling disciplines differ.
        anchors = ([t.issue for t in selected if t.issue is not None]
                   or [t.insert for t in selected if t.insert is not None]
                   or [t.fetch for t in selected if t.fetch is not None])
        t0 = min(anchors)
        lines = [f"cycle origin: {t0}"]
        for timeline in selected:
            row = [" "] * width

            def mark(cycle: Optional[int], char: str) -> None:
                if cycle is None:
                    return
                offset = cycle - t0
                if 0 <= offset < width:
                    row[offset] = char

            mark(timeline.fetch, "f")
            mark(timeline.insert, "q")
            for attempt in timeline.issues[:-1]:
                mark(attempt, "r")
            mark(timeline.issue, "i")
            mark(timeline.exec, "e")
            mark(timeline.complete, "c")
            mark(timeline.commit, "C")
            label = (f"{timeline.seq:5d} {timeline.role}"
                     f" {timeline.mnemonic:8.8s}")
            lines.append(f"{label} |{''.join(row)}|")
        return "\n".join(lines)

    def summary(self) -> str:
        """Aggregate latency breakdown over all recorded operations."""
        done = [t for t in self.timelines.values()
                if t.commit is not None and t.fetch is not None]
        if not done:
            return "(nothing committed)"
        total = len(done)
        avg_lat = sum(t.commit - t.fetch for t in done) / total
        replays = sum(t.replays for t in done)
        grouped = sum(1 for t in done if t.role in "HT")
        return (f"{total} ops committed; avg fetch→commit "
                f"{avg_lat:.1f} cycles; {replays} replayed ops; "
                f"{grouped} ops in macro-ops")
