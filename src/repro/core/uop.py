"""Pipeline micro-operation state.

A :class:`Uop` wraps one :class:`~repro.isa.instruction.DynInst` with the
mutable state the timing model tracks: which issue-queue entry holds it,
its macro-op role, completion status, and branch-prediction bookkeeping.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass

#: Macro-op roles.
SOLO = 0
MOP_HEAD = 1
MOP_TAIL = 2

#: Figure 13 grouping categories (set at insert, counted at commit).
KIND_NOT_CANDIDATE = "not_candidate"
KIND_CANDIDATE_UNGROUPED = "candidate_ungrouped"
KIND_MOP_VALUEGEN = "mop_valuegen"
KIND_MOP_NONVALUEGEN = "mop_nonvaluegen"
KIND_INDEPENDENT_MOP = "independent_mop"


class Uop:
    """One in-flight operation."""

    __slots__ = (
        "inst",
        "entry",
        "role",
        "group_kind",
        "fetch_cycle",
        "completed",
        "completion_cycle",
        "prediction",
        "mispredicted",
        "fu_class",
    )

    def __init__(self, inst: DynInst, fetch_cycle: int) -> None:
        self.inst = inst
        self.entry = None
        self.role = SOLO
        self.group_kind: Optional[str] = None
        self.fetch_cycle = fetch_cycle
        self.completed = False
        self.completion_cycle: Optional[int] = None
        self.prediction = None      # BranchPrediction for real-predictor runs
        self.mispredicted = False
        self.fu_class = _fu_class_for(inst.op_class)

    @property
    def seq(self) -> int:
        return self.inst.seq

    def __repr__(self) -> str:
        return f"Uop(seq={self.inst.seq}, {self.inst.mnemonic})"


#: Functional-unit pools (keys into the per-cycle availability counters).
FU_INT_ALU = "int_alu"
FU_FP_ALU = "fp_alu"
FU_INT_MULT = "int_mult"
FU_FP_MULT = "fp_mult"
FU_MEM_PORT = "mem_port"
FU_NONE = "none"

_FU_MAP = {
    OpClass.INT_ALU: FU_INT_ALU,
    OpClass.BRANCH: FU_INT_ALU,
    OpClass.JUMP: FU_INT_ALU,
    OpClass.JUMP_INDIRECT: FU_INT_ALU,
    OpClass.INT_MULT: FU_INT_MULT,
    OpClass.INT_DIV: FU_INT_MULT,
    OpClass.FP_ALU: FU_FP_ALU,
    OpClass.FP_MULT: FU_FP_MULT,
    OpClass.FP_DIV: FU_FP_MULT,
    OpClass.LOAD: FU_MEM_PORT,
    OpClass.STORE_ADDR: FU_MEM_PORT,
    OpClass.STORE_DATA: FU_NONE,
    OpClass.NOP: FU_NONE,
    OpClass.SYSCALL: FU_NONE,
}


def _fu_class_for(op_class: OpClass) -> str:
    return _FU_MAP[op_class]
