"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class SimStats:
    """Counters collected by one :class:`~repro.core.pipeline.Processor` run.

    The grouping counters mirror Figure 13's categories so the experiment
    harness can regenerate it directly: every committed operation falls into
    exactly one of ``mop_valuegen`` (value-generating candidate grouped into
    a dependent MOP), ``mop_nonvaluegen`` (other candidate grouped into a
    dependent MOP), ``independent_mop`` (grouped into an independent MOP),
    ``candidate_ungrouped`` or ``not_candidate``.
    """

    cycles: int = 0
    committed_insts: int = 0
    committed_ops: int = 0

    # -- frontend ------------------------------------------------------------
    fetched_ops: int = 0
    branches: int = 0
    mispredicted_branches: int = 0
    fetch_stall_cycles: int = 0

    # -- scheduler ------------------------------------------------------------
    issued_entries: int = 0
    issued_ops: int = 0
    iq_inserts: int = 0          # issue-queue entries consumed
    replayed_ops: int = 0        # ops invalidated by load mis-scheduling
    select_collisions: int = 0   # select-free: ready-but-not-selected events
    pileup_victims: int = 0      # select-free scoreboard wasted issues
    iq_full_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0

    # -- loads -----------------------------------------------------------------
    loads: int = 0
    dl1_load_misses: int = 0
    l2_load_misses: int = 0

    # -- macro-op grouping (Figure 13 categories, committed ops) ---------------
    mop_valuegen: int = 0
    mop_nonvaluegen: int = 0
    independent_mop: int = 0
    candidate_ungrouped: int = 0
    not_candidate: int = 0

    # -- macro-op machinery ------------------------------------------------------
    mop_pointers_created: int = 0
    mop_pointers_deleted: int = 0   # last-arriving-operand filter
    mops_formed: int = 0
    mop_pending_abandoned: int = 0  # heads whose tail never arrived

    @property
    def ipc(self) -> float:
        """Committed architectural instructions per cycle."""
        return self.committed_insts / self.cycles if self.cycles else 0.0

    @property
    def uipc(self) -> float:
        """Committed operations per cycle (stores count twice)."""
        return self.committed_ops / self.cycles if self.cycles else 0.0

    @property
    def grouped_ops(self) -> int:
        """Operations committed as part of any MOP."""
        return self.mop_valuegen + self.mop_nonvaluegen + self.independent_mop

    @property
    def grouped_fraction(self) -> float:
        """Fraction of committed ops grouped into MOPs (Figure 13 y-axis)."""
        total = self.committed_ops
        return self.grouped_ops / total if total else 0.0

    @property
    def insert_reduction(self) -> float:
        """Relative reduction in scheduler inserts from MOP sharing
        (the paper reports an average 16.2% reduction)."""
        if not self.committed_ops:
            return 0.0
        return 1.0 - self.iq_inserts / self.committed_ops

    def grouping_breakdown(self) -> Dict[str, float]:
        """Figure 13 stacked-bar fractions over committed operations."""
        total = self.committed_ops or 1
        return {
            "mop_valuegen": self.mop_valuegen / total,
            "mop_nonvaluegen": self.mop_nonvaluegen / total,
            "independent_mop": self.independent_mop / total,
            "candidate_ungrouped": self.candidate_ungrouped / total,
            "not_candidate": self.not_candidate / total,
        }

    def summary(self) -> str:
        lines = [
            f"cycles={self.cycles} insts={self.committed_insts}"
            f" IPC={self.ipc:.3f}",
            f"branches={self.branches}"
            f" mispredicts={self.mispredicted_branches}",
            f"loads={self.loads} dl1_misses={self.dl1_load_misses}"
            f" replayed_ops={self.replayed_ops}",
        ]
        if self.mops_formed:
            lines.append(
                f"mops={self.mops_formed}"
                f" grouped={100.0 * self.grouped_fraction:.1f}%"
                f" insert_reduction={100.0 * self.insert_reduction:.1f}%"
            )
        return "\n".join(lines)
