"""Simulation statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

#: Replay causes (also carried by ``replay`` trace events).
REPLAY_RAISE = "raise"      # a load's broadcast was re-raised after a miss
REPLAY_PILEUP = "pileup"    # scoreboard pileup victim (select-free)
REPLAY_SQUASH = "squash"    # collateral of another entry's invalidation


@dataclass
class SimStats:
    """Counters collected by one :class:`~repro.core.pipeline.Processor` run.

    The grouping counters mirror Figure 13's categories so the experiment
    harness can regenerate it directly: every committed operation falls into
    exactly one of ``mop_valuegen`` (value-generating candidate grouped into
    a dependent MOP), ``mop_nonvaluegen`` (other candidate grouped into a
    dependent MOP), ``independent_mop`` (grouped into an independent MOP),
    ``candidate_ungrouped`` or ``not_candidate``.

    The scheduler-observability counters (replay causes, wakeup-to-select
    latency, issue-queue occupancy, the MOP formation funnel) are always
    collected — they never influence timing decisions, so enabling or
    disabling event tracing leaves every field here bit-identical.
    """

    cycles: int = 0
    committed_insts: int = 0
    committed_ops: int = 0

    # -- frontend ------------------------------------------------------------
    fetched_ops: int = 0
    branches: int = 0
    mispredicted_branches: int = 0
    fetch_stall_cycles: int = 0

    # -- scheduler ------------------------------------------------------------
    issued_entries: int = 0
    issued_ops: int = 0
    iq_inserts: int = 0          # issue-queue entries consumed
    iq_insert_ops: int = 0       # operations carried by those entries
    replayed_ops: int = 0        # ops invalidated by load mis-scheduling
    select_collisions: int = 0   # select-free: ready-but-not-selected events
    pileup_victims: int = 0      # select-free scoreboard wasted issues
    iq_full_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0

    # -- scheduler observability ----------------------------------------------
    #: replayed ops by cause; the three sum to ``replayed_ops``.
    replay_raise: int = 0        # load-miss shadow (broadcast re-raised)
    replay_pileup: int = 0       # scoreboard pileup victims
    replay_squash: int = 0       # collateral of another entry's invalidation
    #: highest replay count any single issue-queue entry reached.
    max_replays_seen: int = 0
    #: wakeup-to-select latency: total cycles and issued-entry count.
    wakeup_to_select_cycles: int = 0
    wakeup_to_select_count: int = 0
    #: per-cycle issue-queue occupancy histogram: occupancy (as a string,
    #: so the JSON cache round-trips losslessly) -> cycles at it.
    iq_occupancy_hist: Dict[str, int] = field(default_factory=dict)

    # -- loads -----------------------------------------------------------------
    loads: int = 0
    dl1_load_misses: int = 0
    l2_load_misses: int = 0

    # -- macro-op grouping (Figure 13 categories, committed ops) ---------------
    mop_valuegen: int = 0
    mop_nonvaluegen: int = 0
    independent_mop: int = 0
    candidate_ungrouped: int = 0
    not_candidate: int = 0

    # -- macro-op machinery ------------------------------------------------------
    mop_pointers_created: int = 0
    mop_pointers_deleted: int = 0   # last-arriving-operand filter
    mops_formed: int = 0
    mop_pending_heads: int = 0      # heads inserted with the pending bit set
    mop_pending_abandoned: int = 0  # heads whose tail never arrived

    @property
    def ipc(self) -> float:
        """Committed architectural instructions per cycle.

        NaN (not 0.0) when no cycles were simulated: an empty or FAILED
        cell must poison downstream ratios and geomeans loudly instead of
        dragging them toward zero — or silently dropping out of them.
        """
        if not self.cycles:
            return float("nan")
        return self.committed_insts / self.cycles

    @property
    def uipc(self) -> float:
        """Committed operations per cycle (stores count twice)."""
        if not self.cycles:
            return float("nan")
        return self.committed_ops / self.cycles

    @property
    def grouped_ops(self) -> int:
        """Operations committed as part of any MOP."""
        return self.mop_valuegen + self.mop_nonvaluegen + self.independent_mop

    @property
    def grouped_fraction(self) -> float:
        """Fraction of committed ops grouped into MOPs (Figure 13 y-axis)."""
        total = self.committed_ops
        return self.grouped_ops / total if total else 0.0

    @property
    def insert_reduction(self) -> float:
        """Relative reduction in scheduler inserts from MOP sharing
        (the paper reports an average 16.2% reduction).

        Both sides are measured over the same population — the operations
        that actually entered the issue queue (``iq_insert_ops``) against
        the entries they consumed (``iq_inserts``) — so a truncated run,
        whose in-flight ops inserted but never committed, cannot push the
        metric negative the way the old inserts-over-committed ratio did.
        """
        if not self.iq_insert_ops:
            return 0.0
        return 1.0 - self.iq_inserts / self.iq_insert_ops

    # -- scheduler observability (derived) -------------------------------------

    def replay_causes(self) -> Dict[str, int]:
        """Replayed ops by cause (keys ``raise`` / ``pileup`` / ``squash``)."""
        return {
            REPLAY_RAISE: self.replay_raise,
            REPLAY_PILEUP: self.replay_pileup,
            REPLAY_SQUASH: self.replay_squash,
        }

    @property
    def avg_wakeup_to_select(self) -> float:
        """Mean cycles an entry waited between wakeup and select."""
        if not self.wakeup_to_select_count:
            return float("nan")
        return self.wakeup_to_select_cycles / self.wakeup_to_select_count

    @property
    def iq_occupancy_mean(self) -> float:
        """Mean per-cycle issue-queue occupancy."""
        total = sum(self.iq_occupancy_hist.values())
        if not total:
            return float("nan")
        weighted = sum(int(occ) * cycles
                       for occ, cycles in self.iq_occupancy_hist.items())
        return weighted / total

    def iq_occupancy_quantile(self, q: float) -> float:
        """Occupancy at quantile *q* of cycles (e.g. ``0.95``)."""
        total = sum(self.iq_occupancy_hist.values())
        if not total:
            return float("nan")
        target = q * total
        seen = 0
        for occ in sorted(self.iq_occupancy_hist, key=int):
            seen += self.iq_occupancy_hist[occ]
            if seen >= target:
                return float(occ)
        return float(max(self.iq_occupancy_hist, key=int))

    def mop_funnel(self) -> Dict[str, int]:
        """The MOP formation funnel: pointers -> pending -> formed
        (with abandoned pending heads as the leak)."""
        return {
            "pointers": self.mop_pointers_created,
            "deleted": self.mop_pointers_deleted,
            "pending": self.mop_pending_heads,
            "formed": self.mops_formed,
            "abandoned": self.mop_pending_abandoned,
        }

    def grouping_breakdown(self) -> Dict[str, float]:
        """Figure 13 stacked-bar fractions over committed operations."""
        total = self.committed_ops or 1
        return {
            "mop_valuegen": self.mop_valuegen / total,
            "mop_nonvaluegen": self.mop_nonvaluegen / total,
            "independent_mop": self.independent_mop / total,
            "candidate_ungrouped": self.candidate_ungrouped / total,
            "not_candidate": self.not_candidate / total,
        }

    def stall_breakdown(self) -> Dict[str, int]:
        """Cycles lost to each backpressure source."""
        return {
            "fetch": self.fetch_stall_cycles,
            "iq_full": self.iq_full_stall_cycles,
            "rob_full": self.rob_full_stall_cycles,
        }

    def summary(self) -> str:
        lines = [
            f"cycles={self.cycles} insts={self.committed_insts}"
            f" IPC={self.ipc:.3f}",
            f"fetched_ops={self.fetched_ops}"
            f" issued={self.issued_entries} entries"
            f" ({self.issued_ops} ops)",
            f"branches={self.branches}"
            f" mispredicts={self.mispredicted_branches}",
            f"loads={self.loads} dl1_misses={self.dl1_load_misses}"
            f" l2_misses={self.l2_load_misses}"
            f" replayed_ops={self.replayed_ops}",
            f"stall cycles: fetch={self.fetch_stall_cycles}"
            f" iq_full={self.iq_full_stall_cycles}"
            f" rob_full={self.rob_full_stall_cycles}",
        ]
        if self.select_collisions or self.pileup_victims:
            lines.append(
                f"select-free: collisions={self.select_collisions}"
                f" pileup_victims={self.pileup_victims}"
            )
        if self.replayed_ops:
            lines.append(
                f"replay causes: raise={self.replay_raise}"
                f" pileup={self.replay_pileup}"
                f" squash={self.replay_squash}"
                f" (max per entry {self.max_replays_seen})"
            )
        if self.wakeup_to_select_count:
            occ = self.iq_occupancy_mean
            occ_text = f"{occ:.1f}" if not math.isnan(occ) else "n/a"
            lines.append(
                f"wakeup→select avg={self.avg_wakeup_to_select:.2f}cy"
                f" IQ occupancy avg={occ_text}"
            )
        if self.mops_formed:
            lines.append(
                f"mops={self.mops_formed}"
                f" grouped={100.0 * self.grouped_fraction:.1f}%"
                f" insert_reduction={100.0 * self.insert_reduction:.1f}%"
            )
        return "\n".join(lines)
