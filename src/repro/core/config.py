"""Machine configuration — Table 1 of the paper, in code form."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Optional


class SchedulerKind(str, enum.Enum):
    """The scheduling disciplines evaluated in Section 6."""

    #: Ideally pipelined atomic scheduling — the normalization target.
    BASE = "base"
    #: Pipelined wakeup/select: one bubble between dependent 1-cycle ops.
    TWO_CYCLE = "2-cycle"
    #: Pipelined 2-cycle scheduling plus macro-op grouping.
    MACRO_OP = "macro-op"
    #: Select-free scheduling, Squash Dep configuration (Brown et al.).
    SELECT_FREE_SQUASH = "select-free-squash-dep"
    #: Select-free scheduling, Scoreboard configuration (Brown et al.).
    SELECT_FREE_SCOREBOARD = "select-free-scoreboard"


class WakeupStyle(str, enum.Enum):
    """Wakeup-array styles studied for macro-op scheduling (Section 2.2)."""

    #: CAM-style with two source-tag comparators per entry: MOP detection
    #: refuses pairs whose merged source set exceeds two tags.
    CAM_2SRC = "2-src"
    #: Wired-OR dependence vectors: unlimited merged sources.
    WIRED_OR = "wired-OR"


@dataclass(frozen=True)
class MachineConfig:
    """All machine parameters.  Defaults reproduce Table 1.

    ``iq_size=None`` models the paper's "unrestricted" issue queue (bounded
    only by the ROB), used in Figure 14 and the right column of Table 2.
    """

    # -- out-of-order execution (Table 1 row 1) ----------------------------
    width: int = 4                      # fetch/issue/commit width
    rob_size: int = 128
    iq_size: Optional[int] = 32
    replay_penalty: int = 2             # selective-replay penalty, cycles
    #: hard bound on how often one issue-queue entry may replay before the
    #: run is aborted with a loud ``ReplayStormError`` (None = unbounded).
    #: Healthy runs stay in single digits (``max_replays_seen``); a
    #: livelocked replay storm would otherwise spin silently until the
    #: deadlock watchdog or the cell's wall-clock timeout fired.
    replay_limit: Optional[int] = 256

    # -- functional units (Table 1 row 2) ----------------------------------
    int_alu_count: int = 4
    fp_alu_count: int = 2
    int_mult_count: int = 2
    fp_mult_count: int = 2
    mem_port_count: int = 2

    # -- branch prediction (Table 1 row 3) ----------------------------------
    bimodal_entries: int = 4096
    gshare_entries: int = 4096
    selector_entries: int = 4096
    ras_depth: int = 16
    btb_entries: int = 1024
    btb_assoc: int = 4

    # -- memory system (Table 1 row 4) ---------------------------------------
    il1_size: int = 16 * 1024
    il1_assoc: int = 2
    il1_line: int = 64
    il1_latency: int = 2
    dl1_size: int = 16 * 1024
    dl1_assoc: int = 4
    dl1_line: int = 64
    dl1_latency: int = 2
    l2_size: int = 256 * 1024
    l2_assoc: int = 4
    l2_line: int = 128
    l2_latency: int = 8
    memory_latency: int = 100

    # -- pipeline depths (Figure 2: 13 stages) --------------------------------
    #: stages between fetch and issue-queue insert (Decode, Rename, Rename,
    #: Queue), before any extra macro-op formation stages.
    frontend_depth: int = 4
    #: stages between select and execute (Disp, Disp, RF, RF).
    dispatch_depth: int = 5
    #: minimum misprediction recovery, enforced as a fetch-redirect floor.
    min_mispredict_penalty: int = 14
    #: pre-touch the instruction-side caches with the trace's PCs before
    #: simulating.  The paper measures long runs (billions of instructions)
    #: where compulsory instruction misses are noise; our short samples
    #: would otherwise be dominated by them.
    warm_caches: bool = True

    # -- scheduler selection ---------------------------------------------------
    scheduler: SchedulerKind = SchedulerKind.BASE
    wakeup_style: WakeupStyle = WakeupStyle.WIRED_OR

    # -- simulation kernel backend ---------------------------------------------
    #: which scheduling-kernel implementation runs this machine:
    #: ``"python"`` is the dependency-free golden reference,
    #: ``"numpy"`` the vectorized kernel (bit-identical stats, faster).
    #: A pure host-side choice: it must never change simulated behaviour,
    #: which is why the result cache hashes everything here *except* it
    #: (see ``repro.experiments.executor.cell_key``) and the differential
    #: harness in ``tests/test_backend_parity.py`` enforces parity.
    backend: str = "python"

    # -- macro-op machinery (Sections 4 and 5) ---------------------------------
    #: extra pipeline stages charged for MOP formation (Figure 15 sweep).
    extra_mop_stages: int = 0
    #: detection scope in insert groups (2 groups × width = 8 instructions).
    mop_scope_groups: int = 2
    #: cycles from observing a PC to its MOP pointer becoming usable.
    mop_detection_delay: int = 3
    #: group pairs of independent instructions with identical sources
    #: (Section 5.4.1).
    independent_mops: bool = True
    #: delete pointers whose MOP tail owns the last-arriving operand
    #: (Section 5.4.2).
    last_arrival_filter: bool = True
    #: maximum instructions per MOP.  The paper evaluates 2 and leaves
    #: larger sizes as future work (Section 4.3); sizes 3..8 are supported
    #: here as that extension, formed by chaining per-instruction pointers
    #: at formation time.
    mop_size: int = 2
    #: pipelined scheduling-loop depth in cycles for the 2-cycle and
    #: macro-op disciplines (the paper's is 2; deeper loops pair with
    #: larger MOP sizes, per the Section 4.3 discussion).
    sched_loop_depth: int = 2

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.rob_size <= 0:
            raise ValueError("rob_size must be positive")
        if self.iq_size is not None and self.iq_size <= 0:
            raise ValueError("iq_size must be positive or None (unrestricted)")
        if self.replay_limit is not None and self.replay_limit < 0:
            raise ValueError("replay_limit must be >= 0 or None (unbounded)")
        if self.extra_mop_stages not in (0, 1, 2):
            raise ValueError("extra_mop_stages must be 0, 1, or 2")
        if not 2 <= self.mop_size <= 8:
            raise ValueError("mop_size must be between 2 (the paper's "
                             "configuration) and 8 (the detection scope)")
        if self.sched_loop_depth < 1:
            raise ValueError("sched_loop_depth must be at least 1")
        # Local import: backend imports pipeline, which imports config.
        from repro.core.backend import BACKEND_NAMES
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose one of "
                f"{', '.join(sorted(BACKEND_NAMES))}")

    def with_backend(self, backend: str) -> "MachineConfig":
        """Return a copy running a different simulation kernel backend."""
        return replace(self, backend=backend)

    # -- derived quantities ------------------------------------------------

    @property
    def uses_macro_ops(self) -> bool:
        return self.scheduler is SchedulerKind.MACRO_OP

    @property
    def assumed_load_latency(self) -> int:
        """Latency the speculative scheduler assumes for loads (agen + DL1
        hit), per Section 2.1."""
        return 1 + self.dl1_latency

    @property
    def effective_frontend_depth(self) -> int:
        """Frontend stages after fetch, including extra MOP stages."""
        extra = self.extra_mop_stages if self.uses_macro_ops else 0
        return self.frontend_depth + extra

    @property
    def mop_scope_ops(self) -> int:
        """Detection scope in operations (2 groups on a 4-wide machine = 8)."""
        return self.mop_scope_groups * self.width

    @property
    def max_mop_sources(self) -> Optional[int]:
        """Merged-source limit a MOP pair must respect (None = unlimited)."""
        if self.wakeup_style is WakeupStyle.CAM_2SRC:
            return 2
        return None

    # -- convenience constructors -------------------------------------------

    @classmethod
    def paper_default(cls, **overrides: Any) -> "MachineConfig":
        """Table 1 configuration (32-entry issue queue)."""
        return cls(**overrides)

    @classmethod
    def unrestricted_queue(cls, **overrides: Any) -> "MachineConfig":
        """Table 1 with the unrestricted issue queue (Figure 14)."""
        overrides.setdefault("iq_size", None)
        return cls(**overrides)

    def with_scheduler(
        self,
        scheduler: SchedulerKind,
        wakeup_style: Optional[WakeupStyle] = None,
    ) -> "MachineConfig":
        """Return a copy running a different scheduling discipline."""
        kwargs = {"scheduler": scheduler}
        if wakeup_style is not None:
            kwargs["wakeup_style"] = wakeup_style
        return replace(self, **kwargs)
