"""Issue-queue entries and occupancy management.

An :class:`IQEntry` is one scheduler-visible unit: a single operation, or a
macro-op holding two operations that share the entry (Section 3.1 — "an
issue queue entry can logically hold multiple original instructions").

Dependence tracking uses producer *entry references* — the in-code
equivalent of the paper's MOP-ID name space (Section 5.2.2): when two
operations are grouped, both of their destination registers map to the one
entry, so consumers of either wake on the entry's single tag broadcast,
exactly as a shared MOP ID would behave in wired-OR wakeup logic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.uop import MOP_HEAD, MOP_TAIL, Uop

# Entry states.
WAITING = 0
READY = 1
ISSUED = 2
DONE = 3


class IQEntry:
    """One issue-queue entry (an instruction or a macro-op)."""

    __slots__ = (
        "eid",
        "seq",
        "uops",
        "src_producers",
        "src_ready",
        "src_ready_cycle",
        "src_is_tail_only",
        "state",
        "pending_tail",
        "pending_expect",
        "issue_cycle",
        "ready_cycle",
        "broadcast_cycle",
        "spec_broadcast_cycle",
        "gen",
        "consumers",
        "is_mop",
        "mop_kind",
        "sched_latency",
        "lockout_until",
        "replay_count",
        "collided",
        "in_ready_heap",
        "backend_slot",
    )

    _next_eid = 0

    def __init__(self, uop: Uop, sched_latency: int) -> None:
        IQEntry._next_eid += 1
        self.eid = IQEntry._next_eid
        self.seq = uop.seq
        self.uops: List[Uop] = [uop]
        uop.entry = self
        # Per-source-operand parallel lists.
        self.src_producers: List[Optional["IQEntry"]] = []
        self.src_ready: List[bool] = []
        self.src_ready_cycle: List[Optional[int]] = []
        self.src_is_tail_only: List[bool] = []
        self.state = WAITING
        self.pending_tail = False
        self.pending_expect: Optional[Tuple] = None
        self.issue_cycle: Optional[int] = None
        self.ready_cycle: Optional[int] = None
        self.broadcast_cycle: Optional[int] = None
        self.spec_broadcast_cycle: Optional[int] = None
        self.gen = 0
        self.consumers: List[Tuple["IQEntry", int]] = []
        self.is_mop = False
        self.mop_kind: Optional[str] = None  # "dependent" | "independent"
        self.sched_latency = sched_latency
        self.lockout_until = 0
        self.replay_count = 0
        self.collided = False
        #: True while this entry sits in the scheduler's ready heap; a
        #: rescind→re-wake cycle must update the existing heap slot's
        #: entry in place rather than push a duplicate (the duplicate
        #: would grow the heap without bound under replay storms).
        self.in_ready_heap = False
        #: index into the vectorized backend's ready-set arrays (None in
        #: the reference backend, which keeps its ready set in a heap).
        self.backend_slot: Optional[int] = None

    # -- structure ----------------------------------------------------------

    @property
    def head(self) -> Uop:
        return self.uops[0]

    @property
    def tail(self) -> Optional[Uop]:
        return self.uops[1] if len(self.uops) > 1 else None

    def add_operand(
        self,
        producer: Optional["IQEntry"],
        ready: bool,
        tail_only: bool,
        ready_cycle: Optional[int] = None,
    ) -> int:
        """Append a source operand; returns its index."""
        self.src_producers.append(producer)
        self.src_ready.append(ready)
        self.src_ready_cycle.append(ready_cycle)
        self.src_is_tail_only.append(tail_only)
        return len(self.src_producers) - 1

    def attach_tail(self, uop: Uop) -> None:
        """Complete a pending macro-op by attaching its tail operation."""
        assert self.pending_tail and self.tail is None
        self.uops.append(uop)
        uop.entry = self
        uop.role = MOP_TAIL
        self.head.role = MOP_HEAD
        self.is_mop = True
        self.pending_tail = False
        self.pending_expect = None

    # -- readiness -----------------------------------------------------------

    def all_sources_ready(self) -> bool:
        return all(self.src_ready) and not self.pending_tail

    def external_source_count(self) -> int:
        return len(self.src_producers)

    def last_arriving_is_tail_only(self) -> bool:
        """True when the operand that triggered issue belongs only to the
        MOP tail — the harmful pattern of Section 5.4.2 (Figure 12)."""
        if not self.is_mop or self.mop_kind != "dependent":
            return False
        cycles = [c for c in self.src_ready_cycle if c is not None]
        if not cycles:
            return False
        last = max(cycles)
        head_last = max(
            (c for c, tail_only in zip(self.src_ready_cycle,
                                       self.src_is_tail_only)
             if c is not None and not tail_only),
            default=-1,
        )
        tail_last = max(
            (c for c, tail_only in zip(self.src_ready_cycle,
                                       self.src_is_tail_only)
             if c is not None and tail_only),
            default=-1,
        )
        return tail_last == last and tail_last > head_last

    def __repr__(self) -> str:
        ops = "+".join(u.inst.mnemonic for u in self.uops)
        return f"IQEntry(eid={self.eid}, seq={self.seq}, {ops}, st={self.state})"


class IssueQueue:
    """Occupancy tracker for the unified issue queue.

    ``capacity=None`` models the paper's unrestricted queue (Figure 14): the
    ROB becomes the only in-flight bound.
    """

    def __init__(self, capacity: Optional[int]) -> None:
        self.capacity = capacity
        self.occupied = 0
        self.entries: set = set()

    def has_space(self, count: int = 1) -> bool:
        if self.capacity is None:
            return True
        return self.occupied + count <= self.capacity

    def allocate(self, entry: IQEntry, force: bool = False) -> None:
        """Claim an entry slot.  ``force`` admits one entry past capacity —
        used only by the macro-op split recovery path, mirroring how a
        hardware split would reuse the squashed tail's payload slot."""
        if not force and not self.has_space():
            raise RuntimeError("issue queue overflow")
        self.entries.add(entry)
        self.occupied += 1

    def release(self, entry: IQEntry) -> None:
        if entry in self.entries:
            self.entries.remove(entry)
            self.occupied -= 1

    def __len__(self) -> int:
        return self.occupied
