"""The out-of-order core: pipeline, issue queue, schedulers.

This package implements the machine model of Section 2: a 13-stage, 4-wide
out-of-order superscalar with speculative scheduling and selective replay,
parameterized by a *scheduling discipline* (base / 2-cycle / macro-op /
select-free) and, for macro-op scheduling, by the wakeup-array style
(CAM-style with two source comparators, or wired-OR dependence vectors).

Public entry points:

* :class:`repro.core.config.MachineConfig` — Table 1 in code form,
* :class:`repro.core.pipeline.Processor` — the timing model,
* :func:`repro.core.pipeline.simulate` — run a trace, get statistics.

``Processor``/``simulate`` are exported lazily: the pipeline imports the
macro-op machinery, which imports this package's config module, and eager
re-export would close that cycle.
"""

from typing import Any

from repro.core.config import MachineConfig, SchedulerKind, WakeupStyle
from repro.core.stats import SimStats

__all__ = [
    "MachineConfig",
    "SchedulerKind",
    "WakeupStyle",
    "Processor",
    "simulate",
    "SimStats",
    "SimulationError",
    "DeadlockError",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "available_backends",
    "get_backend",
]

_BACKEND_EXPORTS = ("BACKEND_NAMES", "BackendUnavailableError",
                    "available_backends", "get_backend")


def __getattr__(name: str) -> Any:
    if name in ("Processor", "simulate", "SimulationError", "DeadlockError"):
        from repro.core import pipeline
        return getattr(pipeline, name)
    if name in _BACKEND_EXPORTS:
        from repro.core import backend
        return getattr(backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
