"""The cycle-level out-of-order pipeline (Figure 2).

The model is event-assisted but cycle-driven: each cycle processes, in
order —

1. **events** due this cycle: execution completions (which also resolve
   branches and free issue-queue entries), load-miss discoveries (which
   trigger the selective-replay rescind/invalidate cascade), and tag
   broadcasts (which wake consumers);
2. **pending-bit timeouts** for macro-op heads whose tails never arrived
   (the trace-driven stand-in for wrong-path tail squash, Section 5.3.2);
3. **select**: oldest-first among ready entries, bounded by issue width,
   functional units, and issue slots still sequencing macro-op tails;
   select-free disciplines additionally detect collisions here;
4. **insert** (the queue stage): macro-op formation directives are executed,
   operands are renamed onto producer entries, and the detection logic
   observes the renamed group;
5. **fetch** into the frontend pipeline;
6. **commit** of completed operations in program order.

Scheduling timing law: an entry selected at cycle *t* makes its consumers
selectable at ``t + discipline.broadcast_offset(sched_latency)`` — the
single function that distinguishes base, 2-cycle, macro-op, and select-free
scheduling (Figure 5).  Execution itself starts ``dispatch_depth`` stages
after select, which fixes branch-resolution and load-miss-discovery timing
without affecting dependent-issue spacing.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

if TYPE_CHECKING:
    # Annotation-only: core must never import repro.trace eagerly
    # (SL002); the event class is loaded lazily in set_trace_sink.
    from repro.trace.sink import TraceSink

from repro.core.config import MachineConfig
from repro.core.frontend import Frontend
from repro.core.issue_queue import (
    DONE,
    ISSUED,
    READY,
    WAITING,
    IQEntry,
    IssueQueue,
)
from repro.core.scheduler import make_discipline
from repro.core.scheduler.base import (
    COLLISION_SCOREBOARD,
    COLLISION_SQUASH,
)
from repro.core.stats import (
    REPLAY_PILEUP,
    REPLAY_RAISE,
    REPLAY_SQUASH,
    SimStats,
)
from repro.core.uop import (
    FU_NONE,
    KIND_CANDIDATE_UNGROUPED,
    KIND_INDEPENDENT_MOP,
    KIND_MOP_NONVALUEGEN,
    KIND_MOP_VALUEGEN,
    KIND_NOT_CANDIDATE,
    MOP_HEAD,
    MOP_TAIL,
    SOLO as ROLE_SOLO,
    Uop,
)
from repro.memory import MemoryHierarchy
from repro.memory.cache import Cache
from repro.mop.formation import (
    ATTACH,
    MOP,
    PENDING,
    SOLO,
    FormationDirective,
    MopFormation,
)
from repro.mop.detection import MopDetector
from repro.mop.pointers import INDEPENDENT, MopPointer, PointerCache
from repro.workloads.trace import Trace

# Event kinds, in same-cycle processing priority order.
EVENT_COMPLETE = 0
EVENT_MISS = 1
EVENT_BROADCAST = 2

#: cycles a pending macro-op head waits for its tail before running solo.
PENDING_TIMEOUT = 2

#: issue-drought length after which the oldest waiting macro-op is split
#: (hang recovery; see _split_stuck_mop).
MOP_SPLIT_TIMEOUT = 200

#: watchdog: abort if nothing commits for this many cycles.
WATCHDOG_CYCLES = 50_000


class SimulationError(RuntimeError):
    """Base class for failures raised by the timing model itself.

    The experiment executor treats these as per-cell failures (the cell is
    marked FAILED and the rest of the grid keeps running) rather than as
    infrastructure faults worth retrying forever.
    """


class DeadlockError(SimulationError):
    """The pipeline stopped making forward progress.

    Carries the cycle the watchdog fired at (``cycle``) and a snapshot of
    the stuck machine state (``pending``).  Both survive pickling — the
    experiment executor ships worker exceptions back across the pool
    boundary, so ``__reduce__`` must rebuild the full payload, not just
    the message string.
    """

    def __init__(self, message: str, cycle: Optional[int] = None,
                 pending: Optional[dict] = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.pending = dict(pending) if pending else {}

    def __reduce__(self) -> Tuple[type, tuple]:
        return (type(self), (self.args[0], self.cycle, self.pending))


class ReplayStormError(SimulationError):
    """One issue-queue entry replayed more than ``config.replay_limit``
    times — the signature of a scheduling livelock.

    Failing fast here (instead of spinning until the deadlock watchdog
    or the executor's per-cell wall-clock timeout fires) turns a silent
    multi-second hang into an immediate, attributable per-cell failure.
    Carries the offending entry's identity so the failure is actionable;
    survives pickling across the executor's pool boundary.
    """

    def __init__(self, message: str, cycle: Optional[int] = None,
                 seq: Optional[int] = None, pc: Optional[int] = None,
                 replays: Optional[int] = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.seq = seq
        self.pc = pc
        self.replays = replays

    def __reduce__(self) -> Tuple[type, tuple]:
        return (type(self), (self.args[0], self.cycle, self.seq,
                             self.pc, self.replays))


#: Macro-op role glyphs carried by trace events.
_ROLE_GLYPHS = {MOP_HEAD: "H", MOP_TAIL: "T", ROLE_SOLO: " "}


class Processor:
    """One simulated machine bound to one trace.

    *sink*, if given, receives one typed :class:`repro.trace.TraceEvent`
    per operation per pipeline stage (see :mod:`repro.trace`).  Without a
    sink the tracing machinery is never imported and every would-be
    emission costs a single attribute check, so untraced runs are
    bit-identical to pre-trace builds.

    This class is simultaneously the ``python`` backend — the golden
    reference every other simulation kernel (see
    :mod:`repro.core.backend`) must match bit for bit.  Subclasses may
    swap the MOP detector implementation via :attr:`detector_cls`.
    """

    #: detection implementation hook (the numpy backend substitutes its
    #: vectorized dependence-matrix detector here).
    detector_cls = MopDetector

    def __init__(self, config: MachineConfig, trace: Trace,
                 sink: Optional["TraceSink"] = None) -> None:
        self.config = config
        self.discipline = make_discipline(config)
        self.stats = SimStats()
        self.hierarchy = self._build_hierarchy(config)
        if config.warm_caches:
            self._warm_instruction_caches(trace)
        self.frontend = Frontend(config, trace, self.hierarchy, self.stats)
        self.iq = IssueQueue(config.iq_size)
        self.rob: deque = deque()
        self.now = 0

        self._events: Dict[int, List[tuple]] = {}
        self._ready_heap: List[Tuple[int, int, IQEntry]] = []
        self._last_writer: Dict[int, Uop] = {}
        self._group_buffer: deque = deque()
        self._insert_queue: deque = deque()
        self._pending_entries: List[IQEntry] = []
        self._pending_deadline: Dict[int, int] = {}

        self._fu_limits = {
            "int_alu": config.int_alu_count,
            "fp_alu": config.fp_alu_count,
            "int_mult": config.int_mult_count,
            "fp_mult": config.fp_mult_count,
            "mem_port": config.mem_port_count,
        }
        # Future-cycle reservations made by multi-op (macro-op) issues:
        # the k-th grouped operation sequences through the same issue slot
        # k cycles later and needs its functional unit then (Section 5.3.1).
        self._fu_reserved_future: Dict[int, Dict[str, int]] = {}
        self._sequencing_future: Dict[int, int] = {}

        if self.discipline.uses_macro_ops:
            self.pointers = PointerCache(config.mop_detection_delay)
            self.formation = MopFormation(config, self.pointers)
            self.detector = self.detector_cls(config, self.pointers)
        else:
            self.pointers = None
            self.formation = None
            self.detector = None

        self._last_commit_cycle = 0
        self._last_issue_cycle = 0

        self._occ_hist: Dict[int, int] = {}
        self._sink = None
        self._event_cls = None
        # Entry ids are allocated from a process-global counter; record
        # its value now so emitted eids are run-relative (serial and
        # parallel executions of the same cell trace identically).
        self._eid_base = IQEntry._next_eid
        if sink is not None:
            self.set_trace_sink(sink)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def set_trace_sink(self, sink: Optional["TraceSink"]) -> None:
        """Attach (or, with None, detach) a trace sink.

        The event class is imported lazily right here, so a processor
        that never traces never imports :mod:`repro.trace` at all.
        """
        if sink is not None and self._event_cls is None:
            from repro.trace.events import TraceEvent
            self._event_cls = TraceEvent
        self._sink = sink

    def _emit(self, kind: str, uop: Uop, cycle: int,
              cause: Optional[str] = None) -> None:
        """Emit one stage event (callers guard on ``self._sink``)."""
        entry = uop.entry
        self._sink.emit(self._event_cls(
            cycle=cycle,
            kind=kind,
            seq=uop.seq,
            pc=uop.inst.pc,
            mnemonic=uop.inst.mnemonic,
            role=_ROLE_GLYPHS.get(uop.role, " "),
            eid=entry.eid - self._eid_base if entry is not None else None,
            cause=cause,
        ))

    def _emit_entry(self, kind: str, entry: IQEntry, cycle: int,
                    cause: Optional[str] = None) -> None:
        for uop in entry.uops:
            self._emit(kind, uop, cycle, cause)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _warm_instruction_caches(self, trace: Trace) -> None:
        """Install every trace PC's line in IL1/L2 (post-fast-forward
        state); compulsory instruction misses would otherwise dominate
        short trace samples."""
        seen = set()
        for op in trace.ops:
            if op.pc not in seen:
                seen.add(op.pc)
                addr = op.pc * 4
                self.hierarchy.l2.access(addr)
                self.hierarchy.il1.access(addr)

    @staticmethod
    def _build_hierarchy(config: MachineConfig) -> MemoryHierarchy:
        return MemoryHierarchy(
            il1=Cache("IL1", config.il1_size, config.il1_assoc,
                      config.il1_line, config.il1_latency),
            dl1=Cache("DL1", config.dl1_size, config.dl1_assoc,
                      config.dl1_line, config.dl1_latency),
            l2=Cache("L2", config.l2_size, config.l2_assoc,
                     config.l2_line, config.l2_latency),
            memory_latency=config.memory_latency,
        )

    # ------------------------------------------------------------------
    # Top-level run loop
    # ------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate until the trace drains (or *max_cycles*)."""
        while not self._finished():
            self._cycle()
            if max_cycles is not None and self.now >= max_cycles:
                break
            if self.now - self._last_commit_cycle > WATCHDOG_CYCLES:
                raise DeadlockError(
                    f"no commit for {WATCHDOG_CYCLES} cycles at cycle "
                    f"{self.now}; rob={len(self.rob)} iq={len(self.iq)} "
                    f"head={self.rob[0] if self.rob else None}",
                    cycle=self.now,
                    pending={
                        "rob": len(self.rob),
                        "iq": len(self.iq),
                        "last_commit_cycle": self._last_commit_cycle,
                        "head": repr(self.rob[0]) if self.rob else None,
                    },
                )
        self.stats.cycles = self.now
        self.stats.iq_occupancy_hist = {
            str(occ): cycles
            for occ, cycles in sorted(self._occ_hist.items())
        }
        return self.stats

    def _finished(self) -> bool:
        return (self.frontend.exhausted
                and not self.frontend.waiting_branch
                and not self._group_buffer
                and not self._insert_queue
                and not self.rob)

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------

    def _cycle(self) -> None:
        self.now += 1
        now = self.now

        occ = self.iq.occupied
        self._occ_hist[occ] = self._occ_hist.get(occ, 0) + 1

        fu_avail = dict(self._fu_limits)
        for fu, count in self._fu_reserved_future.pop(now, {}).items():
            fu_avail[fu] = fu_avail.get(fu, 0) - count
        slots = self.config.width - self._sequencing_future.pop(now, 0)

        for event in sorted(self._events.pop(now, []), key=lambda e: e[0]):
            kind = event[0]
            if kind == EVENT_COMPLETE:
                self._on_complete(event[1], event[2])
            elif kind == EVENT_MISS:
                self._on_load_miss(event[1], event[2], event[3])
            else:
                self._on_broadcast(event[1], event[2])

        self._expire_pending(now)
        if (now - self._last_issue_cycle > MOP_SPLIT_TIMEOUT
                and len(self.iq)):
            self._split_stuck_mop(now)
        self._select(now, slots, fu_avail)
        self._insert(now)
        self._fetch(now)
        self._commit(now)

    def _push_event(self, cycle: int, event: tuple) -> None:
        self._events.setdefault(cycle, []).append(event)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def _on_complete(self, entry: IQEntry, gen: int) -> None:
        if entry.gen != gen or entry.state != ISSUED:
            return
        entry.state = DONE
        self.iq.release(entry)
        for uop in entry.uops:
            uop.completed = True
            uop.completion_cycle = self.now
            if uop.inst.is_branch:
                self.frontend.on_branch_resolved(uop, self.now)
        if self._sink is not None:
            self._emit_entry("writeback", entry, self.now)

    def _on_load_miss(self, entry: IQEntry, gen: int, new_bt: int) -> None:
        """DL1 miss discovered: reschedule the broadcast, replay the shadow."""
        if entry.gen != gen or entry.state != ISSUED:
            return
        entry.broadcast_cycle = new_bt
        self._push_event(new_bt, (EVENT_BROADCAST, entry, new_bt))
        self._rescind(entry, self.now, REPLAY_RAISE)

    def _on_broadcast(self, entry: IQEntry, bt: int) -> None:
        if entry.broadcast_cycle != bt:
            return  # rescinded or rescheduled
        for consumer, idx in entry.consumers:
            if consumer.src_producers[idx] is not entry:
                continue
            if consumer.src_ready[idx]:
                continue
            consumer.src_ready[idx] = True
            consumer.src_ready_cycle[idx] = bt
            if (consumer.state == WAITING
                    and consumer.all_sources_ready()):
                self._make_ready(consumer, self.now)

    # ------------------------------------------------------------------
    # Selective replay (Section 2.1)
    # ------------------------------------------------------------------

    def _rescind(self, entry: IQEntry, now: int, cause: str) -> None:
        """Un-wake every consumer woken by *entry*'s premature broadcast.

        *cause* attributes any replay this rescind triggers: ``raise``
        when the originating broadcast was a load's re-raised miss,
        ``squash`` when it cascades from another entry's invalidation.
        """
        for consumer, idx in entry.consumers:
            if consumer.src_producers[idx] is not entry:
                continue
            if not consumer.src_ready[idx]:
                continue
            consumer.src_ready[idx] = False
            consumer.src_ready_cycle[idx] = None
            if consumer.state == READY:
                consumer.state = WAITING
                self._drop_ready(consumer)
                if self._sink is not None:
                    self._emit_entry("squash", consumer, now, cause)
            elif consumer.state == ISSUED:
                self._invalidate(consumer, now, cause)

    def _invalidate(self, entry: IQEntry, now: int, cause: str) -> None:
        """Selectively invalidate an issued entry; it will replay."""
        if entry.state != ISSUED:
            return
        entry.gen += 1                      # cancels in-flight events
        entry.state = WAITING
        entry.issue_cycle = None
        entry.lockout_until = max(entry.lockout_until,
                                  now + self.config.replay_penalty)
        self._note_replay(entry, now, cause)
        entry.broadcast_cycle = None        # its own broadcast was premature
        self._rescind(entry, now, REPLAY_SQUASH)
        if entry.all_sources_ready():
            # Only the replay lockout delays it (e.g. scoreboard pileups).
            self._make_ready(entry, now)

    def _note_replay(self, entry: IQEntry, now: int, cause: str) -> None:
        """Count one replay of *entry*, attribute its cause, and enforce
        the replay-storm bound."""
        entry.replay_count += 1
        ops = len(entry.uops)
        stats = self.stats
        stats.replayed_ops += ops
        if cause == REPLAY_PILEUP:
            stats.replay_pileup += ops
        elif cause == REPLAY_RAISE:
            stats.replay_raise += ops
        else:
            stats.replay_squash += ops
        if entry.replay_count > stats.max_replays_seen:
            stats.max_replays_seen = entry.replay_count
        if self._sink is not None:
            self._emit_entry("replay", entry, now, cause)
        limit = self.config.replay_limit
        if limit is not None and entry.replay_count > limit:
            head = entry.head
            raise ReplayStormError(
                f"entry seq={entry.seq} ({head.inst.mnemonic} @pc="
                f"{head.inst.pc:#x}) replayed {entry.replay_count} times "
                f"(> replay_limit={limit}) at cycle {now}; last cause "
                f"{cause!r}",
                cycle=now, seq=entry.seq, pc=head.inst.pc,
                replays=entry.replay_count,
            )

    # ------------------------------------------------------------------
    # Readiness and select
    # ------------------------------------------------------------------

    def _make_ready(
        self,
        entry: IQEntry,
        now: int,
        earliest_select: Optional[int] = None,
    ) -> None:
        entry.state = READY
        entry.ready_cycle = earliest_select if earliest_select is not None \
            else now
        if self._sink is not None:
            self._emit_entry("wakeup", entry, entry.ready_cycle)
        # An entry rescinded while READY stays physically in the heap
        # (as a stale WAITING pop-and-drop); re-waking it must not push
        # a second copy — duplicates grow the heap without bound under
        # replay storms and double every select scan.
        if not entry.in_ready_heap:
            entry.in_ready_heap = True
            heapq.heappush(self._ready_heap, (entry.seq, entry.eid, entry))
        if self.discipline.speculative_wakeup:
            bt = entry.ready_cycle + self.discipline.broadcast_offset(
                entry.sched_latency)
            entry.broadcast_cycle = bt
            entry.spec_broadcast_cycle = bt
            self._push_event(bt, (EVENT_BROADCAST, entry, bt))

    def _select(self, now: int, slots: int, fu_avail: Dict[str, int]) -> None:
        heap = self._ready_heap
        requeue: List[IQEntry] = []
        while slots > 0 and heap:
            _seq, _eid, entry = heapq.heappop(heap)
            entry.in_ready_heap = False
            if entry.state != READY or entry.pending_tail:
                continue
            if entry.ready_cycle > now or entry.lockout_until > now:
                requeue.append(entry)
                continue
            fu = entry.head.fu_class
            if fu != FU_NONE and fu_avail.get(fu, 0) <= 0:
                requeue.append(entry)
                continue
            if (self.discipline.collision_mode == COLLISION_SCOREBOARD
                    and not self._operands_truly_ready(entry, now)):
                # Pileup victim: burns the issue slot, then replays —
                # Section 6.5's semantics (pileup victims consume real
                # issue bandwidth, unlike squash-dep collisions).
                slots -= 1
                self.stats.pileup_victims += 1
                self._pileup_replay(entry, now)
                continue
            self._issue(entry, now, fu_avail)
            slots -= 1
        for entry in requeue:
            # Re-heaped under the same (seq, eid) key, so deferred
            # entries keep their oldest-first priority next cycle.
            entry.in_ready_heap = True
            heapq.heappush(heap, (entry.seq, entry.eid, entry))
        if self.discipline.speculative_wakeup:
            self._handle_collisions(now)

    def _operands_truly_ready(self, entry: IQEntry, now: int) -> bool:
        """Scoreboard check: did every producer really deliver by now?"""
        offset = self.discipline.broadcast_offset
        for idx, producer in enumerate(entry.src_producers):
            if producer is None or producer.state == DONE:
                continue
            if producer.state != ISSUED:
                return False
            if producer.issue_cycle is None:
                return False
            if producer.issue_cycle + offset(producer.sched_latency) > now:
                return False
        return True

    def _pileup_replay(self, entry: IQEntry, now: int) -> None:
        """A scoreboard pileup victim: reset and wait for real broadcasts.

        The scoreboard sits in the register-file stage, so the victim has
        already traversed dispatch before the missing operand is noticed —
        it holds its resources for ``dispatch_depth`` cycles and then pays
        the replay penalty, which is what makes this configuration lose
        noticeably more than squash-dep (Section 6.5).
        """
        offset = self.discipline.broadcast_offset
        entry.state = WAITING
        self._drop_ready(entry)
        entry.lockout_until = max(entry.lockout_until,
                                  now + self.config.dispatch_depth)
        self._note_replay(entry, now, REPLAY_PILEUP)
        for idx, producer in enumerate(entry.src_producers):
            if producer is None or producer.state == DONE:
                continue
            issued_in_time = (
                producer.state == ISSUED
                and producer.issue_cycle is not None
                and producer.issue_cycle + offset(producer.sched_latency)
                <= now
            )
            if not issued_in_time:
                entry.src_ready[idx] = False
                entry.src_ready_cycle[idx] = None

    def _drop_ready(self, entry: IQEntry) -> None:
        """Hook: *entry* just left READY without being popped by select.

        The heap tolerates the stale occupant (it is dropped on pop), so
        the reference does nothing; backends keeping an eagerly-maintained
        ready set override this to reclaim the entry's slot.
        """

    def _handle_collisions(self, now: int) -> None:
        """Select-free: entries ready this cycle but not selected.

        Iterated in (seq, eid) order — not raw heap order — so the squash
        events the collision pass emits appear in a canonical order that
        any backend's ready-set representation can reproduce exactly.
        """
        for _seq, _eid, entry in sorted(self._ready_heap):
            if (entry.state != READY or entry.pending_tail
                    or entry.ready_cycle > now
                    or entry.lockout_until > now):
                continue
            self._collide(entry, now)

    def _collide(self, entry: IQEntry, now: int) -> None:
        """Record one select collision on a ready-but-unselected entry."""
        if entry.collided:
            return
        entry.collided = True
        self.stats.select_collisions += 1
        if self.discipline.collision_mode == COLLISION_SQUASH:
            # Rescind the speculative broadcast before any dependent
            # can issue: no pileup victims exist in this configuration.
            entry.broadcast_cycle = None
            entry.spec_broadcast_cycle = None
            if self._sink is not None:
                self._emit_entry("squash", entry, now, REPLAY_SQUASH)

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def _issue(self, entry: IQEntry, now: int,
               fu_avail: Dict[str, int]) -> None:
        entry.state = ISSUED
        entry.issue_cycle = now
        entry.gen += 1
        gen = entry.gen
        self.stats.issued_entries += 1
        self.stats.issued_ops += len(entry.uops)
        self.stats.wakeup_to_select_cycles += now - entry.ready_cycle
        self.stats.wakeup_to_select_count += 1
        self._last_issue_cycle = now
        if self._sink is not None:
            # All MOP members leave the queue together; the tails then
            # sequence through execution k cycles behind the head.
            self._emit_entry("select", entry, now)
            self._emit_entry("issue", entry, now)
            dispatch = self.config.dispatch_depth
            for k, member in enumerate(entry.uops):
                self._emit("exec", member, now + dispatch + k)

        head = entry.head
        if head.fu_class != FU_NONE:
            fu_avail[head.fu_class] -= 1
        for k, member in enumerate(entry.uops[1:], start=1):
            # Each grouped tail sequences through the same issue slot k
            # cycles later (Section 5.3.1): reserve its FU and the slot.
            if member.fu_class != FU_NONE:
                reserved = self._fu_reserved_future.setdefault(now + k, {})
                reserved[member.fu_class] = (
                    reserved.get(member.fu_class, 0) + 1)
            self._sequencing_future[now + k] = (
                self._sequencing_future.get(now + k, 0) + 1)

        self._schedule_broadcast(entry, now)
        self._apply_last_arrival_filter(entry)

        dispatch = self.config.dispatch_depth
        if head.inst.is_load:
            latency, level = self.hierarchy.load_latency(
                head.inst.mem_addr, head.inst.mem_hint)
            self.stats.loads += 1
            if level >= 1:
                self.stats.dl1_load_misses += 1
            if level >= 2:
                self.stats.l2_load_misses += 1
            completion = now + dispatch + 1 + latency
            if latency > self.config.dl1_latency:
                discovery = now + dispatch + self.config.assumed_load_latency
                new_bt = now + 1 + latency
                self._push_event(discovery,
                                 (EVENT_MISS, entry, gen, new_bt))
        else:
            completion = max(
                now + dispatch + k + member.inst.latency
                for k, member in enumerate(entry.uops)
            )
        self._push_event(completion, (EVENT_COMPLETE, entry, gen))

    def _schedule_broadcast(self, entry: IQEntry, now: int) -> None:
        offset = self.discipline.broadcast_offset(entry.sched_latency)
        bt = now + offset
        if self.discipline.speculative_wakeup:
            if entry.collided:
                if self.discipline.collision_mode == COLLISION_SQUASH:
                    bt += self.discipline.squash_rewakeup_penalty
                entry.collided = False
            if entry.broadcast_cycle == bt:
                return  # the speculative broadcast already stands
        entry.broadcast_cycle = bt
        self._push_event(bt, (EVENT_BROADCAST, entry, bt))

    def _apply_last_arrival_filter(self, entry: IQEntry) -> None:
        if (self.pointers is None
                or not self.config.last_arrival_filter
                or not entry.is_mop
                or entry.mop_kind != "dependent"):
            return
        if entry.last_arriving_is_tail_only():
            self.pointers.delete(entry.head.inst.pc)
            self.stats.mop_pointers_deleted += 1

    # ------------------------------------------------------------------
    # Insert (queue stage) and macro-op formation
    # ------------------------------------------------------------------

    def _insert(self, now: int) -> None:
        while self._group_buffer and self._group_buffer[0][0] <= now:
            _ready, group = self._group_buffer.popleft()
            if self.formation is not None:
                directives = self.formation.process_group(group, now)
                for head in self.formation.last_abandoned:
                    self._abandon_pending(head)
                self._tag_directives(directives)
                self.detector.observe_group(group, now)
                self.stats.mop_pointers_created = self.pointers.created
            else:
                directives = [FormationDirective(verb=SOLO, uop=uop)
                              for uop in group]
            self._insert_queue.extend(directives)

        inserted_ops = 0
        while self._insert_queue and inserted_ops < self.config.width:
            directive = self._insert_queue[0]
            cost = self._directive_cost(directive)
            if len(self.rob) + cost["rob"] > self.config.rob_size:
                self.stats.rob_full_stall_cycles += 1
                break
            if cost["iq"] and not self.iq.has_space(cost["iq"]):
                self.stats.iq_full_stall_cycles += 1
                break
            self._insert_queue.popleft()
            inserted_ops += self._execute_directive(directive, now)

    @staticmethod
    def _directive_cost(directive: FormationDirective) -> Dict[str, int]:
        if directive.verb == MOP:
            return {"iq": 1, "rob": 2 + len(directive.extra_tails)}
        if directive.verb == ATTACH:
            # Worst case: the pending entry timed out and the tail needs
            # its own entry.
            return {"iq": 1, "rob": 1}
        return {"iq": 1, "rob": 1}

    def _tag_directives(
            self, directives: Iterable[FormationDirective]) -> None:
        """Set macro-op roles and Figure 13 categories at formation time."""
        for directive in directives:
            if directive.verb == MOP:
                head, tail = directive.uop, directive.tail
                head.role, tail.role = MOP_HEAD, MOP_TAIL
                kind = directive.pointer.kind
                head.group_kind = self._group_kind(head, kind)
                tail.group_kind = self._group_kind(tail, kind)
                for extra in directive.extra_tails:
                    extra.role = MOP_TAIL
                    extra.group_kind = self._group_kind(extra, kind)
            elif directive.verb == PENDING:
                directive.uop.role = MOP_HEAD
                directive.uop.group_kind = self._group_kind(
                    directive.uop, directive.pointer.kind)
            elif directive.verb == ATTACH:
                directive.uop.role = MOP_TAIL
                directive.uop.group_kind = self._group_kind(
                    directive.uop, directive.pointer.kind)

    @staticmethod
    def _group_kind(uop: Uop, pointer_kind: str) -> str:
        if pointer_kind == INDEPENDENT:
            return KIND_INDEPENDENT_MOP
        if uop.inst.is_valuegen_candidate:
            return KIND_MOP_VALUEGEN
        return KIND_MOP_NONVALUEGEN

    def _execute_directive(self, directive: FormationDirective,
                           now: int) -> int:
        verb = directive.verb
        if verb == SOLO:
            self._insert_solo(directive.uop, now)
            return 1
        if verb == MOP:
            self._insert_mop(directive.uop, directive.tail,
                             directive.pointer, now,
                             extras=directive.extra_tails)
            return 2 + len(directive.extra_tails)
        if verb == PENDING:
            self._insert_pending(directive.uop, directive.pointer, now)
            return 1
        if verb == ATTACH:
            self._attach_tail(directive, now)
            return 1
        raise ValueError(f"unknown directive verb {verb!r}")

    def _sched_latency_for(self, uop: Uop) -> int:
        if uop.inst.is_load:
            return self.config.assumed_load_latency
        return uop.inst.latency

    def _insert_solo(self, uop: Uop, now: int) -> None:
        if uop.group_kind is None:
            uop.group_kind = (KIND_CANDIDATE_UNGROUPED
                              if uop.inst.is_mop_candidate
                              else KIND_NOT_CANDIDATE)
        entry = IQEntry(uop, self._sched_latency_for(uop))
        self._register_sources(entry, uop, tail_only=False, now=now)
        self._finish_insert(entry, uop, now)
        if entry.all_sources_ready():
            self._make_ready(entry, now, earliest_select=now + 1)

    def _insert_mop(self, head: Uop, tail: Uop, pointer: MopPointer,
                    now: int, extras: Sequence[Uop] = ()) -> None:
        members = [tail, *extras]
        entry = IQEntry(head, sched_latency=max(2, 1 + len(members)))
        entry.is_mop = True
        entry.mop_kind = pointer.kind
        for member in members:
            entry.uops.append(member)
            member.entry = entry
        self.stats.mops_formed += 1
        self._register_sources(entry, head, tail_only=False, now=now)
        self._finish_insert(entry, head, now)
        for member in members:
            self._register_sources(entry, member, tail_only=True, now=now)
            self._record_writer(member)
            self.rob.append(member)
        if entry.all_sources_ready():
            self._make_ready(entry, now, earliest_select=now + 1)

    def _insert_pending(self, head: Uop, pointer: MopPointer,
                        now: int) -> None:
        entry = IQEntry(head, sched_latency=2)
        entry.is_mop = True
        entry.mop_kind = pointer.kind
        entry.pending_tail = True
        self.stats.mop_pending_heads += 1
        self._register_sources(entry, head, tail_only=False, now=now)
        self._finish_insert(entry, head, now)
        self._pending_entries.append(entry)
        self._pending_deadline[entry.eid] = now + PENDING_TIMEOUT

    def _attach_tail(self, directive: FormationDirective,
                     now: int) -> None:
        head = directive.head_uop
        tail = directive.uop
        entry = head.entry
        if entry is None or not entry.pending_tail or entry.state == DONE:
            # Pending timed out (tail squash model): the tail runs solo.
            tail.role = ROLE_SOLO
            tail.group_kind = None
            self._insert_solo(tail, now)
            return
        entry.attach_tail(tail)
        self.stats.mops_formed += 1
        self.stats.iq_insert_ops += 1
        if self._sink is not None:
            self._emit("insert", tail, now)
        self._register_sources(entry, tail, tail_only=True, now=now)
        self._record_writer(tail)
        self.rob.append(tail)
        if entry.all_sources_ready():
            self._make_ready(entry, now, earliest_select=now + 1)

    def _abandon_pending(self, head: Uop) -> None:
        """A pending head's tail will never arrive: run it solo."""
        entry = head.entry
        if entry is None or not entry.pending_tail:
            return
        entry.pending_tail = False
        entry.is_mop = False
        entry.mop_kind = None
        head.role = ROLE_SOLO
        head.group_kind = (KIND_CANDIDATE_UNGROUPED
                           if head.inst.is_mop_candidate
                           else KIND_NOT_CANDIDATE)
        self.stats.mop_pending_abandoned += 1
        if entry.state == WAITING and entry.all_sources_ready():
            self._make_ready(entry, self.now)

    def _split_stuck_mop(self, now: int) -> None:
        """Hang recovery: split the oldest waiting macro-op.

        MOP pointers are PC-indexed and validated by detection on the path
        it observed; formation re-checks the Figure 8(c) heuristic on the
        current path, but a *pair* of stale pointers can still, in rare
        path-divergent corners, close a dependence cycle across two MOPs.
        A real machine needs (and the paper's Section 5.3.2 tail-squash
        machinery provides) a way to decompose a group: the head's
        tail-only operands are forced ready and the tail becomes its own
        entry with its original producers.  We trigger that decomposition
        whenever nothing has issued for a long stretch.
        """
        candidates = [entry for entry in self.iq.entries
                      if entry.state == WAITING and entry.is_mop
                      and entry.tail is not None]
        if not candidates:
            return
        entry = min(candidates, key=lambda e: e.seq)
        tail = entry.uops.pop()
        head = entry.head
        head.role = ROLE_SOLO
        entry.is_mop = False
        entry.mop_kind = None
        new_entry = IQEntry(tail, self._sched_latency_for(tail))
        tail.role = ROLE_SOLO
        tail.entry = new_entry
        # Move the tail-only operands: force them ready on the old entry
        # (the paper's squash behaviour) and re-register them, with their
        # original producers, on the tail's new entry.
        for idx, producer in enumerate(entry.src_producers):
            if not entry.src_is_tail_only[idx]:
                continue
            if not entry.src_ready[idx]:
                new_idx = new_entry.add_operand(
                    producer,
                    ready=False,
                    tail_only=False,
                )
                if producer is not None:
                    producer.consumers.append((new_entry, new_idx))
            entry.src_ready[idx] = True
        self.iq.allocate(new_entry, force=True)
        self.stats.iq_inserts += 1
        if entry.state == WAITING and entry.all_sources_ready():
            self._make_ready(entry, now)
        if new_entry.all_sources_ready():
            self._make_ready(new_entry, now)

    def _expire_pending(self, now: int) -> None:
        if not self._pending_entries:
            return
        survivors = []
        for entry in self._pending_entries:
            if not entry.pending_tail:
                self._pending_deadline.pop(entry.eid, None)
                continue
            if now >= self._pending_deadline.get(entry.eid, now):
                self._abandon_pending(entry.head)
                self._pending_deadline.pop(entry.eid, None)
            else:
                survivors.append(entry)
        self._pending_entries = survivors

    # -- operand plumbing ----------------------------------------------------

    def _register_sources(self, entry: IQEntry, uop: Uop,
                          tail_only: bool, now: int) -> None:
        for src in uop.inst.srcs:
            producer_uop = self._last_writer.get(src)
            if producer_uop is None:
                continue  # architectural value ready since before the window
            producer = producer_uop.entry
            if producer is None or producer is entry:
                continue  # intra-MOP dependence: no tag needed
            if producer.state == DONE:
                continue
            ready = (producer.broadcast_cycle is not None
                     and producer.broadcast_cycle <= now)
            idx = entry.add_operand(
                producer,
                ready=ready,
                tail_only=tail_only,
                ready_cycle=producer.broadcast_cycle if ready else None,
            )
            producer.consumers.append((entry, idx))

    def _finish_insert(self, entry: IQEntry, head: Uop, now: int) -> None:
        self._record_writer(head)
        self.rob.append(head)
        self.iq.allocate(entry)
        self.stats.iq_inserts += 1
        # entry.uops already holds every MOP member at this point, so this
        # counts the ops this entry carries into the queue (solo: 1).
        self.stats.iq_insert_ops += len(entry.uops)
        if self._sink is not None:
            self._emit_entry("insert", entry, now)

    def _record_writer(self, uop: Uop) -> None:
        dest = uop.inst.dest
        if dest is not None:
            self._last_writer[dest] = uop

    # ------------------------------------------------------------------
    # Fetch and commit
    # ------------------------------------------------------------------

    def _fetch(self, now: int) -> None:
        if len(self._group_buffer) >= self.config.effective_frontend_depth + 4:
            return
        group = self.frontend.fetch_group(now)
        if group:
            self.stats.fetched_ops += len(group)
            if self._sink is not None:
                for uop in group:
                    self._emit("fetch", uop, uop.fetch_cycle)
            ready = now + self.config.effective_frontend_depth
            self._group_buffer.append((ready, group))

    def _commit(self, now: int) -> None:
        committed = 0
        while self.rob and committed < self.config.width:
            uop = self.rob[0]
            if not uop.completed:
                break
            self.rob.popleft()
            committed += 1
            self.stats.committed_ops += 1
            if self._sink is not None:
                self._emit("commit", uop, now)
            inst = uop.inst
            if inst.counts_as_inst:
                self.stats.committed_insts += 1
                kind = uop.group_kind or (
                    KIND_CANDIDATE_UNGROUPED if inst.is_mop_candidate
                    else KIND_NOT_CANDIDATE)
                setattr(self.stats, kind, getattr(self.stats, kind) + 1)
            if inst.is_store_data:
                self.hierarchy.store_commit(inst.mem_addr)
            self._last_commit_cycle = now


def simulate(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    max_cycles: Optional[int] = None,
    sink: Optional["TraceSink"] = None,
) -> SimStats:
    """Run *trace* through a :class:`Processor` and return its statistics.

    *sink* is an optional :class:`~repro.trace.sink.TraceSink` receiving
    per-operation stage events; leaving it ``None`` (the default) keeps
    the run on the untraced fast path.
    """
    if config is None:
        config = MachineConfig.paper_default()
    # Late import: repro.core.backend imports this module for the
    # python (reference) backend's processor class.
    from repro.core.backend import get_backend
    processor_cls = get_backend(config.backend).processor_class()
    processor = processor_cls(config, trace, sink=sink)
    return processor.run(max_cycles=max_cycles)
