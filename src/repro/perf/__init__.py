"""Continuous performance tracking: profiles, degradation gating, reports.

The ``repro perf`` subsystem (perun-style, see ROADMAP):

* ``repro perf run`` (:mod:`repro.perf.collector`) measures the
  benchmark grid and writes a schema-versioned ``BENCH_<sha>.json``
  profile (:mod:`repro.perf.schema`, :mod:`repro.perf.baseline`);
* ``repro perf check`` (:mod:`repro.perf.detect`) compares a candidate
  profile against the stored baseline with a nonparametric rank test
  for timing metrics and exact-match gating for deterministic counters,
  failing CI on regressions;
* ``repro perf report`` (:mod:`repro.perf.report`) renders the recorded
  trajectory as a markdown table for EXPERIMENTS.md.

This package is measurement-layer code: it may read wall clocks (and is
exempt from simlint's SL007 for exactly that reason), but it must never
be imported by the simulation model — simlint's SL002 layering rule and
the bench harness's no-trace-import guard keep the dependency arrow
pointing here, not from here.
"""

from repro.perf.baseline import (
    DEFAULT_BASELINE,
    baseline_path,
    discover_profiles,
    load_profiles,
    profile_filename,
    profile_path,
    save_profile,
)
from repro.perf.collector import (
    DETERMINISTIC_COUNTERS,
    PERF_TARGETS,
    CollectionError,
    PerfTarget,
    collect_profile,
    current_sha,
)
from repro.perf.detect import (
    DEFAULT_ALPHA,
    DEFAULT_THRESHOLD,
    DegradationReport,
    MetricCheck,
    check_profiles,
    rank_sum_p,
)
from repro.perf.report import render_trajectory
from repro.perf.schema import (
    PERF_SCHEMA,
    BaselineMissingError,
    PerfProfile,
    ProfileError,
    SchemaMismatchError,
    TargetProfile,
)
from repro.perf.session import (
    TIMINGS_SCHEMA,
    bench_timings_payload,
    session_counters,
    write_bench_timings,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
    "DETERMINISTIC_COUNTERS",
    "PERF_SCHEMA",
    "PERF_TARGETS",
    "TIMINGS_SCHEMA",
    "BaselineMissingError",
    "CollectionError",
    "DegradationReport",
    "MetricCheck",
    "PerfProfile",
    "PerfTarget",
    "ProfileError",
    "SchemaMismatchError",
    "TargetProfile",
    "baseline_path",
    "bench_timings_payload",
    "check_profiles",
    "collect_profile",
    "current_sha",
    "discover_profiles",
    "load_profiles",
    "profile_filename",
    "profile_path",
    "rank_sum_p",
    "render_trajectory",
    "save_profile",
    "session_counters",
    "write_bench_timings",
]
