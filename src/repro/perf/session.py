"""Machine-readable bench-session timings (``benchmarks/results/timings.json``).

The pytest bench harness used to archive only the rendered tables
(``results/*.txt``); this module gives it a structured counterpart the
perf tooling and CI can consume.  The payload is assembled from a
**post-session** snapshot of the executor's counters: the bench
``conftest`` calls :func:`write_bench_timings` from its fixture
finalizer, *after* every bench target has run, so cache hit counts and
wall-clock totals reflect the whole session rather than whatever state
the executor happened to have at fixture setup (the stale-snapshot bug
this module replaced printed 0 cache hits under ``REPRO_BENCH_CACHE=1``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.executor import Executor

#: Bump when the timings payload layout changes.
TIMINGS_SCHEMA = 1


def session_counters(executor: Executor) -> Dict[str, Any]:
    """Live snapshot of *executor*'s session counters.

    Must be called after the work being reported on has finished — the
    numbers are read from the executor (and its cache) at call time.
    """
    counters = executor.counters()
    counters["per_cell_seconds"] = dict(
        executor.total_summary.cell_seconds)
    return counters


def bench_timings_payload(executor: Executor,
                          durations: Optional[Dict[str, float]] = None,
                          meta: Optional[Dict[str, Any]] = None
                          ) -> Dict[str, Any]:
    """The ``timings.json`` document for one bench session.

    ``durations`` maps bench test id -> wall seconds (pytest's call-phase
    duration); ``meta`` carries the harness knobs (insts, jobs, cache).
    """
    payload: Dict[str, Any] = {
        "schema": TIMINGS_SCHEMA,
        "kind": "repro-bench-timings",
        "meta": dict(meta or {}),
        "targets": dict(durations or {}),
        "executor": session_counters(executor),
    }
    return payload


def write_bench_timings(path: os.PathLike, executor: Executor,
                        durations: Optional[Dict[str, float]] = None,
                        meta: Optional[Dict[str, Any]] = None) -> Path:
    """Write the session timings document to *path* (atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = bench_timings_payload(executor, durations, meta)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    tmp.replace(path)
    return path
