"""The per-version profile store: ``BENCH_<sha>.json`` files at the
repo root.

Perun-style discipline: every recorded profile is one file, named by the
short git SHA it measured, committed next to the code so the trajectory
travels with the history.  ``BENCH_baseline.json`` is the distinguished
profile CI gates against; promoting a new baseline is a deliberate
``cp BENCH_<sha>.json BENCH_baseline.json`` in a reviewed commit, never
something the tooling does implicitly.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional

from repro.perf.schema import PerfProfile, ProfileError

#: The profile CI compares against.
DEFAULT_BASELINE = "BENCH_baseline.json"

#: Matches every stored profile, baseline included.
_PROFILE_RE = re.compile(r"^BENCH_[A-Za-z0-9._-]+\.json$")


def profile_filename(sha: str) -> str:
    """Filesystem-safe ``BENCH_<sha>.json`` name for *sha*."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in sha)
    return f"BENCH_{safe or 'local'}.json"


def profile_path(root: Path, sha: str) -> Path:
    return Path(root) / profile_filename(sha)


def baseline_path(root: Path) -> Path:
    return Path(root) / DEFAULT_BASELINE


def discover_profiles(root: Path, search_up: bool = False) -> List[Path]:
    """Every ``BENCH_*.json`` under *root* (not recursive), sorted by
    name so the listing is stable; load order for the trajectory is by
    recorded timestamp, not filename.

    With *search_up*, an empty *root* falls back to the nearest ancestor
    directory that holds profiles.  ``repro perf report`` uses this so
    the trajectory is rooted at the committed ``BENCH_baseline.json``
    even when invoked from a subdirectory of the repo — a baseline-only
    checkout must render one row, never an empty report.
    """
    root = Path(root)
    candidates = [root]
    if search_up:
        candidates += list(root.resolve().parents)
    for directory in candidates:
        if not directory.is_dir():
            continue
        found = sorted(path for path in directory.iterdir()
                       if path.is_file() and _PROFILE_RE.match(path.name))
        if found:
            return found
        if not search_up:
            break
    return []


def load_profiles(paths: List[Path],
                  strict: bool = False) -> List[PerfProfile]:
    """Load *paths*, ordered by their recorded creation time.

    Unreadable or schema-incompatible files are skipped unless *strict*
    (the trajectory report must survive a directory holding profiles
    from several schema eras; the CI gate must not).
    """
    profiles: List[PerfProfile] = []
    seen = set()
    for path in paths:
        try:
            profile = PerfProfile.load(path)
        except ProfileError:
            if strict:
                raise
            continue
        # Promoting a baseline is `cp BENCH_<sha>.json BENCH_baseline.json`,
        # so the same measurement often exists under two filenames; one
        # trajectory row per measurement.
        key = (profile.sha, profile.created, profile.quick,
               profile.repetitions, profile.num_insts)
        if key in seen:
            continue
        seen.add(key)
        profiles.append(profile)
    profiles.sort(key=lambda profile: (profile.created, profile.sha))
    return profiles


def save_profile(profile: PerfProfile, root: Path,
                 out: Optional[Path] = None) -> Path:
    """Write *profile* to *out* (default: ``BENCH_<sha>.json`` in *root*)."""
    path = Path(out) if out is not None else profile_path(root, profile.sha)
    return profile.save(path)
