"""Statistical degradation detection between two performance profiles.

``repro perf check`` feeds a *baseline* and a *candidate*
:class:`~repro.perf.schema.PerfProfile` through :func:`check_profiles`
and fails on any confirmed regression.  Two different judgments are
applied, matching the two metric kinds the schema separates:

* **Timing metrics** (cells/sec and simulated-cycles/sec per target) are
  noisy samples.  A metric is flagged only when *both* tests agree the
  change is real and large: the relative change of the medians exceeds
  ``threshold`` *and* — when each side has at least
  :data:`MIN_SAMPLES_FOR_TEST` repetitions — a one-sided Mann-Whitney
  rank test over the raw samples is significant at ``alpha``.  The rank
  test is nonparametric on purpose: wall-clock samples on shared CI
  runners are skewed and outlier-prone, so mean/t-test judgments would
  both miss real slowdowns and cry wolf on noise.  With fewer samples
  the threshold alone decides (noted in the finding).

* **Deterministic counters** (simulated cycles, replayed ops, the MOP
  funnel, warm-cache hits) must match *exactly*.  Any difference is
  **behavioral drift** — the simulation itself changed — and fails the
  check regardless of thresholds, so a semantic change can never hide
  inside timing noise (nor masquerade as a "speedup").

Cross-host comparability: when both profiles carry calibration samples,
candidate throughputs are scaled by ``median(baseline calibration) /
median(candidate calibration)`` before judging, so a faster or slower
runner does not read as a code change.  ``normalize=False`` disables it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.schema import PerfProfile, TargetProfile, median

#: Minimum per-side repetitions before the rank test has any power at
#: all (with fewer samples, no rank arrangement can be significant, so
#: the relative-change threshold decides alone).
MIN_SAMPLES_FOR_TEST = 3

#: Default relative-change threshold (0.2 == 20%) and significance level.
DEFAULT_THRESHOLD = 0.2
DEFAULT_ALPHA = 0.05

#: Timing metrics judged per target; all are higher-is-better rates.
TIMING_METRICS: Tuple[str, ...] = ("cells_per_sec", "cycles_per_sec")

OK = "ok"
REGRESSION = "regression"
IMPROVEMENT = "improvement"
DRIFT = "drift"
ERROR = "error"


def rank_sum_p(baseline: Sequence[float],
               current: Sequence[float]) -> float:
    """One-sided Mann-Whitney p-value that *current* ranks below
    *baseline* (small p ⇒ current values are genuinely smaller).

    Normal approximation with tie correction and continuity correction —
    exact enumeration is pointless at the 3–10 repetitions profiles
    carry, and the approximation is standard there.  All-tied input
    (zero variance across both groups) returns 1.0: identical samples
    are never evidence of degradation.
    """
    n_base, n_cur = len(baseline), len(current)
    if not n_base or not n_cur:
        return 1.0
    pooled = sorted(
        [(value, 0) for value in baseline] + [(value, 1) for value in current])
    # Average ranks over tie groups.
    ranks: List[float] = [0.0] * len(pooled)
    tie_sizes: List[int] = []
    index = 0
    while index < len(pooled):
        stop = index
        while (stop + 1 < len(pooled)
               and pooled[stop + 1][0] == pooled[index][0]):
            stop += 1
        rank = (index + stop) / 2.0 + 1.0
        for position in range(index, stop + 1):
            ranks[position] = rank
        tie_sizes.append(stop - index + 1)
        index = stop + 1
    rank_current = sum(rank for rank, (_value, group) in zip(ranks, pooled)
                       if group == 1)
    u_current = rank_current - n_cur * (n_cur + 1) / 2.0
    total = n_base + n_cur
    mu = n_base * n_cur / 2.0
    tie_term = sum(size ** 3 - size for size in tie_sizes)
    variance = (n_base * n_cur / 12.0) * (
        (total + 1) - tie_term / (total * (total - 1)))
    if variance <= 0.0:
        # Every pooled value tied: the groups are indistinguishable.
        return 1.0
    z = (u_current - mu + 0.5) / math.sqrt(variance)
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass
class MetricCheck:
    """The verdict for one metric of one target."""

    target: str
    metric: str
    kind: str                    # "timing" | "counter"
    verdict: str                 # ok / regression / improvement / drift
    baseline: float
    current: float
    rel_change: float = 0.0
    p_value: Optional[float] = None
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.verdict in (REGRESSION, DRIFT, ERROR)

    def render(self) -> str:
        head = f"{self.verdict.upper():<11} {self.target}.{self.metric}"
        if self.kind == "counter":
            body = f"{self.baseline:.0f} -> {self.current:.0f}"
        else:
            body = (f"{self.baseline:.2f} -> {self.current:.2f}"
                    f" ({self.rel_change:+.1%})")
            if self.p_value is not None:
                body += f" p={self.p_value:.3f}"
        line = f"{head}: {body}"
        if self.note:
            line += f" [{self.note}]"
        return line


@dataclass
class DegradationReport:
    """Everything ``repro perf check`` decided, renderable for humans."""

    baseline_sha: str = ""
    candidate_sha: str = ""
    threshold: float = DEFAULT_THRESHOLD
    alpha: float = DEFAULT_ALPHA
    normalization: Optional[float] = None
    checks: List[MetricCheck] = field(default_factory=list)

    @property
    def failures(self) -> List[MetricCheck]:
        return [check for check in self.checks if check.failed]

    @property
    def regressions(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.verdict == REGRESSION]

    @property
    def drifts(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.verdict == DRIFT]

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"perf check: baseline {self.baseline_sha}"
            f" vs candidate {self.candidate_sha}"
            f" (threshold {self.threshold:.0%}, alpha {self.alpha})"
        ]
        if self.normalization is not None:
            lines.append(
                f"  host-speed normalization x{self.normalization:.3f}"
                f" (from calibration samples)")
        interesting = [c for c in self.checks if c.verdict != OK]
        for check in interesting:
            lines.append(f"  {check.render()}")
        okay = len(self.checks) - len(interesting)
        if okay:
            lines.append(f"  {okay} metric(s) ok")
        if self.ok:
            lines.append("perf check: PASS")
        else:
            lines.append(
                f"perf check: FAIL — {len(self.regressions)} timing "
                f"regression(s), {len(self.drifts)} behavioral drift(s), "
                f"{len([c for c in self.checks if c.verdict == ERROR])} "
                f"error(s)")
        return "\n".join(lines)


def _judge_timing(target: str, metric: str,
                  base_samples: Sequence[float],
                  cur_samples: Sequence[float],
                  threshold: float, alpha: float,
                  scale: float) -> MetricCheck:
    scaled = [value * scale for value in cur_samples]
    base_med = median(list(base_samples))
    cur_med = median(scaled)
    check = MetricCheck(target=target, metric=metric, kind="timing",
                        verdict=OK, baseline=base_med, current=cur_med)
    if not base_samples or not cur_samples:
        check.verdict = ERROR
        check.note = "missing samples"
        return check
    if base_med <= 0 or math.isnan(base_med) or math.isnan(cur_med):
        check.verdict = ERROR
        check.note = "non-positive baseline median"
        return check
    check.rel_change = (cur_med - base_med) / base_med
    testable = (len(base_samples) >= MIN_SAMPLES_FOR_TEST
                and len(cur_samples) >= MIN_SAMPLES_FOR_TEST)
    if check.rel_change < -threshold:
        if testable:
            check.p_value = rank_sum_p(base_samples, scaled)
            if check.p_value < alpha:
                check.verdict = REGRESSION
            else:
                check.note = (f"median -{-check.rel_change:.1%} but not "
                              f"significant at alpha={alpha}")
        else:
            check.verdict = REGRESSION
            check.note = (f"only {min(len(base_samples), len(cur_samples))}"
                          f" repetition(s): threshold-only judgment")
    elif check.rel_change > threshold:
        check.verdict = IMPROVEMENT
        if testable:
            # p that the *baseline* ranks below the candidate.
            check.p_value = rank_sum_p(scaled, list(base_samples))
    return check


def _judge_counters(target: str, base: TargetProfile,
                    cur: TargetProfile) -> List[MetricCheck]:
    checks: List[MetricCheck] = []
    names = sorted(set(base.counters) | set(cur.counters))
    for name in names:
        in_base = name in base.counters
        in_cur = name in cur.counters
        base_value = base.counters.get(name, 0)
        cur_value = cur.counters.get(name, 0)
        check = MetricCheck(
            target=target, metric=name, kind="counter", verdict=OK,
            baseline=float(base_value), current=float(cur_value))
        if not in_base or not in_cur:
            check.verdict = DRIFT
            check.note = ("counter missing from "
                          + ("baseline" if not in_base else "candidate")
                          + " — schema-compatible layout change; "
                            "re-record the baseline if intended")
        elif base_value != cur_value:
            check.verdict = DRIFT
            check.note = ("deterministic counter changed — behavioral "
                          "drift, not timing noise")
        checks.append(check)
    return checks


def _executor_checks(base: Dict[str, int],
                     cur: Dict[str, int]) -> List[MetricCheck]:
    checks: List[MetricCheck] = []
    for name in sorted(set(base) | set(cur)):
        base_value = base.get(name)
        cur_value = cur.get(name)
        check = MetricCheck(
            target="executor_cache", metric=name, kind="counter",
            verdict=OK,
            baseline=float(base_value if base_value is not None else -1),
            current=float(cur_value if cur_value is not None else -1))
        if base_value != cur_value:
            check.verdict = DRIFT
            check.note = "executor cache behavior changed"
        checks.append(check)
    return checks


def check_profiles(baseline: PerfProfile, candidate: PerfProfile,
                   threshold: float = DEFAULT_THRESHOLD,
                   alpha: float = DEFAULT_ALPHA,
                   normalize: bool = True) -> DegradationReport:
    """Compare *candidate* against *baseline*; never raises on content
    differences — everything becomes a verdict in the report."""
    report = DegradationReport(
        baseline_sha=baseline.sha, candidate_sha=candidate.sha,
        threshold=threshold, alpha=alpha)
    if baseline.backend != candidate.backend:
        # The kernels are bit-identical on counters, but their timing
        # samples measure different code paths: flag it loudly instead
        # of letting a kernel swap masquerade as a perf change.
        report.checks.append(MetricCheck(
            target="profile", metric="backend", kind="counter",
            verdict=ERROR, baseline=0.0, current=1.0,
            note=(f"simulation kernels differ (baseline "
                  f"{baseline.backend!r} vs candidate "
                  f"{candidate.backend!r}); timing is not comparable — "
                  f"re-record one side with the matching --backend")))
        return report
    scale = 1.0
    if (normalize and baseline.calibration_seconds
            and candidate.calibration_seconds):
        base_cal = median(baseline.calibration_seconds)
        cand_cal = median(candidate.calibration_seconds)
        if base_cal > 0 and cand_cal > 0:
            # Throughputs scale inversely with per-op cost: a candidate
            # host that needs 2x the seconds per reference sim gets its
            # throughput credited 2x before comparison.
            scale = cand_cal / base_cal
            report.normalization = scale
    for name, base_target in baseline.targets.items():
        cur_target = candidate.targets.get(name)
        if cur_target is None:
            report.checks.append(MetricCheck(
                target=name, metric="present", kind="counter",
                verdict=ERROR, baseline=1.0, current=0.0,
                note="target missing from candidate profile"))
            continue
        if base_target.num_differs(cur_target):
            report.checks.append(MetricCheck(
                target=name, metric="grid", kind="counter", verdict=ERROR,
                baseline=float(base_target.cells),
                current=float(cur_target.cells),
                note=("grid shape differs (cells/benchmarks/configs); "
                      "profiles are not comparable — re-record the "
                      "baseline with matching settings")))
            continue
        for metric in TIMING_METRICS:
            report.checks.append(_judge_timing(
                name, metric,
                getattr(base_target, metric), getattr(cur_target, metric),
                threshold, alpha, scale))
        report.checks.extend(_judge_counters(name, base_target, cur_target))
    for name in candidate.targets:
        if name not in baseline.targets:
            report.checks.append(MetricCheck(
                target=name, metric="present", kind="counter",
                verdict=ERROR, baseline=0.0, current=1.0,
                note="target missing from baseline profile — re-record "
                     "the baseline"))
    report.checks.extend(
        _executor_checks(baseline.executor, candidate.executor))
    return report
