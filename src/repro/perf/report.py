"""Render the ``BENCH_*.json`` trajectory as a markdown table.

``repro perf report`` output is pasted into EXPERIMENTS.md's
"Performance tracking" section: one row per recorded profile (ordered by
creation time), one throughput column per benchmark target, plus the
run's shape so quick- and full-lane profiles are never read as
comparable rows by accident.
"""

from __future__ import annotations

from typing import List

from repro.perf.schema import PerfProfile, median


def _throughput(profile: PerfProfile, target: str) -> str:
    data = profile.targets.get(target)
    if data is None or not data.cells_per_sec:
        return "—"
    cells = median(data.cells_per_sec)
    cycles = median(data.cycles_per_sec)
    return f"{cells:.2f} ({cycles:,.0f} cyc/s)"


def render_trajectory(profiles: List[PerfProfile]) -> str:
    """Markdown table over *profiles* (already in trajectory order)."""
    if not profiles:
        return ("No `BENCH_*.json` profiles found — record one with "
                "`repro perf run`.")
    targets: List[str] = []
    for profile in profiles:
        for name in profile.targets:
            if name not in targets:
                targets.append(name)
    header = (["sha", "recorded", "lane", "backend", "reps", "insts"]
              + [f"{name} cells/s" for name in targets])
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for profile in profiles:
        row = [
            profile.sha,
            profile.created or "?",
            "quick" if profile.quick else "full",
            profile.backend,
            str(profile.repetitions),
            str(profile.num_insts),
        ] + [_throughput(profile, name) for name in targets]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    lines.append(
        "Throughput cells show the median cells/sec over the profile's "
        "repetitions (simulated cycles/sec in parentheses).  Only rows "
        "with the same lane, backend, reps and insts are comparable; "
        "`repro perf check` additionally normalizes by each profile's "
        "host-speed calibration.")
    return "\n".join(lines)
