"""Measure a performance profile: the ``repro perf run`` engine.

The benchmark grid is a small, fixed set of *targets*, each exercising a
different hot path of the simulator through the PR 1–2 experiment
executor (timeouts, retries and fault recovery included):

* ``wakeup_select`` — the base / 2-cycle / macro-op scheduling loop, the
  pipeline the paper's Figures 14/15 sweep and the ROADMAP's vectorized
  kernel will attack first;
* ``selectfree_replay`` — the select-free disciplines, dominated by the
  replay/scoreboard machinery;
* ``mop_detection`` — macro-op pipelines under both wakeup styles, where
  the dependence-matrix MOP detection of Figures 8/9 is the extra cost
  over plain 2-cycle scheduling.

Each target's grid is simulated ``repetitions`` times with caching
disabled (a timing sample must measure the simulator, not the cache) and
the per-repetition wall clock becomes the profile's timing samples.  The
deterministic counters of every repetition are cross-checked — a
nondeterministic counter is a collection-time error, never data.  A
separate cold+warm run through a throwaway cache records the executor's
hit/miss behavior as exact counters, and a fixed reference workload is
timed as the machine-speed calibration the detector normalizes by.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import MachineConfig, SchedulerKind, SimStats, WakeupStyle
from repro.experiments.executor import Executor
from repro.perf.schema import PerfProfile, TargetProfile

#: SimStats fields that must be bit-identical run over run.  Summed over
#: a target's grid they form the profile's behavioral fingerprint: any
#: drift means the *simulation* changed, not the machine it ran on.
DETERMINISTIC_COUNTERS: Tuple[str, ...] = (
    "cycles",
    "committed_insts",
    "committed_ops",
    "fetched_ops",
    "issued_entries",
    "issued_ops",
    "iq_inserts",
    "iq_insert_ops",
    "replayed_ops",
    "replay_raise",
    "replay_pileup",
    "replay_squash",
    "mispredicted_branches",
    "loads",
    "dl1_load_misses",
    "l2_load_misses",
    "select_collisions",
    "pileup_victims",
    "mops_formed",
    "mop_pointers_created",
    "mop_pointers_deleted",
    "mop_pending_heads",
    "mop_pending_abandoned",
)


class CollectionError(RuntimeError):
    """A measurement run violated its own invariants (nondeterminism,
    failed cells) — the profile would be lies, so nothing is written."""


@dataclass(frozen=True)
class PerfTarget:
    """One named benchmark target: a config grid over benchmarks."""

    name: str
    description: str
    #: ``(label, scheduler, wakeup_style)`` triples; ``None`` wakeup
    #: keeps the config default.
    disciplines: Tuple[Tuple[str, SchedulerKind, Optional[WakeupStyle]], ...]

    def configs(self) -> Dict[str, MachineConfig]:
        grid: Dict[str, MachineConfig] = {}
        for label, scheduler, wakeup in self.disciplines:
            if wakeup is None:
                grid[label] = MachineConfig.paper_default(
                    scheduler=scheduler)
            else:
                grid[label] = MachineConfig.paper_default(
                    scheduler=scheduler, wakeup_style=wakeup)
        return grid


#: The benchmark grid ``repro perf run`` measures, in run order.
PERF_TARGETS: Tuple[PerfTarget, ...] = (
    PerfTarget(
        name="wakeup_select",
        description="base vs pipelined vs macro-op scheduling loop",
        disciplines=(
            ("base", SchedulerKind.BASE, None),
            ("2-cycle", SchedulerKind.TWO_CYCLE, None),
            ("macro-op", SchedulerKind.MACRO_OP, WakeupStyle.WIRED_OR),
        ),
    ),
    PerfTarget(
        name="selectfree_replay",
        description="select-free disciplines (replay/scoreboard machinery)",
        disciplines=(
            ("squash-dep", SchedulerKind.SELECT_FREE_SQUASH, None),
            ("scoreboard", SchedulerKind.SELECT_FREE_SCOREBOARD, None),
        ),
    ),
    PerfTarget(
        name="mop_detection",
        description="macro-op grouping under both wakeup-array styles",
        disciplines=(
            ("2-src", SchedulerKind.MACRO_OP, WakeupStyle.CAM_2SRC),
            ("wired-OR", SchedulerKind.MACRO_OP, WakeupStyle.WIRED_OR),
        ),
    ),
)

#: Benchmarks per lane.  The quick lane is the CI gate (< 5 min budget
#: including install); the full lane is the nightly profile.
QUICK_BENCHMARKS: Tuple[str, ...] = ("gap", "vortex")
FULL_BENCHMARKS: Optional[Tuple[str, ...]] = None  # None = all profiles

QUICK_INSTS = 1_500
FULL_INSTS = 6_000
QUICK_REPETITIONS = 3
FULL_REPETITIONS = 5

#: Calibration reference: a fixed workload simulated under the base
#: scheduler.  Deliberately small — it measures the host, not the tree.
CALIBRATION_BENCHMARK = "gap"
CALIBRATION_INSTS = 1_500
CALIBRATION_REPS = 3


def current_sha(root: Optional[Path] = None) -> str:
    """Short git SHA of *root* (``REPRO_PERF_SHA`` overrides; ``local``
    when neither is available, e.g. an sdist install)."""
    env = os.environ.get("REPRO_PERF_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "local"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "local"


def _sum_counters(grid: Dict[str, Dict[str, SimStats]]) -> Dict[str, int]:
    totals = {name: 0 for name in DETERMINISTIC_COUNTERS}
    for row in grid.values():
        for stats in row.values():
            if getattr(stats, "failed", False):
                raise CollectionError(
                    f"cell {stats.cell_name} FAILED during measurement; "
                    f"refusing to write a profile over missing data")
            for name in DETERMINISTIC_COUNTERS:
                totals[name] += int(getattr(stats, name))
    return totals


def _measure_target(target: PerfTarget, benchmarks: Sequence[str],
                    num_insts: int, seed: int, repetitions: int,
                    jobs: int, backend: Optional[str],
                    executor_factory: Callable[..., Executor],
                    log: Callable[[str], None]) -> TargetProfile:
    configs = target.configs()
    profile = TargetProfile(
        description=target.description,
        benchmarks=list(benchmarks),
        configs=list(configs),
    )
    counters: Optional[Dict[str, int]] = None
    for rep in range(repetitions):
        # A fresh cache-less executor per repetition: nothing warm
        # survives between samples except the per-process trace cache,
        # which is exactly the state a real experiment run would have.
        executor = executor_factory(jobs=jobs, cache=None, backend=backend)
        start = time.perf_counter()
        grid = executor.run_grid(configs, benchmarks, num_insts, seed)
        wall = time.perf_counter() - start
        rep_counters = _sum_counters(grid)
        if counters is None:
            counters = rep_counters
            profile.cells = executor.total_summary.cells
            profile.sim_cycles = rep_counters["cycles"]
        elif rep_counters != counters:
            drifted = sorted(
                name for name in counters
                if counters[name] != rep_counters[name])
            raise CollectionError(
                f"target {target.name}: deterministic counters changed "
                f"between repetitions ({', '.join(drifted)}) — the "
                f"simulator is nondeterministic, refusing to profile")
        profile.wall_seconds.append(wall)
        profile.cells_per_sec.append(profile.cells / wall)
        profile.cycles_per_sec.append(profile.sim_cycles / wall)
        log(f"  {target.name} rep {rep + 1}/{repetitions}: "
            f"{wall:.2f}s ({profile.cells} cells)")
    assert counters is not None
    profile.counters = counters
    return profile


def _exercise_cache(target: PerfTarget, benchmarks: Sequence[str],
                    num_insts: int, seed: int, jobs: int,
                    backend: Optional[str],
                    executor_factory: Callable[..., Executor]
                    ) -> Dict[str, int]:
    """Cold+warm run through a throwaway cache; exact-match counters.

    The warm pass must hit on every cell — a drop in ``warm_hits`` means
    the cache key or store semantics changed, which is behavioral drift
    the timing samples would never attribute correctly.
    """
    from repro.experiments.executor import ResultCache
    configs = target.configs()
    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as tmp:
        cache = ResultCache(Path(tmp))
        cold = executor_factory(jobs=jobs, cache=cache, backend=backend)
        cold.run_grid(configs, benchmarks, num_insts, seed)
        warm = executor_factory(jobs=jobs, cache=cache, backend=backend)
        warm.run_grid(configs, benchmarks, num_insts, seed)
        return {
            "cold_cells": cold.total_summary.cells,
            "cold_hits": cold.total_summary.cache_hits,
            "warm_cells": warm.total_summary.cells,
            "warm_hits": warm.total_summary.cache_hits,
            "warm_misses": warm.total_summary.cells
                           - warm.total_summary.cache_hits,
        }


def _calibrate(seed: int) -> List[float]:
    """Time the fixed reference workload a few times (machine speed)."""
    from repro.core import simulate
    from repro.workloads import generate_trace, get_profile
    samples: List[float] = []
    trace = generate_trace(get_profile(CALIBRATION_BENCHMARK),
                           CALIBRATION_INSTS, seed=seed)
    config = MachineConfig.paper_default()
    for _ in range(CALIBRATION_REPS):
        start = time.perf_counter()
        simulate(trace, config)
        samples.append(time.perf_counter() - start)
    return samples


def collect_profile(quick: bool = False,
                    repetitions: Optional[int] = None,
                    num_insts: Optional[int] = None,
                    benchmarks: Optional[Sequence[str]] = None,
                    seed: int = 1,
                    jobs: int = 1,
                    sha: Optional[str] = None,
                    backend: Optional[str] = None,
                    executor_factory: Callable[..., Executor] = Executor,
                    log: Callable[[str], None] = lambda line: None
                    ) -> PerfProfile:
    """Run the benchmark grid and return the measured :class:`PerfProfile`.

    ``quick`` selects the CI lane (fewer benchmarks, instructions and
    repetitions); every knob can still be overridden individually.
    ``backend`` selects the simulation kernel for every measured cell
    (``None`` = the configs' own default, i.e. pure Python); the choice
    is recorded in the profile so ``repro perf check`` never compares
    kernels against each other unknowingly.  Calibration always runs the
    pure-Python reference — it measures *host* speed, and must stay
    comparable across profiles regardless of kernel.
    ``executor_factory`` exists for tests — it receives ``jobs=``/
    ``cache=``/``backend=`` keyword arguments exactly like
    :class:`Executor`.
    """
    if repetitions is None:
        repetitions = QUICK_REPETITIONS if quick else FULL_REPETITIONS
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if num_insts is None:
        num_insts = QUICK_INSTS if quick else FULL_INSTS
    if benchmarks is None:
        benchmarks = (QUICK_BENCHMARKS if quick
                      else FULL_BENCHMARKS)
    if benchmarks is None:
        from repro.workloads import profile_names
        benchmarks = list(profile_names())
    profile = PerfProfile(
        sha=sha if sha else current_sha(),
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        python=platform.python_version(),
        platform=f"{platform.system()}-{platform.machine()}"
                 f"-py{sys.version_info.major}.{sys.version_info.minor}",
        quick=quick,
        repetitions=repetitions,
        num_insts=num_insts,
        seed=seed,
        jobs=jobs,
        backend=backend if backend else "python",
    )
    log(f"calibrating host speed "
        f"({CALIBRATION_BENCHMARK}/{CALIBRATION_INSTS} insts "
        f"x{CALIBRATION_REPS})")
    profile.calibration_seconds = _calibrate(seed)
    for target in PERF_TARGETS:
        log(f"measuring {target.name}: {target.description}")
        profile.targets[target.name] = _measure_target(
            target, benchmarks, num_insts, seed, repetitions, jobs,
            backend, executor_factory, log)
    log("exercising the result cache (cold + warm pass)")
    profile.executor = _exercise_cache(
        PERF_TARGETS[0], benchmarks, num_insts, seed, jobs, backend,
        executor_factory)
    return profile
