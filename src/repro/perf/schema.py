"""The performance-profile schema: what one ``BENCH_<sha>.json`` holds.

A *profile* is one measured snapshot of this repository's simulation
throughput at one code version: for every benchmark target, the
wall-clock samples of ``repetitions`` independent runs (and the derived
cells/sec and simulated-cycles/sec throughputs), plus the deterministic
simulation counters those runs produced.  Profiles are written by
``repro perf run`` (:mod:`repro.perf.collector`), compared by
``repro perf check`` (:mod:`repro.perf.detect`) and rendered as a
trajectory by ``repro perf report`` (:mod:`repro.perf.report`).

Two metric kinds live side by side, and the split is the whole design:

* **timing samples** (wall seconds, cells/sec, cycles/sec, the
  calibration loop) are noisy measurements — per-repetition sample
  lists, judged statistically with a rank test and a relative-change
  threshold;
* **deterministic counters** (simulated cycles, replayed ops, the MOP
  funnel, cache hit/miss counts from the warm-cache exercise) must be
  *bit-identical* between runs of the same code — any difference is
  behavioral drift, reported separately from timing noise and never
  excused by a threshold.

``PERF_SCHEMA`` versions the file layout; a loader refuses a profile
written under a different schema (comparing across layouts would turn
real regressions into KeyErrors or silently vacuous passes).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Bump when the profile layout or the meaning of a metric changes.
PERF_SCHEMA = 1

#: Sanity marker so an arbitrary JSON file is never mistaken for a profile.
PROFILE_KIND = "repro-perf-profile"


class ProfileError(Exception):
    """A profile file could not be used (missing / unreadable / wrong)."""


class BaselineMissingError(ProfileError):
    """The baseline profile does not exist.

    ``repro perf check`` cannot run without one; the fix is to record it
    (``repro perf run --out BENCH_baseline.json``), not to pass quietly.
    """


class SchemaMismatchError(ProfileError):
    """The profile was written under an incompatible ``PERF_SCHEMA``."""

    def __init__(self, path: os.PathLike, found: Any) -> None:
        super().__init__(
            f"{path}: profile schema {found!r} != supported {PERF_SCHEMA}"
            f" — re-record it with this version's 'repro perf run'")
        self.path = path
        self.found = found

    def __reduce__(self):
        return (type(self), (self.path, self.found))


@dataclass
class TargetProfile:
    """Measurements for one benchmark target (one simulation grid).

    ``wall_seconds`` has one entry per repetition; ``cells_per_sec`` and
    ``cycles_per_sec`` are the per-repetition throughputs derived from
    it.  ``counters`` are the deterministic simulation counters summed
    over the grid's cells — identical for every repetition (the
    collector verifies this at measurement time, so a profile can never
    carry nondeterministic "counters").
    """

    description: str = ""
    benchmarks: List[str] = field(default_factory=list)
    configs: List[str] = field(default_factory=list)
    cells: int = 0
    #: Total simulated cycles across the grid (deterministic).
    sim_cycles: int = 0
    wall_seconds: List[float] = field(default_factory=list)
    cells_per_sec: List[float] = field(default_factory=list)
    cycles_per_sec: List[float] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def num_differs(self, other: "TargetProfile") -> bool:
        """True when the two measurements ran different grids — their
        timing samples measure different work and must not be compared."""
        return (self.cells != other.cells
                or self.benchmarks != other.benchmarks
                or self.configs != other.configs)


@dataclass
class PerfProfile:
    """One ``BENCH_<sha>.json``: a per-version performance snapshot."""

    sha: str = "local"
    created: str = ""
    python: str = ""
    platform: str = ""
    quick: bool = False
    repetitions: int = 0
    num_insts: int = 0
    seed: int = 1
    jobs: int = 1
    #: Simulation kernel the measured cells ran on ("python" golden
    #: reference or "numpy" vectorized; calibration is always python).
    #: Profiles written before the field existed default to "python" —
    #: the only kernel that existed then.
    backend: str = "python"
    #: Machine-speed reference: seconds to simulate a fixed reference
    #: workload, one sample per calibration repetition.  ``repro perf
    #: check`` uses the baseline/candidate ratio to normalize throughput
    #: comparisons across hosts of different speeds.
    calibration_seconds: List[float] = field(default_factory=list)
    #: Deterministic executor-cache exercise: a grid run cold then warm
    #: through a throwaway cache must hit exactly ``cells`` times.
    executor: Dict[str, int] = field(default_factory=dict)
    targets: Dict[str, TargetProfile] = field(default_factory=dict)

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": PERF_SCHEMA,
            "kind": PROFILE_KIND,
        }
        payload.update(asdict(self))
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any],
                  source: os.PathLike = "<memory>") -> "PerfProfile":
        if (payload.get("kind") != PROFILE_KIND
                or payload.get("schema") != PERF_SCHEMA):
            raise SchemaMismatchError(source, payload.get("schema"))
        targets = {
            name: TargetProfile(**target)
            for name, target in payload.get("targets", {}).items()
        }
        fields = {key: payload[key] for key in (
            "sha", "created", "python", "platform", "quick", "repetitions",
            "num_insts", "seed", "jobs", "backend", "calibration_seconds",
            "executor",
        ) if key in payload}
        return cls(targets=targets, **fields)

    def save(self, path: os.PathLike) -> Path:
        """Atomically write this profile to *path* (pretty-printed: the
        file is committed to git, so diffs should be reviewable)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self.to_dict(), sort_keys=True, indent=2)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        tmp.write_text(text + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: os.PathLike) -> "PerfProfile":
        path = Path(path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise BaselineMissingError(
                f"no profile at {path} — record one with "
                f"'repro perf run --out {path}'") from None
        except OSError as exc:
            raise ProfileError(f"cannot read {path}: {exc}") from exc
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SchemaMismatchError(path, None)
        return cls.from_dict(payload, source=path)

    # -- convenience --------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"perf profile {self.sha} ({'quick' if self.quick else 'full'}"
            f", {self.repetitions} reps, {self.num_insts} insts"
            f", jobs={self.jobs})",
        ]
        for name, target in self.targets.items():
            med = _median(target.cells_per_sec)
            cyc = _median(target.cycles_per_sec)
            lines.append(
                f"  {name}: {target.cells} cells"
                f" | {med:.2f} cells/s | {cyc:,.0f} sim cycles/s"
                f" | {target.sim_cycles} cycles")
        if self.executor:
            hits = self.executor.get("warm_hits", 0)
            total = self.executor.get("warm_cells", 0)
            lines.append(f"  executor cache: {hits}/{total} warm hits")
        return "\n".join(lines)


def _median(samples: List[float]) -> float:
    """Median without :mod:`statistics` edge-case surprises on empties."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Optional export used by the detector and report modules.
median = _median
