"""Tests for the repro-sim command-line driver."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_benchmark(self, capsys):
        assert main(["run", "gap", "--insts", "800"]) == 0
        out = capsys.readouterr().out
        assert "IPC=" in out and "mops=" in out

    def test_run_kernel(self, capsys):
        assert main(["run", "vector_sum", "--scheduler", "base"]) == 0
        out = capsys.readouterr().out
        assert "vector_sum" in out

    def test_unrestricted_queue_flag(self, capsys):
        assert main(["run", "gap", "--insts", "500",
                     "--iq-size", "0"]) == 0

    def test_mop_size_flag(self, capsys):
        assert main(["run", "gap", "--insts", "500",
                     "--mop-size", "4"]) == 0

    def test_backend_flag_is_bit_identical(self, capsys):
        from repro.core.backend import get_backend
        if not get_backend("numpy").available():
            pytest.skip("numpy backend unavailable on this host")
        assert main(["run", "gap", "--insts", "800"]) == 0
        python_out = capsys.readouterr().out
        assert main(["run", "gap", "--insts", "800",
                     "--backend", "numpy"]) == 0
        assert capsys.readouterr().out == python_out

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "gap", "--backend", "fortran"])

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["run", "nosuchthing"])

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "gap", "--scheduler", "quantum"])


class TestFigures:
    def test_figure6(self, capsys):
        assert main(["figure", "6", "--insts", "800",
                     "--benchmarks", "gap"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure14_subset(self, capsys):
        assert main(["figure", "14", "--insts", "800",
                     "--benchmarks", "gap,vortex"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out and "vortex" in out

    def test_table2(self, capsys):
        assert main(["table", "2", "--insts", "800",
                     "--benchmarks", "mcf"]) == 0
        assert "paper_32" in capsys.readouterr().out


class TestExecutorFlags:
    def test_jobs_byte_identical_tables(self, capsys):
        assert main(["figure", "14", "--insts", "800",
                     "--benchmarks", "gap,vortex", "--jobs", "1",
                     "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert main(["figure", "14", "--insts", "800",
                     "--benchmarks", "gap,vortex", "--jobs", "2",
                     "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_summary_on_stderr_not_stdout(self, capsys):
        assert main(["figure", "14", "--insts", "800",
                     "--benchmarks", "gap", "--jobs", "1",
                     "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "executor:" in captured.err
        assert "executor:" not in captured.out

    def test_warm_cache_full_hits(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["table", "2", "--insts", "800",
                     "--benchmarks", "gap", "--jobs", "1"] + cache) == 0
        cold = capsys.readouterr()
        assert "2 cells | 2 simulated, 0 cache hits" in cold.err
        assert main(["table", "2", "--insts", "800",
                     "--benchmarks", "gap", "--jobs", "1"] + cache) == 0
        warm = capsys.readouterr()
        assert "2 cells | 0 simulated, 2 cache hits" in warm.err
        assert "100.0% hit rate" in warm.err
        assert cold.out == warm.out

    def test_progress_flag(self, capsys):
        assert main(["table", "2", "--insts", "800",
                     "--benchmarks", "gap", "--jobs", "1", "--no-cache",
                     "--progress"]) == 0
        assert "[1/2] gap/" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(["table", "2", "--insts", "800",
                     "--benchmarks", "gap", "--jobs", "1"] + cache) == 0
        capsys.readouterr()
        assert main(["cache", "info"] + cache) == 0
        out = capsys.readouterr().out
        assert "entries:   2" in out
        assert main(["cache", "clear"] + cache) == 0
        assert "cleared 2 cached results" in capsys.readouterr().out
        assert main(["cache", "info"] + cache) == 0
        assert "entries:   0" in capsys.readouterr().out


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out and "vector_sum" in out
