"""Tests for the repro-sim command-line driver."""

import pytest

from repro.cli import main


class TestRun:
    def test_run_benchmark(self, capsys):
        assert main(["run", "gap", "--insts", "800"]) == 0
        out = capsys.readouterr().out
        assert "IPC=" in out and "mops=" in out

    def test_run_kernel(self, capsys):
        assert main(["run", "vector_sum", "--scheduler", "base"]) == 0
        out = capsys.readouterr().out
        assert "vector_sum" in out

    def test_unrestricted_queue_flag(self, capsys):
        assert main(["run", "gap", "--insts", "500",
                     "--iq-size", "0"]) == 0

    def test_mop_size_flag(self, capsys):
        assert main(["run", "gap", "--insts", "500",
                     "--mop-size", "4"]) == 0

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["run", "nosuchthing"])

    def test_bad_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "gap", "--scheduler", "quantum"])


class TestFigures:
    def test_figure6(self, capsys):
        assert main(["figure", "6", "--insts", "800",
                     "--benchmarks", "gap"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure14_subset(self, capsys):
        assert main(["figure", "14", "--insts", "800",
                     "--benchmarks", "gap,vortex"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out and "vortex" in out

    def test_table2(self, capsys):
        assert main(["table", "2", "--insts", "800",
                     "--benchmarks", "mcf"]) == 0
        assert "paper_32" in capsys.readouterr().out


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gap" in out and "vector_sum" in out
