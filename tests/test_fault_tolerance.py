"""Fault-tolerance tests: every executor recovery path, deterministically.

Faults are injected via ``REPRO_FAULT_INJECT`` (see
:mod:`repro.experiments.faults`), which reaches pool workers through the
inherited environment, so each path — raise, hang/timeout, worker death,
retry-then-succeed, serial fallback — is exercised without flakiness.
"""

import pickle

import pytest

from repro.core import MachineConfig, SchedulerKind
from repro.core.pipeline import DeadlockError, SimulationError
from repro.experiments import figure14
from repro.experiments.executor import (
    CellFailedError,
    Executor,
    FailedStats,
    ResultCache,
    RunCheckpoint,
    SimCell,
    cell_key,
)
from repro.experiments.faults import (
    ENV_VAR,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    format_spec,
    maybe_inject,
    parse_spec,
)
from repro.experiments.report import full_report
from repro.experiments.sweeps import queue_size_sweep

N = 600
BENCH = ("gap", "vortex", "mcf", "gcc")


def base_config():
    return MachineConfig.paper_default(scheduler=SchedulerKind.BASE)


def make_cells(benchmarks=BENCH, label="base", num_insts=N):
    config = base_config()
    return [SimCell(bench, label, config, num_insts) for bench in benchmarks]


def executor(**kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("retry_backoff", 0.0)
    return Executor(**kwargs)


def inject(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(ENV_VAR, spec)


# ---------------------------------------------------------------------------
# The injection harness itself
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_parse_round_trip(self):
        rules = parse_spec("gap/base=raise:2; vortex/*=hang ;mcf/x=kill")
        assert rules == [
            FaultRule("gap/base", "raise", 2),
            FaultRule("vortex/*", "hang", None),
            FaultRule("mcf/x", "kill", None),
        ]
        assert parse_spec(format_spec(rules)) == rules

    def test_bad_specs_rejected(self):
        for spec in ("gap/base", "gap/base=explode", "gap/base=raise:x",
                     "gap/base=raise:0", "=raise"):
            with pytest.raises(FaultSpecError):
                parse_spec(spec)

    def test_applies_attempt_window(self):
        rule = FaultRule("gap/*", "raise", 2)
        assert rule.applies("gap/base", 1)
        assert rule.applies("gap/base", 2)
        assert not rule.applies("gap/base", 3)
        assert not rule.applies("vortex/base", 1)
        always = FaultRule("gap/base", "raise", None)
        assert always.applies("gap/base", 99)

    def test_no_env_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        maybe_inject("gap/base", 1)  # must not raise

    def test_inject_raises_in_process(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        with pytest.raises(InjectedFault):
            maybe_inject("gap/base", 1)
        maybe_inject("vortex/base", 1)  # non-matching cell untouched

    def test_kill_refused_outside_worker(self, monkeypatch):
        # A kill fault in the main process must degrade to an exception,
        # never _exit the caller.
        inject(monkeypatch, "gap/base=kill")
        with pytest.raises(InjectedFault):
            maybe_inject("gap/base", 1)


# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------

class TestDeadlockPayload:
    def test_payload_survives_pickling(self):
        error = DeadlockError("stuck", cycle=7_000,
                              pending={"rob": 3, "iq": 1})
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, DeadlockError)
        assert isinstance(clone, SimulationError)
        assert str(clone) == "stuck"
        assert clone.cycle == 7_000
        assert clone.pending == {"rob": 3, "iq": 1}

    def test_default_payload(self):
        error = DeadlockError("stuck")
        assert error.cycle is None
        assert error.pending == {}

    def test_deadlock_fault_carries_details(self, monkeypatch):
        inject(monkeypatch, "gap/base=deadlock")
        ex = executor(max_retries=0, serial_fallback=False)
        cells = make_cells(("gap", "vortex"))
        results = ex.run_cells(cells)
        assert len(results) == 1
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.status == "error"
        assert outcome.error_type == "DeadlockError"
        assert outcome.details["cycle"] == 123_456
        assert outcome.details["pending"]["rob"] == 4


class TestMaxCycles:
    def test_max_cycles_truncates_simulation(self):
        cell = SimCell("gap", "trunc", base_config(), N, max_cycles=40)
        stats = Executor(jobs=1).run_cells([cell])[cell]
        assert 0 < stats.cycles <= 40

    def test_max_cycles_in_cache_key(self):
        config = base_config()
        assert cell_key(SimCell("gap", "x", config, N)) != \
            cell_key(SimCell("gap", "x", config, N, max_cycles=40))


# ---------------------------------------------------------------------------
# Recovery paths
# ---------------------------------------------------------------------------

class TestRaisePath:
    def test_persistent_raise_isolated_to_cell(self, monkeypatch):
        """k of n cells fault persistently -> the n-k good results come
        back, the k are FAILED with full diagnostics."""
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=1)
        cells = make_cells()
        results = ex.run_cells(cells)
        assert len(results) == len(cells) - 1
        assert cells[0] not in results
        summary = ex.last_summary
        assert summary.failed == 1
        assert summary.simulated == len(cells) - 1
        assert any("gap/base" in line for line in summary.failures)
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.status == "error"
        assert outcome.error_type == "InjectedFault"
        assert "injected fault" in outcome.error
        assert "InjectedFault" in outcome.traceback
        report = ex.failure_report()
        assert report and "gap/base" in report.render()

    def test_persistent_raise_serial_mode(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(jobs=1, max_retries=1)
        cells = make_cells(("gap", "vortex"))
        results = ex.run_cells(cells)
        assert len(results) == 1
        assert ex.last_outcomes[cells[0]].attempts == 2

    def test_retry_then_succeed(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise:2")
        ex = executor(max_retries=2)
        cells = make_cells()
        results = ex.run_cells(cells)
        assert len(results) == len(cells)
        assert ex.last_summary.failed == 0
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.ok and outcome.attempts == 3

    def test_retry_then_succeed_serial(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise:1")
        ex = executor(jobs=1, max_retries=1)
        cells = make_cells(("gap",))
        results = ex.run_cells(cells)
        assert len(results) == 1
        assert ex.last_outcomes[cells[0]].attempts == 2


class TestTimeoutPath:
    def test_hung_cell_times_out_others_survive(self, monkeypatch):
        inject(monkeypatch, "gap/base=hang")
        ex = executor(cell_timeout=0.4, max_retries=0)
        cells = make_cells()
        results = ex.run_cells(cells)
        assert len(results) == len(cells) - 1
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.status == "timeout"
        assert "wall-clock" in outcome.error
        assert ex.last_summary.respawns >= 1
        assert ex.last_summary.failed == 1

    def test_timeout_then_succeed(self, monkeypatch):
        inject(monkeypatch, "gap/base=hang:1")
        ex = executor(cell_timeout=0.4, max_retries=1)
        cells = make_cells(("gap", "vortex"))
        results = ex.run_cells(cells)
        assert len(results) == 2
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.ok and outcome.attempts == 2
        assert ex.last_summary.respawns >= 1

    def test_timeout_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "12.5")
        assert Executor(jobs=1).cell_timeout == 12.5
        # explicit zero disables
        assert Executor(jobs=1, cell_timeout=0).cell_timeout is None
        monkeypatch.delenv("REPRO_CELL_TIMEOUT")
        assert Executor(jobs=1).cell_timeout is None


class TestWorkerDeathPath:
    def test_transient_kill_recovers_everything(self, monkeypatch):
        inject(monkeypatch, "gap/base=kill:1")
        ex = executor(max_retries=2)
        cells = make_cells()
        results = ex.run_cells(cells)
        assert len(results) == len(cells)
        assert ex.last_summary.failed == 0
        assert ex.last_summary.respawns >= 1

    def test_persistent_kill_marks_cell_killed(self, monkeypatch):
        inject(monkeypatch, "gap/base=kill")
        ex = executor(max_retries=1)
        cells = make_cells()
        results = ex.run_cells(cells)
        assert len(results) == len(cells) - 1
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.status == "killed"
        assert outcome.error_type == "WorkerDied"
        assert ex.last_summary.failed == 1
        # every other cell survived the respawns with its result intact
        for cell in cells[1:]:
            assert cell in results


class TestSerialFallbackPath:
    def test_pool_only_fault_rescued_in_process(self, monkeypatch):
        """A fault that only fires inside pool workers (models pickling
        or worker-env flakiness) degrades to jobs=1 behavior."""
        inject(monkeypatch, "gap/base=raise-parallel")
        ex = executor(max_retries=1)
        cells = make_cells()
        results = ex.run_cells(cells)
        assert len(results) == len(cells)
        outcome = ex.last_outcomes[cells[0]]
        assert outcome.ok and outcome.via_fallback
        assert ex.last_summary.failed == 0

    def test_fallback_disabled_loses_the_cell(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise-parallel")
        ex = executor(max_retries=0, serial_fallback=False)
        cells = make_cells(("gap", "vortex"))
        results = ex.run_cells(cells)
        assert len(results) == 1
        assert ex.last_summary.failed == 1


class TestFailFast:
    def test_fail_fast_raises(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=0, fail_fast=True)
        cells = make_cells(("gap", "vortex"))
        with pytest.raises(CellFailedError) as info:
            ex.run_cells(cells)
        assert info.value.cell.name == "gap/base"
        assert info.value.outcome.status == "error"

    def test_fail_fast_serial(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(jobs=1, max_retries=0, fail_fast=True)
        with pytest.raises(CellFailedError):
            ex.run_cells(make_cells(("gap",)))


# ---------------------------------------------------------------------------
# Checkpointed partial results / resume-after-crash
# ---------------------------------------------------------------------------

class TestResume:
    def test_cached_rerun_simulates_only_failed_cells(self, tmp_path,
                                                      monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        cells = make_cells()
        cold = executor(max_retries=0, serial_fallback=False,
                        cache=ResultCache(tmp_path / "cache"))
        assert len(cold.run_cells(cells)) == len(cells) - 1

        monkeypatch.delenv(ENV_VAR)
        warm = executor(cache=ResultCache(tmp_path / "cache"))
        results = warm.run_cells(cells)
        assert len(results) == len(cells)
        assert warm.last_summary.cache_hits == len(cells) - 1
        assert warm.last_summary.simulated == 1

    def test_checkpoint_resume_without_cache(self, tmp_path, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        path = tmp_path / "run.ckpt"
        cells = make_cells()
        cold = executor(max_retries=0, serial_fallback=False,
                        checkpoint=path)
        assert cold.cache is None
        assert len(cold.run_cells(cells)) == len(cells) - 1
        assert len(path.read_text().splitlines()) == len(cells) - 1

        monkeypatch.delenv(ENV_VAR)
        warm = executor(checkpoint=path)
        results = warm.run_cells(cells)
        assert len(results) == len(cells)
        assert warm.last_summary.cache_hits == len(cells) - 1
        assert warm.last_summary.simulated == 1

    def test_checkpoint_tolerates_torn_tail(self, tmp_path, monkeypatch):
        path = tmp_path / "run.ckpt"
        cells = make_cells(("gap", "vortex"))
        executor(jobs=1, checkpoint=path).run_cells(cells)
        with path.open("a") as handle:
            handle.write('{"schema": 2, "key": "torn", "stats": {"cyc')
        resumed = RunCheckpoint(path)
        assert len(resumed) == 2

    def test_checkpoint_from_environment(self, tmp_path, monkeypatch):
        path = tmp_path / "env.ckpt"
        monkeypatch.setenv("REPRO_CHECKPOINT", str(path))
        ex = Executor(jobs=1)
        assert ex.checkpoint is not None and ex.checkpoint.path == path
        # caching on -> the cache checkpoints instead; env is ignored
        cached = Executor(jobs=1, cache=ResultCache(tmp_path / "c"))
        assert cached.checkpoint is None


# ---------------------------------------------------------------------------
# Graceful degradation in consumers
# ---------------------------------------------------------------------------

class TestConsumers:
    def test_run_grid_substitutes_failed_stats(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=0, serial_fallback=False)
        grid = ex.run_grid({"base": base_config()}, ["gap", "vortex"], N)
        failed = grid["gap"]["base"]
        assert isinstance(failed, FailedStats)
        assert failed.failed
        assert failed.ipc != failed.ipc  # NaN
        assert failed.grouping_breakdown()["mop_valuegen"] != 0.0
        assert failed.outcome is not None
        assert grid["vortex"]["base"].ipc > 0

    def test_figure_renders_failed_marker(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=0, serial_fallback=False)
        rendered = figure14(benchmarks=["gap", "vortex"], num_insts=N,
                            executor=ex).render()
        assert "FAILED" in rendered
        assert "vortex" in rendered  # the good row still renders
        # NaN rows are excluded from the geomean with an explicit marker.
        assert "geomean" in rendered
        assert "excl 1 FAILED" in rendered

    def test_sweep_renders_failed_marker(self, monkeypatch):
        inject(monkeypatch, "gap/base@8=raise")
        ex = executor(max_retries=0, serial_fallback=False)
        rendered = queue_size_sweep(benchmarks=["gap"], num_insts=N,
                                    sizes=(8,), executor=ex).render()
        assert "FAILED" in rendered

    def test_report_appends_failure_section(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=0, serial_fallback=False)
        document = full_report(benchmarks=["gap"], num_insts=N,
                               sections=["figure 14"], executor=ex)
        assert "FAILED" in document
        assert "cell(s) FAILED" in document

    def test_render_bars_marks_failed(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=0, serial_fallback=False)
        result = figure14(benchmarks=["gap", "vortex"], num_insts=N,
                          executor=ex)
        bars = result.render_bars("MOP-wiredOR")
        assert "FAILED" in bars

    def test_summary_render_lists_failures(self, monkeypatch):
        inject(monkeypatch, "gap/base=raise")
        ex = executor(max_retries=0, serial_fallback=False)
        ex.run_cells(make_cells(("gap", "vortex")))
        rendered = ex.last_summary.render()
        assert "1 FAILED" in rendered
        assert "FAILED gap/base" in rendered

    def test_progress_marks_failed_cells(self, monkeypatch, capsys):
        import sys
        inject(monkeypatch, "gap/base=raise")
        ex = Executor(jobs=1, max_retries=0, progress=True,
                      stream=sys.stderr)
        ex.run_cells(make_cells(("gap",)))
        assert "gap/base FAILED (error)" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCli:
    def test_failed_cells_exit_nonzero_with_table(self, monkeypatch,
                                                  capsys):
        from repro.cli import main
        inject(monkeypatch, "gap/base=raise")
        rc = main(["figure", "14", "--insts", str(N),
                   "--benchmarks", "gap,vortex", "--no-cache",
                   "--jobs", "2", "--max-retries", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAILED" in captured.out
        assert "cell(s) FAILED" in captured.err

    def test_fail_fast_flag_aborts(self, monkeypatch, capsys):
        from repro.cli import main
        inject(monkeypatch, "gap/base=raise")
        rc = main(["figure", "14", "--insts", str(N),
                   "--benchmarks", "gap,vortex", "--no-cache",
                   "--jobs", "1", "--max-retries", "0", "--fail-fast"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "fail-fast" in captured.err

    def test_clean_run_exits_zero(self, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.delenv(ENV_VAR, raising=False)
        rc = main(["figure", "14", "--insts", "500",
                   "--benchmarks", "gap", "--no-cache", "--jobs", "1",
                   "--cell-timeout", "60", "--max-retries", "1"])
        assert rc == 0
