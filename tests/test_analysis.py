"""Tests for the machine-independent characterizations (Figures 6 and 7)."""

import pytest

from repro.analysis import (
    characterize_distances,
    characterize_groupability,
    render_table,
)
from repro.analysis.reporting import geomean
from repro.workloads import generate_trace, get_profile
from tests.conftest import TraceBuilder


class TestDistanceBuckets:
    def test_simple_distance_one(self, tb):
        tb.alu(dest=1, srcs=())
        tb.alu(dest=2, srcs=(1,))
        buckets = characterize_distances(tb.build())
        assert buckets.valuegen_heads == 2
        assert buckets.d1_3 == 1     # first head's consumer at distance 1
        assert buckets.dead == 1     # second value never read

    def test_distance_buckets_boundaries(self):
        for distance, bucket in ((3, "d1_3"), (4, "d4_7"), (7, "d4_7"),
                                 (8, "d8p")):
            tb = TraceBuilder()
            tb.alu(dest=1, srcs=())
            for _ in range(distance - 1):
                tb.alu(dest=2, srcs=())     # filler, rewrites r2
            tb.alu(dest=3, srcs=(1,))       # consumer at `distance`
            buckets = characterize_distances(tb.build())
            assert getattr(buckets, bucket) >= 1, (distance, bucket)

    def test_noncandidate_consumer_classified(self, tb):
        tb.alu(dest=1, srcs=())
        tb.load(dest=2, base=1)     # nearest dependent is a load
        buckets = characterize_distances(tb.build())
        assert buckets.noncand == 1

    def test_store_data_read_is_noncandidate(self, tb):
        tb.alu(dest=1, srcs=())
        tb.store(addr_src=9, data_src=1)   # data half consumes r1
        buckets = characterize_distances(tb.build())
        assert buckets.noncand == 1

    def test_store_addr_read_is_candidate(self, tb):
        tb.alu(dest=1, srcs=())
        tb.store(addr_src=1, data_src=9)   # addr-gen consumes r1
        buckets = characterize_distances(tb.build())
        assert buckets.d1_3 == 1

    def test_overwrite_means_dead(self, tb):
        tb.alu(dest=1, srcs=())
        tb.alu(dest=1, srcs=())     # rewrites r1 unread
        tb.alu(dest=2, srcs=(1,))
        buckets = characterize_distances(tb.build())
        # Dead: the overwritten first r1 *and* the final r2 (unread at
        # trace end).
        assert buckets.dead == 2
        assert buckets.d1_3 == 1

    def test_only_first_reader_counts(self, tb):
        tb.alu(dest=1, srcs=())
        tb.load(dest=2, base=1)      # nearest: non-candidate
        tb.alu(dest=3, srcs=(1,))    # later candidate reader ignored
        buckets = characterize_distances(tb.build())
        assert buckets.noncand == 1                  # r1's fate: the load
        assert buckets.d1_3 + buckets.d4_7 + buckets.d8p == 0
        assert buckets.dead == 1                     # r3 never read

    def test_distances_in_instructions_not_ops(self, tb):
        """Store halves share one instruction slot; the distance metric
        counts instructions (Figure 6's x-axis)."""
        tb.alu(dest=1, srcs=())
        tb.store(addr_src=9, data_src=8)   # 2 ops, 1 instruction
        tb.store(addr_src=9, data_src=8)
        tb.store(addr_src=9, data_src=8)
        tb.alu(dest=2, srcs=(1,))          # 4 instructions later → d4_7
        buckets = characterize_distances(tb.build())
        assert buckets.d4_7 == 1

    def test_fractions_sum_to_one(self):
        trace = generate_trace(get_profile("gcc"), 3000)
        buckets = characterize_distances(trace)
        total = (buckets.fraction("d1_3") + buckets.fraction("d4_7")
                 + buckets.fraction("d8p") + buckets.fraction("noncand")
                 + buckets.fraction("dead"))
        assert total == pytest.approx(1.0)

    def test_gap_shorter_than_vortex(self):
        gap = characterize_distances(generate_trace(get_profile("gap"),
                                                    5000))
        vortex = characterize_distances(
            generate_trace(get_profile("vortex"), 5000))
        assert gap.within_scope > vortex.within_scope


class TestGroupability:
    def test_pair_grouped(self, tb):
        tb.alu(dest=1, srcs=())
        tb.alu(dest=2, srcs=(1,))
        result = characterize_groupability(tb.build(), mop_limit=2)
        assert result.grouped == 2
        assert result.mops == 1

    def test_2x_limit_caps_group(self, tb):
        # A chain of 4: with 2x MOPs, two pairs of two.
        tb.alu(dest=1, srcs=())
        tb.alu(dest=2, srcs=(1,))
        tb.alu(dest=3, srcs=(2,))
        tb.alu(dest=4, srcs=(3,))
        two = characterize_groupability(tb.build(), mop_limit=2)
        assert two.grouped == 4
        assert two.mops == 2

    def test_8x_collapses_whole_chain(self, tb):
        tb.alu(dest=1, srcs=())
        tb.alu(dest=2, srcs=(1,))
        tb.alu(dest=3, srcs=(2,))
        tb.alu(dest=4, srcs=(3,))
        eight = characterize_groupability(tb.build(), mop_limit=8)
        assert eight.mops == 1
        assert eight.avg_mop_size == pytest.approx(4.0)

    def test_scope_limits_grouping(self, tb):
        tb.alu(dest=1, srcs=())
        for _ in range(8):                 # push consumer out of scope
            tb.load(dest=9, base=8)
        tb.alu(dest=2, srcs=(1,))
        result = characterize_groupability(tb.build(), mop_limit=2)
        assert result.grouped == 0

    def test_loads_never_group(self, tb):
        tb.load(dest=1, base=9)
        tb.load(dest=2, base=1)
        result = characterize_groupability(tb.build(), mop_limit=2)
        assert result.grouped == 0

    def test_8x_at_least_2x(self):
        trace = generate_trace(get_profile("perl"), 4000)
        two = characterize_groupability(trace, 2)
        eight = characterize_groupability(trace, 8)
        assert eight.grouped >= two.grouped

    def test_avg_8x_size_in_paper_band(self):
        """Paper: 2.2 ~ 3.0 instructions per 8x MOP."""
        trace = generate_trace(get_profile("crafty"), 6000)
        eight = characterize_groupability(trace, 8)
        assert 2.0 <= eight.avg_mop_size <= 4.0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("T", [{"a": 1.0, "b": 22.5}],
                            ["bench1"], precision=1)
        assert "bench1" in text and "22.5" in text

    def test_empty_table(self):
        assert "no data" in render_table("T", [], [])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_geomean_nan_poisons(self):
        import math
        assert math.isnan(geomean([1.0, float("nan"), 4.0]))

    def test_render_bars(self):
        from repro.analysis.reporting import render_bars
        text = render_bars("B", {"x": 0.5, "y": 1.0}, width=10,
                           reference=1.0)
        assert "x" in text and "0.500" in text
        # The shorter value draws a proportionally shorter bar.
        x_line = next(l for l in text.splitlines() if l.startswith("x"))
        y_line = next(l for l in text.splitlines() if l.startswith("y"))
        assert x_line.count("█") < y_line.count("█")

    def test_render_bars_empty(self):
        from repro.analysis.reporting import render_bars
        assert "no data" in render_bars("B", {})

    def test_experiment_result_bars(self):
        from repro.experiments import table2
        result = table2(benchmarks=["gap"], num_insts=800)
        text = result.render_bars("IPC_32", reference=None)
        assert "gap" in text and "█" in text
