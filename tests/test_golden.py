"""Golden regression tests: exact deterministic results.

The simulator is fully deterministic (seeded generators, no wall-clock, no
hash randomization), so small configurations have *exact* expected values.
These tests freeze them: any change to scheduling semantics, workload
generation, or event ordering shows up here first, with a clear diff.

When a change is *intentional* (e.g., a modelling fix), regenerate with:

    python -m tests.test_golden

which prints the current values in copy-pasteable form.
"""

import pytest

from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.workloads import generate_trace, get_profile
from repro.workloads.kernels import kernel_trace

#: (workload, scheduler, wakeup, iq) → (cycles, committed, mops, replays)
#: Regenerate via `python -m tests.test_golden` after intentional changes.
GOLDEN = {
    ('gap', '2-cycle', None, 32): (1691, 3000, 0, 14),
    ('gap', 'base', None, 32): (1503, 3000, 0, 21),
    ('gap', 'macro-op', '2-src', 32): (1525, 3000, 541, 17),
    ('gap', 'macro-op', 'wired-OR', 32): (1510, 3000, 547, 18),
    ('gap', 'select-free-scoreboard', None, 32): (1804, 3000, 0, 2049),
    ('gap', 'select-free-squash-dep', None, 32): (1488, 3000, 0, 19),
    ('kernel:fibonacci', '2-cycle', None, 32): (215, 246, 0, 0),
    ('kernel:vector_sum', 'base', None, 32): (108, 261, 0, 1),
    ('kernel:vector_sum', 'macro-op', 'wired-OR', 32): (161, 261, 9, 1),
    ('mcf', 'base', None, 32): (9965, 3000, 0, 959),
    ('mcf', 'macro-op', 'wired-OR', 32): (10260, 3000, 287, 828),
    ('vortex', 'macro-op', 'wired-OR', None): (2129, 3000, 277, 139),
}

_SCHEDULERS = {kind.value: kind for kind in SchedulerKind}


def _run(workload, scheduler, wakeup, iq):
    if workload.startswith("kernel:"):
        trace = kernel_trace(workload.split(":", 1)[1])
    else:
        trace = generate_trace(get_profile(workload), 3000)
    kwargs = {"scheduler": _SCHEDULERS[scheduler], "iq_size": iq}
    if wakeup is not None:
        kwargs["wakeup_style"] = WakeupStyle(wakeup)
    stats = simulate(trace, MachineConfig(**kwargs))
    return (stats.cycles, stats.committed_insts, stats.mops_formed,
            stats.replayed_ops)


@pytest.mark.parametrize("key", sorted(GOLDEN, key=str))
def test_golden(key):
    assert _run(*key) == GOLDEN[key], key


def _regenerate():
    print("GOLDEN = {")
    for key in sorted(GOLDEN, key=str):
        print(f"    {key!r}: {_run(*key)!r},")
    print("}")


if __name__ == "__main__":
    _regenerate()
