# Bad fixture for SL012: the pool initializer mutates module-level
# mutable state and the dispatched worker enters a module-level lock.
# Under spawn the children get fresh copies (the mutation is lost); a
# forked lock can be copied in the held state and deadlock the worker.
import threading
from multiprocessing import Pool

_LOCK = threading.Lock()
_CACHE: dict = {}


def _init_worker() -> None:
    _CACHE["ready"] = True


def _work(item: int) -> int:
    with _LOCK:
        return item * 2


def run(items):
    with Pool(initializer=_init_worker) as pool:
        return pool.map(_work, items)
