# Bad fixture for SL013: the fast path acks 202 without journalling,
# so a crash after that ack loses an accepted job.  The slow path is
# properly dominated by the fsync and must not be reported.
from repro.service.journal import JobJournal


class JobServer:
    def __init__(self, journal: JobJournal) -> None:
        self.journal = journal

    async def submit(self, body, fast: bool):
        if fast:
            return 202, {"queued": True}  # finding: ack before journal
        self.journal.accept("job", body)
        return 202, {"queued": True}
