# A synchronous helper that blocks.  Legal where it lives (plain
# function outside the service's coroutines) — the hazard is a service
# coroutine reaching it.
import time


def backoff(seconds: float) -> None:
    time.sleep(seconds)
