# Bad fixture for SL011: the coroutine itself contains no blocking
# call (SL009 stays quiet) but transitively reaches time.sleep through
# a cross-module helper, stalling the event loop.
from repro.experiments.retry import backoff


async def poll(conn):
    backoff(0.05)
    return conn
