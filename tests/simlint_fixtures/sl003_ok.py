# Clean fixture for SL003: both sanctioned shapes — a __reduce__ that
# rebuilds from the full payload, and an __init__ that forwards its
# arguments to super().__init__ verbatim.
from typing import Tuple


class StuckError(Exception):
    def __init__(self, cycle: int, head: str) -> None:
        super().__init__(f"stuck at cycle {cycle}: {head}")
        self.cycle = cycle
        self.head = head

    def __reduce__(self) -> Tuple[type, tuple]:
        return (type(self), (self.cycle, self.head))


class ForwardingError(Exception):
    def __init__(self, cycle: int, head: str) -> None:
        super().__init__(cycle, head)
        self.cycle = cycle
        self.head = head
