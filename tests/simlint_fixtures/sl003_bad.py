# Known-bad fixture: the original DeadlockError shape — an exception
# whose __init__ collapses its payload into a single message before
# calling super().__init__, with no __reduce__.  Unpickling in the
# worker-pool path raises TypeError (missing positional arguments).
class StuckError(Exception):
    def __init__(self, cycle: int, head: str) -> None:
        super().__init__(f"stuck at cycle {cycle}: {head}")
        self.cycle = cycle
        self.head = head
