# Clean fixture for SL012: workers operate on their arguments only.
# The module-level lock is used by the host-side API, which never runs
# inside a pool child — the reachability walk must not blame it.
import threading
from multiprocessing import Pool

_LOCK = threading.Lock()


def host_side(value: int) -> int:
    with _LOCK:
        return value + 1


def _work(item: int) -> int:
    scratch = {"item": item}
    scratch["doubled"] = item * 2
    return scratch["doubled"]


def run(items):
    with Pool() as pool:
        return pool.map(_work, items)
