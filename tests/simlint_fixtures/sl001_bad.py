# Known-bad fixture: wall-clock and ambient randomness in the simulated
# core.  Copied under repro/core/ by the test harness; SL001 must flag
# every call below.
import random
import time
from os import urandom


def tiebreak() -> float:
    return time.time()


def jitter() -> float:
    return random.random()


def entropy() -> bytes:
    return urandom(8)
