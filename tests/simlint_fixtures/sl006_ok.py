# Clean fixture for SL006: narrow handlers, and a BaseException handler
# that re-raises after cleanup.
def drain(queue) -> int:
    done = 0
    while True:
        try:
            queue.pop()
            done += 1
        except IndexError:
            break
    return done


def guard(fn, log) -> None:
    try:
        fn()
    except BaseException:
        log("interrupted")
        raise
