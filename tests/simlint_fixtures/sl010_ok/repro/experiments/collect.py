# Clean fixture for SL010: measured durations arrive as *data* (caller
# computed them in the measurement layer), and the tainted helper's
# return value never reaches a stats field.
from repro.core.stats import SimStats
from repro.perf.wallclock import sample_now


def stamp(stats: SimStats, elapsed: float) -> None:
    stats.wall_seconds = elapsed


def advance(stats: SimStats, cycles: int) -> None:
    stats.cycles = stats.cycles + cycles


def log_sample() -> float:
    # Tainted, but flows to the perf log — not into SimStats.
    return sample_now()
