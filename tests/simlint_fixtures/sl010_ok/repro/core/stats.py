# Sink class for the SL010 clean tree (same shape as the bad tree).
from dataclasses import dataclass
from typing import Dict


@dataclass
class SimStats:
    cycles: int = 0
    wall_seconds: float = 0.0

    def summary(self) -> Dict[str, float]:
        return {"cycles": self.cycles, "wall_seconds": self.wall_seconds}
