# Wall-clock reads are sanctioned in the perf layer; the clean tree
# keeps the tainted value out of the stats sink entirely.
import time


def sample_now() -> float:
    return time.time()
