# Known-bad fixture: a cell_key that forgets max_cycles (the PR 2 cache
# collision), hashes the config as a string instead of asdict(), and
# carries a stale exclusion.  Copied to repro/experiments/executor.py by
# the test harness; SL005 must flag all three defects.
import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass
class Config:
    width: int = 8


@dataclass
class SimCell:
    config: Config
    profile: str
    num_insts: int
    seed: int
    max_cycles: Optional[int] = None
    label: str = ""


CACHE_KEY_EXCLUDED = frozenset({"label", "colour"})


def cell_key(cell: SimCell) -> str:
    payload = f"{cell.config}|{cell.profile}|{cell.num_insts}|{cell.seed}"
    return hashlib.sha256(payload.encode()).hexdigest()
