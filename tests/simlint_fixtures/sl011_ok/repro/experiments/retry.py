# Same blocking helper as the bad tree; the clean tree dispatches it
# off the event loop.
import time


def backoff(seconds: float) -> None:
    time.sleep(seconds)
