# Clean fixture for SL011: the blocking helper runs in the executor.
# The nested plain def is never *called* by the coroutine — only handed
# to run_in_executor — so no blocking chain starts at poll().
import asyncio

from repro.experiments.retry import backoff


async def poll(conn):
    loop = asyncio.get_running_loop()

    def work() -> None:
        backoff(0.05)

    await loop.run_in_executor(None, work)
    return conn
