# Clean fixture for SL001: the sanctioned determinism patterns — a
# seeded generator threaded explicitly, and cycle counters for time.
import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def draw(rng: random.Random) -> float:
    return rng.random()


def elapsed(now_cycle: int, start_cycle: int) -> int:
    return now_cycle - start_cycle
