"""Clean: durations arrive as data measured by the harness/executor."""


def render_with_timing(render, elapsed_seconds: float) -> str:
    text = render()
    return f"{text} ({elapsed_seconds:.3f}s)"


def stamp(now_seconds: float) -> float:
    return now_seconds
