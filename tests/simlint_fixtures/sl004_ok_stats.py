# Clean fixture for SL004: every SimStats counter is surfaced by at
# least one accessor, so nothing can silently stop being reported.
from dataclasses import dataclass
from typing import Dict


@dataclass
class SimStats:
    cycles: int = 0
    fetched_ops: int = 0
    ghost_counter: int = 0

    def ipc(self) -> float:
        return self.fetched_ops / max(1, self.cycles)

    def extras(self) -> Dict[str, int]:
        return {"ghost": self.ghost_counter}
