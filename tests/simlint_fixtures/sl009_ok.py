"""Clean: asyncio equivalents, blocking work shipped to a thread."""

import asyncio
import time


async def handle() -> None:
    await asyncio.sleep(0.1)
    loop = asyncio.get_running_loop()

    def probe() -> None:
        # Nested plain def: runs on a worker thread via
        # run_in_executor, where blocking is the whole point.
        time.sleep(0.1)

    await loop.run_in_executor(None, probe)


def poll() -> None:
    # A synchronous helper (the CLI client side): not a coroutine,
    # free to block its own thread.
    time.sleep(0.1)
