# Known-bad fixture: a bare except and a swallowed BaseException.  The
# first hides KeyboardInterrupt/SystemExit; the second eats them without
# re-raising.  SL006 must flag both handlers.
def drain(queue) -> int:
    done = 0
    while True:
        try:
            queue.pop()
            done += 1
        except:  # noqa: E722
            break
    return done


def guard(fn) -> None:
    try:
        fn()
    except BaseException:
        pass
