# Known-bad fixture: a SimStats with a write-only counter.  Copied to
# repro/core/stats.py by the test harness; SL004 must flag the field
# that no accessor ever reads.
from dataclasses import dataclass


@dataclass
class SimStats:
    cycles: int = 0
    fetched_ops: int = 0
    ghost_counter: int = 0

    def ipc(self) -> float:
        return self.fetched_ops / max(1, self.cycles)
