# Sink class for the SL010 fixture tree; mirrors the real SimStats
# shape (every counter surfaced) so SL004 stays quiet.
from dataclasses import dataclass
from typing import Dict


@dataclass
class SimStats:
    cycles: int = 0
    wall_seconds: float = 0.0

    def summary(self) -> Dict[str, float]:
        return {"cycles": self.cycles, "wall_seconds": self.wall_seconds}
