# Bad fixture for SL010: wall-clock values flow across a module
# boundary into SimStats.  SL001 never fires here (repro.experiments is
# outside its scope and the source lives in repro.perf), so only the
# transitive taint walk can catch these.
from repro.core.stats import SimStats
from repro.perf.wallclock import sample_now


def stamp(stats: SimStats) -> None:
    started = sample_now()
    stats.wall_seconds = started  # finding: two-hop wall-clock taint


def record(stats: SimStats, value: float) -> None:
    stats.cycles = value  # param sink: callers feeding taint are flagged


def snapshot(stats: SimStats) -> None:
    record(stats, sample_now())  # finding: taint through record()'s param
