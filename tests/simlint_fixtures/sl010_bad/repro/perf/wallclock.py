# Hop 1 of the transitive taint: a perf-layer helper (where wall-clock
# reads are sanctioned) whose return value carries the taint out.
import time


def sample_now() -> float:
    return time.time()
