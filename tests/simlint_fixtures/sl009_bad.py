"""Known-bad: blocking calls inside repro.service coroutines."""

import socket
import subprocess
import time
from time import sleep


async def handle(host: str, port: int) -> bytes:
    time.sleep(0.1)
    sleep(0.1)
    subprocess.run(["repro-sim", "list"], check=False)
    sock = socket.create_connection((host, port))
    return sock.recv(1)
