# Known-bad fixture: the PR 3 regression — an eager repro.trace import
# in the model layer.  Copied under repro/core/; SL002 must flag both
# imports (the second is eager too: class bodies execute at import time).
from repro.trace.events import TraceEvent


class Recorder:
    import repro.experiments  # noqa: F401

    def note(self, event: TraceEvent) -> None:
        self.last = event
