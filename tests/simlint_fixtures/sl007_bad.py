"""Known-bad: wall-clock timing outside the measurement layer."""

import time
from time import perf_counter


def render_with_timing(render) -> str:
    start = time.perf_counter()          # SL007: timing in a model layer
    text = render()
    elapsed = perf_counter() - start     # SL007: from-import form too
    return f"{text} ({elapsed:.3f}s)"


def stamp() -> float:
    return time.time()                   # SL007: ambient wall clock
