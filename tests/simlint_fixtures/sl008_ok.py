# Sanctioned variant: the model stays dependency-free and reaches the
# vectorized kernel only through the backend registry's lazy loader.
from repro.core.backend import get_backend


def processor_for(config):
    return get_backend(config.backend).processor_class()


def centroid(points):
    total = [0.0] * len(points[0])
    for point in points:
        for i, value in enumerate(point):
            total[i] += value
    return [value / len(points) for value in total]
