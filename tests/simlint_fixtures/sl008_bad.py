# Known-bad fixture: numpy leaking out of the backend package.  The
# eager module-level import, the aliased submodule import and the
# function-local "lazy" import are all violations — confinement is
# total outside repro.core.backend.
import numpy as np
from numpy.linalg import norm


def centroid(points):
    import numpy
    return numpy.mean(np.asarray(points), axis=0), norm(points[0])
