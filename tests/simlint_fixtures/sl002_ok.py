# Clean fixture for SL002: the sanctioned lazy-import patterns.
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.trace.events import TraceEvent


def emit(event: "TraceEvent") -> None:
    from repro.trace.sink import JsonlTraceSink
    JsonlTraceSink("/tmp/t.jsonl").emit(event)
