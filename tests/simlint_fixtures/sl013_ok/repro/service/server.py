# Clean fixture for SL013: every path that acks 202 first passes
# through the journal's fsync — including the early-validation branch,
# which rejects with a non-202 status and is therefore exempt.
from repro.service.journal import JobJournal


class JobServer:
    def __init__(self, journal: JobJournal) -> None:
        self.journal = journal

    async def submit(self, body, fast: bool):
        if body is None:
            return 400, {"error": "empty body"}
        self.journal.accept("job", body)
        if fast:
            return 202, {"queued": True, "fast": True}
        return 202, {"queued": True}
