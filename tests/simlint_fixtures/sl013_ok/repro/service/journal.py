# Same journal as the bad tree.
import os


class JobJournal:
    def __init__(self, path: str) -> None:
        self.path = path

    def accept(self, job_id: str, payload) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(f"{job_id}:{payload}\n")
            handle.flush()
            os.fsync(handle.fileno())
