# Clean fixture for SL005: every SimCell field is hashed or explicitly
# excluded, and the config enters the key via asdict() so future Config
# fields participate automatically.
import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional


@dataclass
class Config:
    width: int = 8


@dataclass
class SimCell:
    config: Config
    profile: str
    num_insts: int
    seed: int
    max_cycles: Optional[int] = None
    label: str = ""


CACHE_KEY_EXCLUDED = frozenset({"label"})


def cell_key(cell: SimCell) -> str:
    payload = json.dumps({
        "config": asdict(cell.config),
        "profile": cell.profile,
        "num_insts": cell.num_insts,
        "seed": cell.seed,
        "max_cycles": cell.max_cycles,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()
