"""Tests for the parallel execution engine and its result cache."""

import dataclasses
import json

import pytest

from repro.core import MachineConfig, SchedulerKind
from repro.core.backend import get_backend
from repro.experiments import figure14
from repro.experiments.executor import (
    Executor,
    ResultCache,
    SimCell,
    cell_key,
    default_cache_dir,
    get_default_executor,
    set_default_executor,
)

BENCH = ["gap", "vortex"]
N = 1200


def grid_configs():
    return {
        "base": MachineConfig.paper_default(scheduler=SchedulerKind.BASE),
        "2cyc": MachineConfig.paper_default(
            scheduler=SchedulerKind.TWO_CYCLE),
    }


def cells_for(configs, benchmarks=BENCH, num_insts=N):
    return [SimCell(bench, label, config, num_insts, seed=1)
            for bench in benchmarks
            for label, config in configs.items()]


class TestCellKey:
    def test_stable(self):
        cell = cells_for(grid_configs())[0]
        assert cell_key(cell) == cell_key(cell)

    def test_config_change_changes_key(self):
        config = MachineConfig.paper_default(scheduler=SchedulerKind.BASE)
        a = SimCell("gap", "x", config, N, 1)
        b = SimCell("gap", "x", dataclasses.replace(config, iq_size=16),
                    N, 1)
        assert cell_key(a) != cell_key(b)

    def test_seed_and_budget_in_key(self):
        config = MachineConfig.paper_default()
        base = SimCell("gap", "x", config, N, 1)
        assert cell_key(base) != cell_key(SimCell("gap", "x", config, N, 2))
        assert cell_key(base) != cell_key(
            SimCell("gap", "x", config, N + 1, 1))

    def test_label_not_in_key(self):
        """The label names a column; the result is label-independent."""
        config = MachineConfig.paper_default()
        assert cell_key(SimCell("gap", "a", config, N, 1)) == \
            cell_key(SimCell("gap", "b", config, N, 1))


class TestBackendKnob:
    def test_backend_excluded_from_cell_key(self):
        """Backends are parity-tested bit-identical, so both map to one
        cache entry (CACHE_SCHEMA 4)."""
        config = MachineConfig.paper_default()
        a = SimCell("gap", "x", config, N, 1)
        b = SimCell("gap", "x",
                    dataclasses.replace(config, backend="numpy"), N, 1)
        assert cell_key(a) == cell_key(b)

    def test_backends_share_one_cache_entry(self, tmp_path):
        """A numpy-backend run must hit a python-populated cache on
        every cell — that sharing is the point of excluding the field,
        and it holds even on hosts without numpy (hits never load it)."""
        configs = grid_configs()
        cache_dir = tmp_path / "cache"
        cold = Executor(jobs=1, cache=ResultCache(cache_dir),
                        backend="python")
        first = cold.run_grid(configs, BENCH, N)
        assert cold.last_summary.simulated == 4
        warm = Executor(jobs=1, cache=ResultCache(cache_dir),
                        backend="numpy")
        second = warm.run_grid(configs, BENCH, N)
        assert warm.last_summary.cache_hits == 4
        assert warm.last_summary.simulated == 0
        assert first == second

    @pytest.mark.skipif(not get_backend("numpy").available(),
                        reason="numpy backend unavailable on this host")
    def test_override_rewrites_every_config(self):
        executor = Executor(jobs=1, backend="numpy")
        grid = executor.run_grid(grid_configs(), ["gap"], N)
        recorded = {cell.config.backend
                    for cell in executor.last_outcomes}
        assert recorded == {"numpy"}
        assert grid  # the override changed selection, not results shape

    def test_none_respects_config_field(self):
        executor = Executor(jobs=1)
        executor.run_grid(grid_configs(), ["gap"], N)
        recorded = {cell.config.backend
                    for cell in executor.last_outcomes}
        assert recorded == {"python"}

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Executor(jobs=1, backend="fortran")


class TestSerialParallelEquality:
    def test_grid_results_identical(self):
        configs = grid_configs()
        serial = Executor(jobs=1)
        parallel = Executor(jobs=2)
        a = serial.run_grid(configs, BENCH, N)
        b = parallel.run_grid(configs, BENCH, N)
        assert a == b  # SimStats dataclasses compare field-by-field
        assert serial.last_summary.simulated == 4
        assert parallel.last_summary.simulated == 4

    def test_figure_render_identical(self):
        serial = figure14(benchmarks=BENCH, num_insts=N,
                          executor=Executor(jobs=1))
        parallel = figure14(benchmarks=BENCH, num_insts=N,
                            executor=Executor(jobs=3))
        assert serial.render() == parallel.render()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        configs = grid_configs()
        cache = ResultCache(tmp_path / "cache")
        executor = Executor(jobs=1, cache=cache)
        first = executor.run_grid(configs, BENCH, N)
        assert executor.last_summary.cache_hits == 0
        assert executor.last_summary.simulated == 4

        warm = Executor(jobs=1, cache=ResultCache(tmp_path / "cache"))
        second = warm.run_grid(configs, BENCH, N)
        assert warm.last_summary.cache_hits == 4
        assert warm.last_summary.simulated == 0
        assert warm.last_summary.hit_rate == 1.0
        assert first == second

    def test_parallel_reads_serial_cache(self, tmp_path):
        configs = grid_configs()
        cache_dir = tmp_path / "cache"
        Executor(jobs=1, cache=ResultCache(cache_dir)).run_grid(
            configs, BENCH, N)
        warm = Executor(jobs=2, cache=ResultCache(cache_dir))
        warm.run_grid(configs, BENCH, N)
        assert warm.last_summary.cache_hits == 4

    def test_config_hash_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = Executor(jobs=1, cache=cache)
        executor.run_grid(grid_configs(), ["gap"], N)
        changed = {
            "base": MachineConfig.paper_default(
                scheduler=SchedulerKind.BASE, iq_size=16),
            "2cyc": MachineConfig.paper_default(
                scheduler=SchedulerKind.TWO_CYCLE, iq_size=16),
        }
        executor.run_grid(changed, ["gap"], N)
        assert executor.last_summary.cache_hits == 0
        assert executor.last_summary.simulated == 2

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        cache = ResultCache()
        executor = Executor(jobs=1, cache=cache)
        executor.run_grid({"base": MachineConfig.paper_default()},
                          ["gap"], N)
        assert cache.root == tmp_path / "env-cache"
        assert len(cache.entries()) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = Executor(jobs=1, cache=cache)
        executor.run_grid({"base": MachineConfig.paper_default()},
                          ["gap"], N)
        entry = cache.entries()[0]
        entry.write_text("{not json")
        warm_cache = ResultCache(tmp_path / "cache")
        warm = Executor(jobs=1, cache=warm_cache)
        warm.run_grid({"base": MachineConfig.paper_default()}, ["gap"], N)
        assert warm.last_summary.cache_hits == 0
        assert warm.last_summary.simulated == 1
        # ...and the entry was rewritten with valid content.
        assert json.loads(entry.read_text())["benchmark"] == "gap"

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        """A torn entry is moved aside, not left to miss forever."""
        cache = ResultCache(tmp_path / "cache")
        executor = Executor(jobs=1, cache=cache)
        executor.run_grid({"base": MachineConfig.paper_default()},
                          ["gap"], N)
        entry = cache.entries()[0]
        entry.write_text("{not json")
        fresh = ResultCache(tmp_path / "cache")
        key = entry.parent.name + entry.stem
        assert fresh.get(key) is None
        assert fresh.misses == 1
        assert not entry.exists()
        assert entry.with_suffix(".corrupt").exists()
        # a second lookup is a plain miss (nothing left to re-parse)
        assert fresh.get(key) is None

    def test_incompatible_layout_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = Executor(jobs=1, cache=cache)
        executor.run_grid({"base": MachineConfig.paper_default()},
                          ["gap"], N)
        entry = cache.entries()[0]
        entry.write_text(json.dumps(
            {"stats": {"no_such_simstats_field": 1}}))
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(entry.parent.name + entry.stem) is None
        assert not entry.exists()

    def test_size_and_clear_tolerate_concurrent_unlink(self, tmp_path,
                                                       monkeypatch):
        """Another process may unlink entries between listing and
        stat/unlink; both operations must shrug the race off."""
        cache = ResultCache(tmp_path / "cache")
        Executor(jobs=1, cache=cache).run_grid(
            {"base": MachineConfig.paper_default()}, ["gap"], N)
        real = cache.entries()[0]
        ghost = cache.root / "zz" / ("0" * 62 + ".json")
        monkeypatch.setattr(cache, "entries", lambda: [real, ghost])
        assert cache.size_bytes() == real.stat().st_size
        assert cache.clear() == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        Executor(jobs=1, cache=cache).run_grid(grid_configs(), ["gap"], N)
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []


class TestSummary:
    def test_timing_instrumentation(self):
        executor = Executor(jobs=1)
        executor.run_grid(grid_configs(), ["gap"], N)
        summary = executor.last_summary
        assert summary.cells == 2
        assert set(summary.cell_seconds) == {"gap/base", "gap/2cyc"}
        assert all(t > 0 for t in summary.cell_seconds.values())
        assert summary.wall_seconds >= summary.sim_seconds * 0.5
        assert "2 cells" in summary.render()

    def test_total_summary_accumulates(self):
        executor = Executor(jobs=1)
        executor.run_grid(grid_configs(), ["gap"], N)
        executor.run_grid(grid_configs(), ["vortex"], N)
        assert executor.total_summary.cells == 4
        assert executor.total_summary.simulated == 4

    def test_progress_lines(self, capsys):
        import sys
        executor = Executor(jobs=1, progress=True, stream=sys.stderr)
        executor.run_grid({"base": MachineConfig.paper_default()},
                          ["gap"], N)
        err = capsys.readouterr().err
        assert "[1/1] gap/base" in err

    def test_progress_marks_cached_cells(self, tmp_path, capsys):
        import sys
        cache_dir = tmp_path / "cache"
        Executor(jobs=1, cache=ResultCache(cache_dir)).run_grid(
            {"base": MachineConfig.paper_default()}, ["gap"], N)
        warm = Executor(jobs=1, cache=ResultCache(cache_dir),
                        progress=True, stream=sys.stderr)
        warm.run_grid({"base": MachineConfig.paper_default()}, ["gap"], N)
        assert "[1/1] gap/base cached" in capsys.readouterr().err

    def test_speedup_honest_when_all_cached(self, tmp_path):
        """An all-hit run simulated nothing; speedup must not claim 1.0x."""
        cache_dir = tmp_path / "cache"
        Executor(jobs=1, cache=ResultCache(cache_dir)).run_grid(
            grid_configs(), ["gap"], N)
        warm = Executor(jobs=1, cache=ResultCache(cache_dir))
        warm.run_grid(grid_configs(), ["gap"], N)
        summary = warm.last_summary
        assert summary.simulated == 0
        assert summary.speedup == 0.0
        assert "(all cached)" in summary.render()
        assert "speedup" not in summary.render()


class TestDefaultExecutor:
    def test_default_is_serial_uncached(self):
        executor = get_default_executor()
        assert executor.jobs == 1
        assert executor.cache is None

    def test_set_and_restore(self):
        replacement = Executor(jobs=2)
        previous = set_default_executor(replacement)
        try:
            assert get_default_executor() is replacement
        finally:
            set_default_executor(previous)


class TestDeduplication:
    def test_duplicate_cells_simulated_once(self):
        executor = Executor(jobs=1)
        cell = SimCell("gap", "base", MachineConfig.paper_default(), N, 1)
        results = executor.run_cells([cell, cell, cell])
        assert len(results) == 1
        assert executor.last_summary.cells == 1

    def test_duplicate_cells_parallel(self):
        """Duplicates collapse before dispatch, in the pool path too."""
        executor = Executor(jobs=2)
        config = MachineConfig.paper_default()
        a = SimCell("gap", "base", config, N, 1)
        b = SimCell("vortex", "base", config, N, 1)
        results = executor.run_cells([a, b, a, b, a])
        assert len(results) == 2
        assert executor.last_summary.cells == 2
        assert executor.last_summary.simulated == 2


class TestRunGrid:
    def test_explicit_benchmark_subset_preserves_order(self):
        executor = Executor(jobs=1)
        grid = executor.run_grid(grid_configs(), ["vortex", "gap"], N)
        assert list(grid) == ["vortex", "gap"]
        for by_config in grid.values():
            assert set(by_config) == {"base", "2cyc"}
            assert all(s.ipc > 0 for s in by_config.values())
        assert executor.last_summary.cells == 4


@pytest.mark.slow
class TestParallelScale:
    def test_twelve_cell_grid_parallel(self):
        """Full-width fan-out: more cells than workers, mixed configs."""
        configs = {
            f"iq{size}": MachineConfig.paper_default(iq_size=size)
            for size in (8, 16, 32)
        }
        serial = Executor(jobs=1).run_grid(
            configs, ["gap", "vortex", "mcf", "gcc"], 800)
        parallel = Executor(jobs=4).run_grid(
            configs, ["gap", "vortex", "mcf", "gcc"], 800)
        assert serial == parallel
