"""Tests for the experiment harness (figures, tables, ablations)."""

import pytest

from repro.experiments import (
    figure6,
    figure7,
    figure13,
    figure14,
    figure15,
    figure16,
    table2,
)
from repro.experiments.ablations import (
    detection_delay_ablation,
    independent_mops_ablation,
    last_arrival_filter_ablation,
    scope_sweep,
)
from repro.experiments.runner import workload_trace

BENCH = ["gap", "vortex"]
N = 2500


class TestTraceCache:
    def test_cached_identity(self):
        a = workload_trace("gap", 1000)
        b = workload_trace("gap", 1000)
        assert a is b

    def test_distinct_keys(self):
        assert workload_trace("gap", 1000) is not workload_trace("gap", 1001)


class TestCharacterizationFigures:
    def test_figure6_rows_and_render(self):
        result = figure6(benchmarks=BENCH, num_insts=N)
        assert set(result.rows) == set(BENCH)
        for row in result.rows.values():
            assert set(row) == {"valuegen_%insts", "1~3", "4~7", "8+",
                                "not_candidate", "dead"}
            assert sum(row[k] for k in ("1~3", "4~7", "8+",
                                        "not_candidate", "dead")) == \
                pytest.approx(100.0, abs=0.5)
        text = result.render()
        assert "Figure 6" in text and "gap" in text

    def test_figure7_rows(self):
        result = figure7(benchmarks=BENCH, num_insts=N)
        for row in result.rows.values():
            # Greedy 8x grouping may strand members a fresh 2x anchor
            # captures: allow a ~1pp inversion.
            assert row["grouped_8x_%"] >= row["grouped_2x_%"] - 1.0
            assert 0 <= row["grouped_2x_%"] <= 100


class TestTimingFigures:
    def test_figure14_normalized_ratios(self):
        result = figure14(benchmarks=BENCH, num_insts=N)
        for name, row in result.rows.items():
            assert row["base_IPC"] > 0
            assert 0.5 <= row["2-cycle"] <= 1.001
            assert row["MOP-wiredOR"] >= row["2-cycle"] - 0.05

    def test_figure15_extra_stage_columns(self):
        result = figure15(benchmarks=["gap"], num_insts=N)
        row = result.rows["gap"]
        for label in ("MOP-2src+0", "MOP-2src+1", "MOP-2src+2",
                      "MOP-wiredOR+0", "MOP-wiredOR+1", "MOP-wiredOR+2"):
            assert label in row

    def test_figure16_select_free_columns(self):
        result = figure16(benchmarks=["gap"], num_insts=N)
        row = result.rows["gap"]
        # Select-free never meaningfully beats the baseline (small
        # scheduling anomalies allowed on short samples).
        assert row["select-free-scoreboard"] <= 1.02
        assert row["select-free-squash-dep"] <= 1.02

    def test_figure13_grouping_fractions(self):
        result = figure13(benchmarks=["gap"], num_insts=N)
        row = result.rows["gap"]
        assert 0 < row["wired-OR_grouped_%"] <= 100
        assert row["wired-OR_insred_%"] > 0

    def test_table2_includes_paper_reference(self):
        result = table2(benchmarks=BENCH, num_insts=N)
        assert result.rows["gap"]["paper_32"] == pytest.approx(1.73)
        assert result.rows["gap"]["IPC_32"] > 0


class TestAblations:
    def test_detection_delay(self):
        result = detection_delay_ablation(benchmarks=["gap"], num_insts=N)
        row = result.rows["gap"]
        # A 100-cycle delay costs little thanks to pointer reuse.
        assert row["delay100_rel"] >= 0.9

    def test_last_arrival_filter(self):
        result = last_arrival_filter_ablation(benchmarks=["gap"],
                                              num_insts=N)
        assert "off_rel" in result.rows["gap"]

    def test_independent_mops(self):
        result = independent_mops_ablation(benchmarks=["gap"], num_insts=N)
        row = result.rows["gap"]
        assert row["on_grouped_%"] >= row["off_grouped_%"] - 1e-9

    def test_scope_sweep_monotone(self):
        result = scope_sweep(benchmarks=BENCH, num_insts=N)
        for row in result.rows.values():
            assert (row["scope2_%"] <= row["scope4_%"]
                    <= row["scope8_%"] <= row["scope16_%"])


class TestRender:
    def test_geomean_summary_line(self):
        result = figure14(benchmarks=BENCH, num_insts=N)
        assert "geomean" in result.render()

    def test_column_accessor(self):
        result = table2(benchmarks=BENCH, num_insts=N)
        col = result.column("IPC_32")
        assert set(col) == set(BENCH)
