"""Unit tests for the functional interpreter."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.interpreter import (
    ExecutionLimitExceeded,
    Interpreter,
    run_program,
)
from repro.isa.opcodes import OpClass


def run(text: str, max_ops: int = 10_000):
    return Interpreter(assemble(text), max_ops=max_ops)


class TestArithmetic:
    def test_add_chain(self):
        interp = run("li r1, 3\nli r2, 4\nadd r3, r1, r2\nhalt")
        list(interp.run())
        assert interp.regs[3] == 7

    def test_sub_and_logic(self):
        interp = run("""
            li r1, 12
            li r2, 10
            sub r3, r1, r2
            and r4, r1, r2
            or  r5, r1, r2
            xor r6, r1, r2
            halt
        """)
        list(interp.run())
        assert interp.regs[3] == 2
        assert interp.regs[4] == 12 & 10
        assert interp.regs[5] == 12 | 10
        assert interp.regs[6] == 12 ^ 10

    def test_shifts(self):
        interp = run("li r1, 3\nslli r2, r1, 4\nsrli r3, r2, 2\nhalt")
        list(interp.run())
        assert interp.regs[2] == 48
        assert interp.regs[3] == 12

    def test_mul_div(self):
        interp = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\n"
                     "div r4, r3, r2\nhalt")
        list(interp.run())
        assert interp.regs[3] == 42
        assert interp.regs[4] == 6

    def test_divide_by_zero_yields_zero(self):
        interp = run("li r1, 5\ndiv r2, r1, r0\nhalt")
        list(interp.run())
        assert interp.regs[2] == 0

    def test_slt(self):
        interp = run("li r1, 1\nli r2, 2\nslt r3, r1, r2\n"
                     "slt r4, r2, r1\nhalt")
        list(interp.run())
        assert interp.regs[3] == 1
        assert interp.regs[4] == 0


class TestMemory:
    def test_store_then_load(self):
        interp = run("li r1, 99\nli r2, 10\nsw r1, 2(r2)\n"
                     "lw r3, 2(r2)\nhalt")
        list(interp.run())
        assert interp.regs[3] == 99
        assert interp.memory[12] == 99

    def test_uninitialized_memory_reads_zero(self):
        interp = run("li r1, 100\nlw r2, 0(r1)\nhalt")
        list(interp.run())
        assert interp.regs[2] == 0

    def test_store_emits_cracked_ops(self):
        ops = run_program(assemble("li r1, 1\nsw r1, 0(r1)\nhalt"))
        classes = [op.op_class for op in ops]
        assert OpClass.STORE_ADDR in classes
        assert OpClass.STORE_DATA in classes

    def test_load_records_address(self):
        ops = run_program(assemble("li r1, 7\nlw r2, 3(r1)\nhalt"))
        load = next(op for op in ops if op.op_class is OpClass.LOAD)
        assert load.mem_addr == 10


class TestControlFlow:
    def test_loop_executes_expected_iterations(self):
        ops = run_program(assemble("""
            li r1, 0
            li r2, 5
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """))
        adds = [op for op in ops if op.mnemonic == "addi"]
        assert len(adds) == 5

    def test_branch_outcomes_recorded(self):
        ops = run_program(assemble("""
            li r1, 1
            bez r1, skip
            addi r1, r1, 1
        skip:
            halt
        """))
        branch = next(op for op in ops if op.is_branch)
        assert not branch.taken

    def test_taken_branch_target_pc(self):
        ops = run_program(assemble("""
            li r1, 0
            bez r1, target
            nop
        target:
            halt
        """))
        branch = next(op for op in ops if op.is_branch)
        assert branch.taken
        assert branch.target_pc == 3
        assert branch.next_pc == 3

    def test_indirect_jump(self):
        interp = run("li r1, 3\njr r1\nnop\nhalt")
        ops = list(interp.run())
        assert ops[-1].op_class is OpClass.SYSCALL  # reached halt at pc 3
        assert len(ops) == 3  # li, jr, halt — nop skipped

    def test_running_off_the_end_halts(self):
        interp = run("nop")
        list(interp.run())
        assert interp.halted


class TestLimits:
    def test_infinite_loop_raises(self):
        interp = run("loop: jmp loop", max_ops=100)
        with pytest.raises(ExecutionLimitExceeded):
            list(interp.run())

    def test_sequence_numbers_are_dense(self):
        ops = run_program(assemble("li r1, 1\nsw r1, 0(r1)\nhalt"))
        assert [op.seq for op in ops] == list(range(len(ops)))
