"""Crash-recovery proof: kill the server mid-grid, restart, resume.

The scenario the service's write-ahead journal exists for, run against
real server processes:

1. Start ``repro serve`` with a ``kill`` fault armed at the first
   per-cell journal append (``REPRO_FAULT_INJECT``): the server accepts
   a grid job, simulates its first cell (which lands in the shared
   result cache), then dies abruptly via ``os._exit`` — no drain, no
   terminal journal record.
2. Assert the journal holds the accepted job with no terminal state.
3. Restart the server on the same state directory and wait for the job:
   recovery must requeue it, the already-simulated cell must resolve
   from the cache (``via == "cache"`` — never recomputed), and the rest
   must simulate.
4. Assert the merged grid is bit-identical to an uninterrupted serial
   in-process run of the same spec.
"""

import json
import os
import re
import signal
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.experiments.executor import Executor
from repro.service.journal import JobJournal
from repro.service.protocol import JobSpec

SPEC = {
    "benchmarks": ["gap", "vortex"],
    "configs": {
        "base": {"scheduler": "base"},
        "mop": {"scheduler": "macro-op"},
    },
    "num_insts": 300,
}

KILL_EXIT_CODE = 43   # faults.KILL_EXIT_CODE, hard-coded on purpose:
# the subprocess must die with the harness's distinctive code, and a
# drifting constant should fail this test loudly.


def _env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env.pop("REPRO_FAULT_INJECT", None)
    env.update(extra)
    return env


def _start_server(state_dir, env):
    """Launch ``repro serve`` and scrape its bound port."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--sessions", "1",
         "--executor-jobs", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    for _ in range(100):
        line = proc.stdout.readline()
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise AssertionError("server never printed its address")


def _cli(port, *argv, env, inp=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv,
         "--port", str(port)],
        input=inp, capture_output=True, text=True, env=env, timeout=120)


@pytest.mark.slow
def test_kill_midgrid_restart_resumes_without_recompute(tmp_path):
    state = tmp_path / "state"

    # -- phase 1: server dies right after its first cell completes ------
    proc, port = _start_server(
        state, _env(REPRO_FAULT_INJECT="serve/journal/cell=kill:1"))
    try:
        submitted = _cli(port, "submit", "--spec", "-",
                         env=_env(), inp=json.dumps(SPEC))
        assert submitted.returncode == 0, submitted.stderr
        job_id = json.loads(submitted.stdout)["id"]
        assert proc.wait(timeout=60) == KILL_EXIT_CODE
    finally:
        if proc.poll() is None:
            proc.kill()

    replay = JobJournal(state / "journal.jsonl").load()
    assert job_id in replay.jobs
    assert not replay.jobs[job_id].terminal
    # Exactly one cell made it into the cache before the kill.
    cached = list((state / "cache").glob("*/*.json"))
    assert len(cached) == 1

    # -- phase 2: restart recovers and completes the job ----------------
    proc, port = _start_server(state, _env())
    try:
        status = _cli(port, "status", job_id, env=_env())
        assert status.returncode == 0, status.stderr
        # Wait for the recovered job via submit --wait's poll loop:
        # 'status' is point-in-time, so poll here.
        import time
        for _ in range(300):
            payload = json.loads(
                _cli(port, "status", job_id, env=_env()).stdout)
            if payload["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert payload["state"] == "done", payload
        assert payload["recovered"] is True
        vias = [cell["via"] for cell in payload["cell_detail"]]
        # The pre-crash cell resolved from the cache, never recomputed;
        # the remaining three were simulated on the recovered run.
        assert vias.count("cache") == 1
        assert vias.count("sim") == 3

        result = _cli(port, "result", job_id, env=_env())
        grid = json.loads(result.stdout)
        assert grid["partial"] is False
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0

    # -- phase 3: bit-identical to an uninterrupted serial run ----------
    spec = JobSpec.from_payload(SPEC)
    serial = Executor(jobs=1, cache=None).run_cells(spec.cells())
    for cell in spec.cells():
        via_service = grid["results"][cell.benchmark][cell.label]
        assert via_service == asdict(serial[cell]), cell.name


@pytest.mark.slow
def test_sigkill_right_after_ack_loses_nothing(tmp_path):
    """An uncooperative crash (SIGKILL, no drain, no fault hooks) the
    instant after the 202: the write-ahead accept record alone must be
    enough for the next start to run the job to completion."""
    state = tmp_path / "state"
    proc, port = _start_server(state, _env())
    job_id = None
    try:
        submitted = _cli(port, "submit", "--spec", "-",
                         env=_env(), inp=json.dumps(SPEC))
        assert submitted.returncode == 0, submitted.stderr
        job_id = json.loads(submitted.stdout)["id"]
    finally:
        proc.kill()   # SIGKILL: the job is queued or mid-run, not done
        proc.wait(timeout=30)

    proc, port = _start_server(state, _env())
    try:
        import time
        for _ in range(300):
            payload = json.loads(
                _cli(port, "status", job_id, env=_env()).stdout)
            if payload["state"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert payload["state"] == "done", payload
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
