"""Unit tests for the MOP detection algorithm (Figure 9)."""

from typing import Optional, Tuple

from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.core.uop import Uop
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.mop.detection import MopDetector
from repro.mop.pointers import DEPENDENT, INDEPENDENT, PointerCache


def make_uop(seq: int, op_class: OpClass = OpClass.INT_ALU,
             dest: Optional[int] = None, srcs: Tuple[int, ...] = (),
             taken: bool = False, pc: Optional[int] = None) -> Uop:
    inst = DynInst(seq=seq, pc=pc if pc is not None else seq,
                   op_class=op_class, dest=dest, srcs=srcs, taken=taken)
    return Uop(inst, fetch_cycle=0)


def detector(wakeup_style=WakeupStyle.WIRED_OR, independent=True,
             delay=0) -> MopDetector:
    config = MachineConfig.paper_default(
        scheduler=SchedulerKind.MACRO_OP, wakeup_style=wakeup_style,
        independent_mops=independent, mop_detection_delay=delay)
    return MopDetector(config, PointerCache(detection_delay=delay))


class TestDependentDetection:
    def test_simple_pair(self):
        det = detector()
        group = [
            make_uop(0, dest=1, srcs=(9,)),
            make_uop(1, dest=2, srcs=(1,)),   # depends on uop 0
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(0, 0)
        assert pointer is not None
        assert pointer.tail_pc == 1
        assert pointer.offset == 1
        assert pointer.kind == DEPENDENT

    def test_non_candidate_tail_rejected(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.LOAD, dest=2, srcs=(1,)),  # load: no group
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_non_valuegen_head_rejected(self):
        det = detector()
        group = [
            make_uop(0, OpClass.BRANCH, srcs=(9,)),   # no dest: tail only
            make_uop(1, dest=2, srcs=(1,)),
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_nearest_consumer_selected(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, dest=2, srcs=(1,)),   # nearest consumer
            make_uop(2, dest=3, srcs=(1,)),   # farther consumer
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0).tail_pc == 1

    def test_overwritten_value_breaks_dependence(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, dest=1, srcs=(9,)),   # rewrites r1
            make_uop(2, dest=3, srcs=(1,)),   # depends on uop 1, not 0
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(1, 0)
        assert pointer is not None and pointer.tail_pc == 2
        assert det.pointers.lookup(0, 0) is None

    def test_cross_group_pairs_in_two_cycle_scope(self):
        det = detector()
        det.observe_group([make_uop(0, dest=1)], now=0)
        det.observe_group([make_uop(1, dest=2, srcs=(1,))], now=1)
        assert det.pointers.lookup(0, 1) is not None

    def test_priority_decoder_earliest_head_wins(self):
        det = detector(independent=False)
        group = [
            make_uop(0, dest=1),
            make_uop(1, dest=2),
            make_uop(2, dest=3, srcs=(1, 2)),  # consumer of both 0 and 1
        ]
        det.observe_group(group, now=0)
        # uop 2 has two sources; as a "2" mark it is the first mark in
        # uop 0's column, so head 0 claims it; head 1 loses the conflict.
        assert det.pointers.lookup(0, 0) is not None
        assert det.pointers.lookup(1, 0) is None


class TestCycleHeuristic:
    def test_two_mark_across_other_marks_rejected(self):
        """Figure 9 step n: head 0's consumers are uop 1 (not a candidate,
        but still a mark) and uop 2 (two sources).  A '2' mark may not be
        selected across other marks — potential cycle."""
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.LOAD, dest=2, srcs=(1,)),  # inval mark
            make_uop(2, dest=3, srcs=(1, 2)),              # "2" mark
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_single_source_tail_allowed_across_marks(self):
        """A '1' mark (single-operand tail) is safe at any position."""
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.LOAD, dest=2, srcs=(1,)),  # earlier mark
            make_uop(2, dest=3, srcs=(1,)),                # "1" mark
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(0, 0)
        assert pointer is not None and pointer.tail_pc == 2

    def test_first_two_mark_allowed(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, dest=3, srcs=(1, 9)),  # "2" mark, first in column
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is not None


class TestControlFlow:
    def test_one_taken_branch_sets_control_bit(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.BRANCH, srcs=(9,), taken=True),
            make_uop(2, dest=2, srcs=(1,)),
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(0, 0)
        assert pointer is not None
        assert pointer.control_bit == 1

    def test_two_taken_branches_forbid_grouping(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.BRANCH, srcs=(9,), taken=True),
            make_uop(2, OpClass.BRANCH, srcs=(9,), taken=True),
            make_uop(3, dest=2, srcs=(1,)),
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_taken_indirect_jump_forbids_grouping(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.JUMP_INDIRECT, srcs=(9,), taken=True),
            make_uop(2, dest=2, srcs=(1,)),
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_not_taken_branch_is_transparent(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, OpClass.BRANCH, srcs=(9,), taken=False),
            make_uop(2, dest=2, srcs=(1,)),
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(0, 0)
        assert pointer is not None and pointer.control_bit == 0


class TestSourceLimit:
    def test_cam2_rejects_three_merged_sources(self):
        det = detector(wakeup_style=WakeupStyle.CAM_2SRC)
        group = [
            make_uop(0, dest=1, srcs=(8, 9)),
            make_uop(1, dest=2, srcs=(1, 7)),  # merged: {8, 9, 7}
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_wired_or_accepts_three_merged_sources(self):
        det = detector(wakeup_style=WakeupStyle.WIRED_OR)
        group = [
            make_uop(0, dest=1, srcs=(8, 9)),
            make_uop(1, dest=2, srcs=(1, 7)),
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is not None

    def test_cam2_intra_dependence_needs_no_tag(self):
        det = detector(wakeup_style=WakeupStyle.CAM_2SRC)
        group = [
            make_uop(0, dest=1, srcs=(8, 9)),
            make_uop(1, dest=2, srcs=(1,)),   # only the intra edge
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is not None


class TestIndependentMops:
    def test_identical_sources_grouped(self):
        det = detector()
        group = [
            make_uop(0, dest=1, srcs=(8,)),
            make_uop(1, dest=2, srcs=(8,)),   # same source, independent
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(0, 0)
        assert pointer is not None and pointer.kind == INDEPENDENT

    def test_no_source_pairs_grouped(self):
        det = detector()
        group = [
            make_uop(0, dest=1),
            make_uop(1, dest=2),
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0).kind == INDEPENDENT

    def test_different_sources_not_grouped(self):
        det = detector()
        group = [
            make_uop(0, dest=1, srcs=(8,)),
            make_uop(1, dest=2, srcs=(7,)),
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_dependent_pass_has_priority(self):
        det = detector()
        group = [
            make_uop(0, dest=1, srcs=(8,)),
            make_uop(1, dest=2, srcs=(1,)),   # dependent on 0
            make_uop(2, dest=3, srcs=(8,)),   # identical sources to 0
        ]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0).kind == DEPENDENT

    def test_disabled_by_config(self):
        det = detector(independent=False)
        group = [make_uop(0, dest=1, srcs=(8,)),
                 make_uop(1, dest=2, srcs=(8,))]
        det.observe_group(group, now=0)
        assert det.pointers.lookup(0, 0) is None

    def test_same_register_different_writer_not_identical(self):
        """'Identical source dependences' means the same producer, not
        just the same register name."""
        group = [
            make_uop(0, dest=1, srcs=(8,)),
            make_uop(1, dest=8, srcs=(9, 7)),  # rewrites r8 (not candidate pair)
            make_uop(2, dest=2, srcs=(8,)),    # r8 now from uop 1
        ]
        det_ind = detector(independent=True)
        det_ind.observe_group(group, now=0)
        pointer = det_ind.pointers.lookup(0, 0)
        assert pointer is None or pointer.tail_pc != 2


class TestBlacklist:
    def test_blacklisted_pair_skipped_and_alternative_found(self):
        det = detector()
        det.pointers._blacklist.add((0, 1))
        group = [
            make_uop(0, dest=1),
            make_uop(1, dest=2, srcs=(1,)),   # blacklisted tail
            make_uop(2, dest=3, srcs=(1,)),   # alternative
        ]
        det.observe_group(group, now=0)
        pointer = det.pointers.lookup(0, 0)
        assert pointer is not None and pointer.tail_pc == 2


class TestScope:
    def test_offset_beyond_seven_not_created(self):
        det = detector(independent=False)
        group1 = [make_uop(0, dest=1), make_uop(1), make_uop(2),
                  make_uop(3)]
        group2 = [make_uop(4), make_uop(5), make_uop(6),
                  make_uop(7, dest=2, srcs=(1,))]
        det.observe_group(group1, now=0)
        det.observe_group(group2, now=1)
        pointer = det.pointers.lookup(0, 1)
        assert pointer is not None and pointer.offset == 7

    def test_window_slides_one_group(self):
        det = detector(independent=False)
        det.observe_group([make_uop(0, dest=1)], now=0)
        det.observe_group([make_uop(1)], now=1)
        # uop 0 left the 2-group scope before this consumer arrived.
        det.observe_group([make_uop(2, dest=2, srcs=(1,))], now=2)
        assert det.pointers.lookup(0, 10) is None
