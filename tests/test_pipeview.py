"""Tests for the pipeline timeline viewer."""


from repro.core import MachineConfig, SchedulerKind
from repro.core.pipeline import Processor
from repro.core.pipeview import PipeViewer
from repro.workloads.kernels import kernel_trace
from tests.conftest import chain_trace


def run_with_viewer(trace, **cfg_kw):
    cfg_kw.setdefault("iq_size", None)
    processor = Processor(MachineConfig(**cfg_kw), trace)
    viewer = PipeViewer.attach(processor)
    stats = processor.run()
    return viewer, stats


class TestRecording:
    def test_all_ops_recorded(self):
        trace = chain_trace(40)
        viewer, stats = run_with_viewer(trace,
                                        scheduler=SchedulerKind.BASE)
        assert len(viewer.timelines) == 40
        for timeline in viewer.timelines.values():
            assert timeline.fetch is not None
            assert timeline.insert is not None
            assert timeline.issue is not None
            assert timeline.commit is not None

    def test_stage_order_monotone(self):
        trace = chain_trace(40)
        viewer, _ = run_with_viewer(trace, scheduler=SchedulerKind.BASE)
        for timeline in viewer.timelines.values():
            assert timeline.fetch <= timeline.insert
            assert timeline.insert < timeline.issue
            assert timeline.issue < timeline.complete
            assert timeline.complete <= timeline.commit

    def test_chain_issue_spacing_matches_discipline(self):
        trace = chain_trace(40)
        base_viewer, _ = run_with_viewer(trace,
                                         scheduler=SchedulerKind.BASE)
        two_viewer, _ = run_with_viewer(trace,
                                        scheduler=SchedulerKind.TWO_CYCLE)
        base_issues = [base_viewer.timelines[i].issue for i in range(10, 20)]
        two_issues = [two_viewer.timelines[i].issue for i in range(10, 20)]
        base_gaps = {b - a for a, b in zip(base_issues, base_issues[1:])}
        two_gaps = {b - a for a, b in zip(two_issues, two_issues[1:])}
        assert base_gaps == {1}
        assert two_gaps == {2}

    def test_mop_members_issue_together(self):
        trace = chain_trace(200, loop=True)
        viewer, stats = run_with_viewer(trace,
                                        scheduler=SchedulerKind.MACRO_OP)
        assert stats.mops_formed > 0
        heads = [t for t in viewer.timelines.values() if t.role == "H"]
        assert heads
        for head in heads[:20]:
            tail = viewer.timelines.get(head.seq + 1)
            if tail is not None and tail.role == "T":
                assert tail.issue == head.issue

    def test_replays_visible(self):
        from tests.conftest import TraceBuilder
        tb = TraceBuilder()
        tb.load(dest=1, base=9, mem_hint=2)   # memory miss
        tb.alu(dest=2, srcs=(1,))             # shadow-issued, replays
        viewer, stats = run_with_viewer(tb.build(),
                                        scheduler=SchedulerKind.BASE)
        assert stats.replayed_ops >= 1
        consumer = viewer.timelines[1]
        assert consumer.replays >= 1


class TestRendering:
    def test_render_contains_stage_letters(self):
        trace = chain_trace(20)
        viewer, _ = run_with_viewer(trace, scheduler=SchedulerKind.BASE)
        text = viewer.render(start=0, count=5, width=80)
        # The window anchors at first issue; issue and commit must show.
        assert "i" in text and "C" in text

    def test_render_empty_range(self):
        trace = chain_trace(5)
        viewer, _ = run_with_viewer(trace, scheduler=SchedulerKind.BASE)
        assert "no recorded" in viewer.render(start=999, count=5)

    def test_summary(self):
        trace = kernel_trace("vector_sum")
        viewer, _ = run_with_viewer(trace,
                                    scheduler=SchedulerKind.MACRO_OP)
        text = viewer.summary()
        assert "committed" in text and "macro-ops" in text
