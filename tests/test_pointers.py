"""Unit tests for MOP pointers and the pointer cache."""

import pytest

from repro.mop.pointers import (
    DEPENDENT,
    MopPointer,
    PointerCache,
)


def ptr(head=10, tail=12, offset=2, control=0, kind=DEPENDENT):
    return MopPointer(head_pc=head, tail_pc=tail, offset=offset,
                      control_bit=control, kind=kind)


class TestMopPointer:
    def test_offset_fits_three_bits(self):
        # The hardware pointer has a 3-bit offset (1..7).
        MopPointer(0, 7, 7, 0)
        with pytest.raises(ValueError):
            MopPointer(0, 8, 8, 0)
        with pytest.raises(ValueError):
            MopPointer(0, 0, 0, 0)

    def test_control_bit_is_binary(self):
        # One control bit: at most one taken branch crossed.
        MopPointer(0, 1, 1, 1)
        with pytest.raises(ValueError):
            MopPointer(0, 1, 1, 2)


class TestPointerCache:
    def test_detection_delay_gates_lookup(self):
        cache = PointerCache(detection_delay=3)
        cache.install(ptr(), now=10)
        assert cache.lookup(10, now=12) is None
        assert cache.lookup(10, now=13) is not None

    def test_zero_delay(self):
        cache = PointerCache(detection_delay=0)
        cache.install(ptr(), now=5)
        assert cache.lookup(10, now=5) is not None

    def test_one_pointer_per_head(self):
        cache = PointerCache(0)
        assert cache.install(ptr(tail=12), now=0)
        assert not cache.install(ptr(tail=13, offset=3), now=0)
        assert cache.lookup(10, 0).tail_pc == 12

    def test_delete_blacklists_the_pair(self):
        cache = PointerCache(0)
        cache.install(ptr(), now=0)
        cache.delete(10)
        assert cache.lookup(10, 100) is None
        assert cache.is_blacklisted(10, 12)
        # The same pair can never be re-installed...
        assert not cache.install(ptr(), now=100)
        # ...but an alternative tail for the same head can.
        assert cache.install(ptr(tail=14, offset=4), now=100)

    def test_delete_missing_is_noop(self):
        cache = PointerCache(0)
        cache.delete(999)
        assert cache.deleted == 0

    def test_counters(self):
        cache = PointerCache(0)
        cache.install(ptr(), now=0)
        cache.delete(10)
        assert cache.created == 1
        assert cache.deleted == 1

    def test_has_pointer_sees_pending_delay(self):
        cache = PointerCache(detection_delay=50)
        cache.install(ptr(), now=0)
        # Not yet usable, but present — detection must not duplicate it.
        assert cache.has_pointer(10)
        assert cache.lookup(10, now=10) is None

    def test_len(self):
        cache = PointerCache(0)
        cache.install(ptr(head=1, tail=2, offset=1), now=0)
        cache.install(ptr(head=5, tail=6, offset=1), now=0)
        assert len(cache) == 2
