"""Unit tests for statistics accounting."""

import pytest

from repro.core.stats import SimStats


class TestDerived:
    def test_ipc(self):
        stats = SimStats(cycles=200, committed_insts=300)
        assert stats.ipc == pytest.approx(1.5)

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_uipc_counts_ops(self):
        stats = SimStats(cycles=100, committed_insts=90, committed_ops=110)
        assert stats.uipc == pytest.approx(1.1)

    def test_grouped_fraction(self):
        stats = SimStats(committed_ops=100, mop_valuegen=20,
                         mop_nonvaluegen=10, independent_mop=5)
        assert stats.grouped_ops == 35
        assert stats.grouped_fraction == pytest.approx(0.35)

    def test_insert_reduction(self):
        stats = SimStats(committed_ops=100, iq_inserts=84)
        assert stats.insert_reduction == pytest.approx(0.16)

    def test_insert_reduction_empty(self):
        assert SimStats().insert_reduction == 0.0

    def test_breakdown_sums_to_one(self):
        stats = SimStats(committed_ops=50, mop_valuegen=10,
                         mop_nonvaluegen=5, independent_mop=5,
                         candidate_ungrouped=20, not_candidate=10)
        assert sum(stats.grouping_breakdown().values()) == pytest.approx(1.0)

    def test_summary_mentions_mops_only_when_present(self):
        plain = SimStats(cycles=10, committed_insts=5)
        assert "mops" not in plain.summary()
        grouped = SimStats(cycles=10, committed_insts=5, mops_formed=2,
                           committed_ops=5, mop_valuegen=2)
        assert "mops" in grouped.summary()
