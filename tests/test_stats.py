"""Unit tests for statistics accounting."""

import math

import pytest

from repro.core.stats import (
    REPLAY_PILEUP,
    REPLAY_RAISE,
    REPLAY_SQUASH,
    SimStats,
)


class TestDerived:
    def test_ipc(self):
        stats = SimStats(cycles=200, committed_insts=300)
        assert stats.ipc == pytest.approx(1.5)

    def test_ipc_zero_cycles_is_nan(self):
        # NaN, not 0.0: a FAILED/empty cell must poison downstream ratios
        # instead of dragging geomeans toward zero.
        assert math.isnan(SimStats().ipc)
        assert math.isnan(SimStats().uipc)

    def test_uipc_counts_ops(self):
        stats = SimStats(cycles=100, committed_insts=90, committed_ops=110)
        assert stats.uipc == pytest.approx(1.1)

    def test_grouped_fraction(self):
        stats = SimStats(committed_ops=100, mop_valuegen=20,
                         mop_nonvaluegen=10, independent_mop=5)
        assert stats.grouped_ops == 35
        assert stats.grouped_fraction == pytest.approx(0.35)

    def test_insert_reduction(self):
        stats = SimStats(iq_insert_ops=100, iq_inserts=84)
        assert stats.insert_reduction == pytest.approx(0.16)

    def test_insert_reduction_empty(self):
        assert SimStats().insert_reduction == 0.0

    def test_insert_reduction_same_population(self):
        # Regression: the old inserts-over-committed-ops ratio went negative
        # when a max_cycles-truncated run inserted ops that never committed.
        stats = SimStats(committed_ops=10, iq_inserts=84, iq_insert_ops=100)
        assert stats.insert_reduction == pytest.approx(0.16)
        assert stats.insert_reduction >= 0.0

    def test_breakdown_sums_to_one(self):
        stats = SimStats(committed_ops=50, mop_valuegen=10,
                         mop_nonvaluegen=5, independent_mop=5,
                         candidate_ungrouped=20, not_candidate=10)
        assert sum(stats.grouping_breakdown().values()) == pytest.approx(1.0)

    def test_summary_mentions_mops_only_when_present(self):
        plain = SimStats(cycles=10, committed_insts=5)
        assert "mops" not in plain.summary()
        grouped = SimStats(cycles=10, committed_insts=5, mops_formed=2,
                           committed_ops=5, mop_valuegen=2)
        assert "mops" in grouped.summary()


class TestObservability:
    def test_replay_causes(self):
        stats = SimStats(replayed_ops=10, replay_raise=6, replay_pileup=3,
                         replay_squash=1)
        causes = stats.replay_causes()
        assert causes == {REPLAY_RAISE: 6, REPLAY_PILEUP: 3, REPLAY_SQUASH: 1}
        assert sum(causes.values()) == stats.replayed_ops

    def test_avg_wakeup_to_select(self):
        stats = SimStats(wakeup_to_select_cycles=30, wakeup_to_select_count=10)
        assert stats.avg_wakeup_to_select == pytest.approx(3.0)
        assert math.isnan(SimStats().avg_wakeup_to_select)

    def test_iq_occupancy(self):
        stats = SimStats(iq_occupancy_hist={"0": 10, "8": 10, "32": 20})
        assert stats.iq_occupancy_mean == pytest.approx((80 + 640) / 40)
        assert stats.iq_occupancy_quantile(0.5) == 8.0
        assert stats.iq_occupancy_quantile(1.0) == 32.0
        assert math.isnan(SimStats().iq_occupancy_mean)
        assert math.isnan(SimStats().iq_occupancy_quantile(0.5))

    def test_mop_funnel(self):
        stats = SimStats(mop_pointers_created=40, mop_pointers_deleted=5,
                         mop_pending_heads=12, mops_formed=25,
                         mop_pending_abandoned=3)
        assert stats.mop_funnel() == {
            "pointers": 40, "deleted": 5, "pending": 12, "formed": 25,
            "abandoned": 3}

    def test_summary_mentions_replay_causes_only_when_present(self):
        plain = SimStats(cycles=10, committed_insts=5)
        assert "replay causes" not in plain.summary()
        replayed = SimStats(cycles=10, committed_insts=5, replayed_ops=4,
                            replay_raise=4, max_replays_seen=2)
        assert "replay causes" in replayed.summary()
        assert "raise=4" in replayed.summary()
