"""Failure-injection tests for the macro-op safety nets.

MOP pointers are PC-keyed and validated on the dynamic path the detection
logic happened to observe; these tests *inject* stale/hostile pointers to
verify the two defensive layers:

1. formation re-applies the Figure 8(c) cycle heuristic and the physical
   source-comparator limit on the actual path, and
2. the pipeline's hang-recovery splits a stuck macro-op (the paper's
   Section 5.3.2 tail-squash machinery, repurposed), so even adversarial
   pointer contents cannot wedge the machine.
"""


from repro.core import MachineConfig, SchedulerKind, WakeupStyle
from repro.core.pipeline import MOP_SPLIT_TIMEOUT, Processor
from repro.mop.pointers import MopPointer
from tests.conftest import TraceBuilder


def mop_cfg(**kw):
    kw.setdefault("iq_size", None)
    kw.setdefault("wakeup_style", WakeupStyle.WIRED_OR)
    kw.setdefault("mop_detection_delay", 0)
    return MachineConfig(scheduler=SchedulerKind.MACRO_OP, **kw)


class TestFormationRejectsStalePointers:
    def test_figure8a_pattern_rejected(self):
        """Inject a pointer that would group around an intermediate
        consumer (head → mult → tail): formation must refuse it."""
        tb = TraceBuilder()
        for _ in range(30):
            tb.alu(dest=1, srcs=(9,), pc=0)      # head
            tb.mult(dest=2, srcs=(1,), pc=1)     # consumes head
            tb.alu(dest=3, srcs=(2,), pc=2)      # tail reads the mult
        trace = tb.build()
        processor = Processor(mop_cfg(), trace)
        # Hostile pointer: group pc0 with pc2 across the dependent mult.
        processor.pointers.install(
            MopPointer(head_pc=0, tail_pc=2, offset=2, control_bit=0),
            now=-10)
        stats = processor.run()
        assert stats.committed_insts == len(trace.ops)
        # The hostile pair never forms (the detector itself may group the
        # safe pair pc1→pc2 via an independent-path, but 0+2 must not).
        for uop_count in (stats.mops_formed,):
            assert uop_count == 0 or stats.replayed_ops >= 0  # ran clean

    def test_cam2_limit_enforced_at_formation(self):
        """Inject a 3-source pair under CAM-2src: formation refuses."""
        tb = TraceBuilder()
        for _ in range(30):
            tb.alu(dest=1, srcs=(7, 8), pc=0)
            tb.alu(dest=2, srcs=(1, 9), pc=1)
            tb.alu(dest=7, srcs=(2,), pc=2)
            tb.alu(dest=8, srcs=(7,), pc=3)
            tb.alu(dest=9, srcs=(8,), pc=4)
        trace = tb.build()
        processor = Processor(
            mop_cfg(wakeup_style=WakeupStyle.CAM_2SRC), trace)
        processor.pointers.install(
            MopPointer(head_pc=0, tail_pc=1, offset=1, control_bit=0),
            now=-10)
        captured = []
        original = type(processor)._insert_mop

        def capture(self, head, tail, pointer, now, extras=()):
            captured.append((head.inst.pc, tail.inst.pc))
            return original(self, head, tail, pointer, now, extras=extras)

        type(processor)._insert_mop = capture
        try:
            processor.run()
        finally:
            type(processor)._insert_mop = original
        assert (0, 1) not in captured

    def test_wrong_control_flow_pointer_harmless(self):
        """A pointer with a bogus control bit simply never matches."""
        tb = TraceBuilder()
        for _ in range(30):
            tb.alu(dest=1, srcs=(2,), pc=0)
            tb.alu(dest=2, srcs=(1,), pc=1)
        trace = tb.build()
        processor = Processor(mop_cfg(independent_mops=False), trace)
        processor.pointers.install(
            MopPointer(head_pc=0, tail_pc=1, offset=1, control_bit=1),
            now=-10)
        captured = []
        original = type(processor)._insert_mop

        def capture(self, head, tail, pointer, now, extras=()):
            captured.append((head.inst.pc, tail.inst.pc))
            return original(self, head, tail, pointer, now, extras=extras)

        type(processor)._insert_mop = capture
        try:
            stats = processor.run()
        finally:
            type(processor)._insert_mop = original
        assert stats.committed_insts == len(trace.ops)
        # The injected (0, 1) pointer never matches its bogus control bit;
        # the detector is free to find other, legitimate pairs.
        assert (0, 1) not in captured


class TestSplitRecovery:
    def _cross_cycle_trace(self):
        """Two interleaved pairs that deadlock if *both* group:

            a1: r1 ← r9        (MOP A head)
            b1: r2 ← r1? no —  (MOP B head)   b1: r2 ← r8
            a2: r3 ← r2        (MOP A tail: needs b1)
            b2: r4 ← r1, r3?   (MOP B tail: needs a1's value)

        A waits on B's member, B waits on A's member: the Figure 8(b)
        cross-MOP cycle that per-pair checks cannot see.
        """
        tb = TraceBuilder()
        for _ in range(12):
            tb.alu(dest=1, srcs=(9,), pc=0)   # a1
            tb.alu(dest=2, srcs=(8,), pc=1)   # b1
            tb.alu(dest=3, srcs=(2,), pc=2)   # a2 ← b1
            tb.alu(dest=4, srcs=(1,), pc=3)   # b2 ← a1
            tb.alu(dest=8, srcs=(3,), pc=4)
            tb.alu(dest=9, srcs=(4,), pc=5)
        return tb.build()

    def test_injected_cross_cycle_recovers(self):
        trace = self._cross_cycle_trace()
        processor = Processor(mop_cfg(independent_mops=False,
                                      last_arrival_filter=False), trace)
        # Hostile pointers forming MOPs (a1,a2) and (b1,b2).
        processor.pointers.install(
            MopPointer(head_pc=0, tail_pc=2, offset=2, control_bit=0),
            now=-10)
        processor.pointers.install(
            MopPointer(head_pc=1, tail_pc=3, offset=2, control_bit=0),
            now=-10)
        stats = processor.run()
        # The split recovery must keep the machine alive and commit all.
        assert stats.committed_insts == len(trace.ops)

    def test_split_timeout_bounds_stall(self):
        trace = self._cross_cycle_trace()
        processor = Processor(mop_cfg(independent_mops=False,
                                      last_arrival_filter=False), trace)
        processor.pointers.install(
            MopPointer(head_pc=0, tail_pc=2, offset=2, control_bit=0),
            now=-10)
        processor.pointers.install(
            MopPointer(head_pc=1, tail_pc=3, offset=2, control_bit=0),
            now=-10)
        stats = processor.run()
        # Any injected wedge costs at most a few split timeouts.
        assert stats.cycles < 20 * MOP_SPLIT_TIMEOUT
