"""Tests for Executor.run_async streaming and the LRU-bounded cache.

Both features exist for the job service (:mod:`repro.service`) but are
plain executor API, tested here without any server in the loop:

* :meth:`Executor.run_async` must stream the same outcomes, bit for
  bit, that the batch :meth:`Executor.run_cells` path returns — the
  async session is a delivery mechanism, never a different simulation.
* ``ResultCache(max_entries=...)`` must evict least-recently-*used*
  entries (a ``get`` hit refreshes recency), count evictions, and
  persist the running total across instances.
"""

import asyncio
import os

from repro.core import MachineConfig, SchedulerKind
from repro.core.stats import SimStats
from repro.experiments.executor import Executor, ResultCache, SimCell

N = 900


def grid_cells(num_insts=N):
    configs = {
        "base": MachineConfig.paper_default(scheduler=SchedulerKind.BASE),
        "mop": MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP),
    }
    return [SimCell(bench, label, config, num_insts, seed=1)
            for bench in ("gap", "vortex")
            for label, config in configs.items()]


async def collect(executor, cells, stop=None):
    streamed = []
    async for cell, outcome in executor.run_async(cells, stop=stop):
        streamed.append((cell, outcome))
    return streamed


class TestRunAsync:
    def test_streams_every_cell_and_matches_batch(self, tmp_path):
        cells = grid_cells()
        batch = Executor(jobs=1, cache=None).run_cells(cells)
        streaming = Executor(jobs=1, cache=None)
        streamed = asyncio.run(collect(streaming, cells))
        assert {cell.name for cell, _ in streamed} == \
            {cell.name for cell in cells}
        for cell, outcome in streamed:
            assert outcome.ok
            # The streamed stats must be bit-identical to the batch run.
            assert outcome.stats == batch[cell]

    def test_streams_cache_hits_with_via_cache(self, tmp_path):
        cells = grid_cells()
        cache = ResultCache(tmp_path / "cache")
        Executor(jobs=1, cache=cache).run_cells(cells)
        warm = Executor(jobs=1, cache=cache)
        streamed = asyncio.run(collect(warm, cells))
        assert len(streamed) == len(cells)
        assert all(outcome.via_cache for _, outcome in streamed)
        assert all(outcome.attempts == 0 for _, outcome in streamed)

    def test_stop_halts_the_stream_early(self):
        cells = grid_cells()
        seen = []

        def stop():
            return len(seen) >= 1

        async def run():
            executor = Executor(jobs=1, cache=None)
            async for cell, outcome in executor.run_async(cells,
                                                          stop=stop):
                seen.append(cell)

        asyncio.run(run())
        assert 1 <= len(seen) < len(cells)

    def test_batch_path_unchanged_by_on_outcome(self):
        cells = grid_cells()
        plain = Executor(jobs=1, cache=None).run_cells(cells)
        observed = []
        hooked = Executor(jobs=1, cache=None).run_cells(
            cells, on_outcome=lambda cell, o: observed.append(cell.name))
        assert plain == hooked
        assert sorted(observed) == sorted(cell.name for cell in cells)


def fake_entry(cache, index):
    """Plant one distinct entry; returns its key."""
    key = f"{index:02d}" + "e" * 60
    cell = SimCell("gap", f"c{index}", MachineConfig.paper_default(),
                   100 + index, 1)
    cache.put(key, cell, SimStats(cycles=index))
    return key


def set_age(cache, key, seconds_ago):
    """Pin an entry's mtime so LRU ordering is explicit, not racy."""
    path = cache._path(key)
    stamp = path.stat().st_mtime - seconds_ago
    os.utime(path, (stamp, stamp))


class TestCacheLru:
    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(8):
            fake_entry(cache, i)
        assert len(cache.entries()) == 8
        assert cache.evictions == 0

    def test_capacity_evicts_oldest(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_entries=3)
        keys = [fake_entry(cache, i) for i in range(3)]
        for age, key in zip((30, 20, 10), keys):
            set_age(cache, key, age)
        newest = fake_entry(cache, 3)
        assert len(cache.entries()) == 3
        assert cache.get(keys[0]) is None          # oldest evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(newest) is not None
        assert cache.evictions == 1

    def test_get_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_entries=3)
        keys = [fake_entry(cache, i) for i in range(3)]
        for age, key in zip((30, 20, 10), keys):
            set_age(cache, key, age)
        assert cache.get(keys[0]) is not None      # touch the oldest
        fake_entry(cache, 3)
        # keys[1] is now the least recently used, not the touched one.
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_eviction_total_persists_across_instances(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_entries=2)
        keys = [fake_entry(cache, i) for i in range(2)]
        for age, key in zip((30, 20), keys):
            set_age(cache, key, age)
        fake_entry(cache, 2)
        assert cache.evictions == 1
        reopened = ResultCache(tmp_path / "c", max_entries=2)
        assert reopened.evictions == 0             # per instance
        assert reopened.evictions_total() == 1     # persisted sidecar
        assert reopened.info()["evictions"] == 1

    def test_env_var_sets_capacity(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "5")
        cache = ResultCache(tmp_path / "c")
        assert cache.max_entries == 5
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES")
        assert ResultCache(tmp_path / "c").max_entries is None

    def test_info_payload(self, tmp_path):
        cache = ResultCache(tmp_path / "c", max_entries=4)
        key = fake_entry(cache, 0)
        cache.get(key)
        cache.get("ff" + "0" * 60)
        info = cache.info()
        assert info["entries"] == 1
        assert info["capacity"] == 4
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["evictions"] == 0

    def test_eviction_survives_real_executor_traffic(self, tmp_path):
        """Capacity bounds a real grid run; results stay correct."""
        cells = grid_cells()
        cache = ResultCache(tmp_path / "c", max_entries=2)
        results = Executor(jobs=1, cache=cache).run_cells(cells)
        assert len(results) == len(cells)
        assert len(cache.entries()) == 2
        assert cache.evictions_total() == len(cells) - 2

    def test_cache_info_cli_reports_capacity(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.cli import main as repro_main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = ResultCache(tmp_path / "c", max_entries=1)
        for i in range(2):
            fake_entry(cache, i)
        assert repro_main(["cache", "info", "--max-entries", "1"]) == 0
        out = capsys.readouterr().out
        assert "capacity:  1" in out
        assert "evictions: 1" in out
