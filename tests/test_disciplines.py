"""Tests for the scheduling-discipline timing laws (Figure 5)."""

import pytest

from repro.core import MachineConfig, SchedulerKind
from repro.core.scheduler import (
    AtomicDiscipline,
    MacroOpDiscipline,
    SelectFreeScoreboard,
    SelectFreeSquashDep,
    TwoCycleDiscipline,
    make_discipline,
)
from repro.core.scheduler.base import (
    COLLISION_NONE,
    COLLISION_SCOREBOARD,
    COLLISION_SQUASH,
)


class TestTimingLaws:
    def test_atomic_back_to_back(self):
        # Figure 5 left: dependent single-cycle ops in consecutive cycles.
        assert AtomicDiscipline().broadcast_offset(1) == 1

    def test_two_cycle_bubble(self):
        # Figure 5 middle: one bubble between dependent 1-cycle ops.
        assert TwoCycleDiscipline().broadcast_offset(1) == 2

    def test_two_cycle_hides_behind_multi_cycle(self):
        # Multi-cycle producers hide the pipelined wakeup entirely.
        disc = TwoCycleDiscipline()
        for latency in (2, 3, 4, 20, 24):
            assert disc.broadcast_offset(latency) == latency

    def test_macro_op_same_law_as_two_cycle(self):
        # Figure 5 right: the MOP is a 2-cycle unit; offset(2) == 2 means
        # tail consumers run back-to-back with the tail.
        mop = MacroOpDiscipline()
        two = TwoCycleDiscipline()
        for latency in (1, 2, 3, 20):
            assert mop.broadcast_offset(latency) == \
                two.broadcast_offset(latency)

    def test_select_free_is_atomic_speculative(self):
        for disc in (SelectFreeSquashDep(), SelectFreeScoreboard()):
            assert disc.broadcast_offset(1) == 1
            assert disc.speculative_wakeup

    def test_load_offset_under_each_law(self):
        # Assumed load latency is 3: every discipline waits 3 cycles.
        for disc in (AtomicDiscipline(), TwoCycleDiscipline(),
                     MacroOpDiscipline(), SelectFreeSquashDep()):
            assert disc.broadcast_offset(3) == 3


class TestFlags:
    def test_only_macro_op_uses_mops(self):
        assert MacroOpDiscipline().uses_macro_ops
        assert not TwoCycleDiscipline().uses_macro_ops
        assert not AtomicDiscipline().uses_macro_ops
        assert not SelectFreeSquashDep().uses_macro_ops

    def test_collision_modes(self):
        assert AtomicDiscipline().collision_mode == COLLISION_NONE
        assert SelectFreeSquashDep().collision_mode == COLLISION_SQUASH
        assert SelectFreeScoreboard().collision_mode == COLLISION_SCOREBOARD

    def test_non_speculative_disciplines(self):
        assert not AtomicDiscipline().speculative_wakeup
        assert not MacroOpDiscipline().speculative_wakeup


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        (SchedulerKind.BASE, AtomicDiscipline),
        (SchedulerKind.TWO_CYCLE, TwoCycleDiscipline),
        (SchedulerKind.MACRO_OP, MacroOpDiscipline),
        (SchedulerKind.SELECT_FREE_SQUASH, SelectFreeSquashDep),
        (SchedulerKind.SELECT_FREE_SCOREBOARD, SelectFreeScoreboard),
    ])
    def test_factory_maps_kinds(self, kind, cls):
        config = MachineConfig.paper_default(scheduler=kind)
        assert isinstance(make_discipline(config), cls)
