"""Tests for the repro.trace observability subsystem.

Covers the event/sink layer, the pipeline's emission sites, the
no-overhead-when-off invariants (stats bit-identical, package never
imported), replay-cause accounting, the replay-storm bound, executor
instrumentation and the CLI surface.
"""

import json
import math
import os
import pickle
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import MachineConfig, SchedulerKind, simulate
from repro.core.pipeline import (
    Processor,
    ReplayStormError,
    SimulationError,
)
from repro.core.pipeview import PipeViewer
from repro.core.stats import REPLAY_PILEUP, REPLAY_RAISE, REPLAY_SQUASH
from repro.experiments.executor import Executor, ResultCache, SimCell
from repro.trace import (
    EVENT_KINDS,
    JsonlTraceSink,
    RingBufferSink,
    TeeSink,
    TraceEvent,
    read_trace,
)
from repro.workloads import generate_trace, get_profile
from tests.conftest import TraceBuilder, chain_trace

REPO_ROOT = Path(__file__).resolve().parent.parent


def miss_trace():
    """A load that misses all the way to memory, plus its consumer."""
    tb = TraceBuilder()
    tb.load(dest=1, base=9, mem_hint=2)
    tb.alu(dest=2, srcs=(1,))
    return tb.build()


# ---------------------------------------------------------------------------
# Events and sinks
# ---------------------------------------------------------------------------

class TestEvents:
    def test_roundtrip(self):
        event = TraceEvent(cycle=7, kind="replay", seq=3, pc=0x40,
                           mnemonic="lw", role="H", eid=5, cause="raise")
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_cause_omitted_when_none(self):
        event = TraceEvent(cycle=1, kind="issue", seq=0, pc=0,
                           mnemonic="alu")
        payload = event.to_dict()
        assert "cause" not in payload
        assert TraceEvent.from_dict(payload) == event


class TestSinks:
    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t" / "trace.jsonl"
        events = [TraceEvent(cycle=i, kind="commit", seq=i, pc=i,
                             mnemonic="alu") for i in range(5)]
        with JsonlTraceSink(path) as sink:
            for event in events:
                sink.emit(event)
        assert sink.emitted == 5 and sink.dropped == 0
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        json.loads(lines[0])  # each line is one JSON object
        assert list(read_trace(path)) == events

    def test_jsonl_sink_limit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path, limit=3) as sink:
            for i in range(10):
                sink.emit(TraceEvent(cycle=i, kind="commit", seq=i, pc=i,
                                     mnemonic="alu"))
        assert sink.emitted == 3 and sink.dropped == 7
        assert len(list(read_trace(path))) == 3

    def test_read_trace_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit(TraceEvent(cycle=0, kind="fetch", seq=0, pc=0,
                                 mnemonic="alu"))
        with path.open("a") as handle:
            handle.write('{"cycle": 1, "kind": "fet')  # died mid-write
        assert len(list(read_trace(path))) == 1

    def test_ring_buffer_caps(self):
        sink = RingBufferSink(capacity=4)
        for i in range(10):
            sink.emit(TraceEvent(cycle=i, kind="commit", seq=i, pc=i,
                                 mnemonic="alu"))
        assert sink.total == 10
        assert len(sink.events) == 4
        assert sink.events[0].cycle == 6  # oldest evicted

    def test_tee_fans_out(self):
        a, b = RingBufferSink(), RingBufferSink()
        tee = TeeSink(a, None, b)
        tee.emit(TraceEvent(cycle=0, kind="fetch", seq=0, pc=0,
                            mnemonic="alu"))
        tee.close()
        assert a.total == 1 and b.total == 1


# ---------------------------------------------------------------------------
# Pipeline emission
# ---------------------------------------------------------------------------

class TestPipelineEmission:
    def test_event_stream_covers_op_lifecycle(self):
        sink = RingBufferSink()
        stats = simulate(chain_trace(20),
                         MachineConfig(iq_size=None), sink=sink)
        events = sink.events
        assert {e.kind for e in events} <= set(EVENT_KINDS)
        for seq in range(20):
            kinds = {e.kind for e in events if e.seq == seq}
            assert {"fetch", "insert", "wakeup", "select", "issue",
                    "exec", "writeback", "commit"} <= kinds
        commits = [e for e in events if e.kind == "commit"]
        assert len(commits) == stats.committed_ops

    def test_replay_events_carry_cause(self):
        sink = RingBufferSink()
        stats = simulate(miss_trace(), MachineConfig(), sink=sink)
        assert stats.replayed_ops >= 1
        replays = [e for e in sink.events if e.kind == "replay"]
        assert replays
        assert all(e.cause == REPLAY_RAISE for e in replays if e.seq == 1)

    def test_tracing_changes_no_stats(self):
        trace = generate_trace(get_profile("gap"), 1500)
        for kind in SchedulerKind:
            config = MachineConfig(scheduler=kind)
            plain = simulate(trace, config)
            traced = simulate(trace, config, sink=RingBufferSink())
            assert asdict(plain) == asdict(traced), kind

    def test_untraced_run_never_imports_trace_package(self):
        code = (
            "import sys\n"
            "from repro.core import MachineConfig, simulate\n"
            "from repro.workloads.kernels import kernel_trace\n"
            "simulate(kernel_trace('vector_sum'),"
            " MachineConfig.paper_default())\n"
            "assert 'repro.trace' not in sys.modules,"
            " 'untraced run imported repro.trace'\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        subprocess.run([sys.executable, "-c", code], check=True, env=env)


# ---------------------------------------------------------------------------
# Replay-cause accounting and the storm bound
# ---------------------------------------------------------------------------

class TestReplayAccounting:
    def test_causes_sum_to_replayed_ops(self):
        trace = generate_trace(get_profile("mcf"), 1500)
        for kind in SchedulerKind:
            stats = simulate(trace, MachineConfig(scheduler=kind))
            assert (stats.replay_raise + stats.replay_pileup
                    + stats.replay_squash) == stats.replayed_ops, kind

    def test_scoreboard_is_pileup_dominated(self):
        # EXPERIMENTS.md §6.5: scoreboard victims are discovered late and
        # burn issue slots, so its replay mix is dominated by pileups.
        trace = generate_trace(get_profile("gap"), 1500)
        stats = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD))
        assert stats.replay_pileup > stats.replay_raise
        assert stats.replay_pileup > stats.replay_squash
        assert stats.replay_pileup > stats.replayed_ops / 2

    def test_max_replays_seen_recorded(self):
        stats = simulate(miss_trace(), MachineConfig())
        assert stats.max_replays_seen >= 1

    def test_storm_raises_with_tight_limit(self):
        with pytest.raises(ReplayStormError) as info:
            simulate(miss_trace(), MachineConfig(replay_limit=0))
        err = info.value
        assert err.replays == 1
        assert err.cycle is not None and err.seq is not None

    def test_storm_error_is_simulation_error(self):
        assert issubclass(ReplayStormError, SimulationError)

    def test_storm_error_pickles(self):
        # The executor ships worker exceptions across process boundaries.
        err = ReplayStormError("boom", cycle=10, seq=3, pc=0x40, replays=7)
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.cycle, clone.seq, clone.pc, clone.replays) \
            == (10, 3, 0x40, 7)

    def test_unbounded_limit_allowed(self):
        stats = simulate(miss_trace(), MachineConfig(replay_limit=None))
        assert stats.replayed_ops >= 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(replay_limit=-1)


# ---------------------------------------------------------------------------
# PipeViewer as a trace consumer
# ---------------------------------------------------------------------------

GOLDEN_RENDER = """\
cycle origin: 6
    0   alu      |i    eC                         |
    1   alu      | i    eC                        |
    2   alu      |  i    eC                       |
    3   alu      |   i    eC                      |
    4   alu      |q   i    eC                     |
    5   alu      |q    i    eC                    |
    6   alu      |q     i    eC                   |
    7   alu      |q      i    eC                  |"""


class TestPipeViewer:
    def test_render_golden(self):
        processor = Processor(
            MachineConfig(iq_size=None, scheduler=SchedulerKind.BASE),
            chain_trace(8))
        viewer = PipeViewer.attach(processor)
        processor.run()
        assert viewer.render(start=0, count=8, width=32) == GOLDEN_RENDER

    def test_from_jsonl_matches_live_attach(self, tmp_path):
        trace = chain_trace(60, loop=True)
        config = MachineConfig(scheduler=SchedulerKind.MACRO_OP)
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            processor = Processor(config, trace, sink=sink)
            live = PipeViewer.attach(processor)  # tees alongside the file
            processor.run()
        replayed = PipeViewer.from_jsonl(path)
        assert replayed.timelines == live.timelines
        assert replayed.render(0, 16) == live.render(0, 16)

    def test_replay_causes_on_timeline(self):
        sink = RingBufferSink()
        simulate(miss_trace(), MachineConfig(), sink=sink)
        viewer = PipeViewer()
        viewer.record(sink.events)
        assert REPLAY_RAISE in viewer.timelines[1].replay_causes


# ---------------------------------------------------------------------------
# Executor instrumentation
# ---------------------------------------------------------------------------

def _cells(n_insts=1200):
    config = MachineConfig.paper_default()
    return [SimCell("gap", "base", config, n_insts, 1),
            SimCell("vortex", "base", config, n_insts, 1)]


class TestExecutorInstrumentation:
    def test_serial_and_parallel_traces_identical(self, tmp_path):
        serial_dir, parallel_dir = tmp_path / "s", tmp_path / "p"
        Executor(jobs=1, trace_dir=serial_dir).run_cells(_cells())
        Executor(jobs=2, trace_dir=parallel_dir).run_cells(_cells())
        names = sorted(p.name for p in serial_dir.iterdir())
        assert names == sorted(p.name for p in parallel_dir.iterdir())
        assert len(names) == 2
        for name in names:
            assert (serial_dir / name).read_bytes() \
                == (parallel_dir / name).read_bytes()

    def test_trace_limit_truncates(self, tmp_path):
        ex = Executor(jobs=1, trace_dir=tmp_path, trace_limit=50)
        ex.run_cells(_cells()[:1])
        (path,) = tmp_path.iterdir()
        assert len(list(read_trace(path))) == 50

    def test_instrumented_run_skips_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cells = _cells()
        Executor(jobs=1, cache=cache).run_cells(cells)
        ex = Executor(jobs=1, cache=cache, trace_dir=tmp_path / "traces")
        results = ex.run_cells(cells)
        assert ex.last_summary.cache_hits == 0
        assert ex.last_summary.simulated == len(cells)
        assert len(list((tmp_path / "traces").iterdir())) == len(cells)
        assert len(results) == len(cells)

    def test_profile_dir_writes_prof_files(self, tmp_path):
        ex = Executor(jobs=1, profile_dir=tmp_path)
        ex.run_cells(_cells()[:1])
        profs = list(tmp_path.glob("*.prof"))
        assert len(profs) == 1
        import pstats
        pstats.Stats(str(profs[0]))  # parseable profile data

    def test_traced_stats_match_untraced(self, tmp_path):
        (cell,) = _cells()[:1]
        plain = Executor(jobs=1).run_cells([cell])[cell]
        traced = Executor(jobs=1,
                          trace_dir=tmp_path).run_cells([cell])[cell]
        assert asdict(plain) == asdict(traced)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_run_trace_then_render(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["run", "vector_sum", "--scheduler", "base",
                     "--trace", str(path)]) == 0
        captured = capsys.readouterr()
        assert path.exists()
        assert "trace:" in captured.err
        assert main(["trace", str(path), "--count", "8"]) == 0
        out = capsys.readouterr().out
        assert "cycle origin" in out
        assert "committed" in out  # viewer summary line

    def test_run_trace_limit(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["run", "vector_sum", "--scheduler", "base",
                     "--trace", str(path), "--trace-limit", "25"]) == 0
        assert "dropped" in capsys.readouterr().err
        assert len(list(read_trace(path))) == 25

    def test_figure_trace_dir(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        assert main(["figure", "14", "--insts", "800",
                     "--benchmarks", "gap", "--jobs", "1", "--no-cache",
                     "--trace-dir", str(traces)]) == 0
        capsys.readouterr()
        files = sorted(traces.iterdir())
        assert files  # one JSONL per cell
        assert main(["trace", str(files[0])]) == 0
        assert "cycle origin" in capsys.readouterr().out
