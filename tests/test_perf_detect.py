"""Degradation-detector edge cases (`repro.perf.detect`).

The contract under test: `repro perf check` exits 0 on an identical
profile, 1 on an injected >=20% throughput slowdown or on *any*
deterministic-counter drift, and 2 on operational errors (missing
baseline, schema mismatch).  Statistical edges — zero-variance samples,
a single repetition, noisy-but-insignificant medians — must each resolve
deliberately, never by crashing or silently passing.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.perf import (
    PERF_SCHEMA,
    DegradationReport,
    PerfProfile,
    SchemaMismatchError,
    TargetProfile,
    check_profiles,
    rank_sum_p,
)
from repro.perf.detect import DRIFT, ERROR, IMPROVEMENT, OK, REGRESSION


def make_profile(sha="base", cells_per_sec=(100.0, 101.0, 99.0, 100.5,
                                            102.0),
                 counters=None, calibration=(0.5, 0.5, 0.5),
                 executor=None, cells=6):
    samples = list(cells_per_sec)
    target = TargetProfile(
        description="test target",
        benchmarks=["gap", "vortex"],
        configs=["base", "macro-op"],
        cells=cells,
        sim_cycles=5000,
        wall_seconds=[cells / value for value in samples],
        cells_per_sec=samples,
        cycles_per_sec=[value * 50 for value in samples],
        counters=dict(counters if counters is not None
                      else {"cycles": 5000, "replayed_ops": 40,
                            "mops_formed": 120}),
    )
    return PerfProfile(
        sha=sha,
        created="2026-08-08T00:00:00+00:00",
        python="3.11",
        platform="test",
        quick=True,
        repetitions=len(samples),
        num_insts=1500,
        calibration_seconds=list(calibration),
        executor=dict(executor if executor is not None
                      else {"warm_cells": 6, "warm_hits": 6}),
        targets={"grid": target},
    )


def scaled(profile, factor, sha="cand"):
    clone = PerfProfile.from_dict(profile.to_dict())
    clone.sha = sha
    target = clone.targets["grid"]
    target.cells_per_sec = [v * factor for v in target.cells_per_sec]
    target.cycles_per_sec = [v * factor for v in target.cycles_per_sec]
    target.wall_seconds = [v / factor for v in target.wall_seconds]
    return clone


class TestRankSum:
    def test_identical_samples_not_significant(self):
        assert rank_sum_p([1.0, 1.0, 1.0], [1.0, 1.0, 1.0]) == 1.0

    def test_clear_separation_is_significant(self):
        base = [100.0, 101.0, 99.0, 100.0, 102.0]
        cur = [75.0, 74.0, 76.0, 75.0, 73.0]
        assert rank_sum_p(base, cur) < 0.01

    def test_higher_current_not_flagged(self):
        base = [100.0, 101.0, 99.0]
        cur = [150.0, 151.0, 149.0]
        assert rank_sum_p(base, cur) > 0.9

    def test_empty_side_is_inconclusive(self):
        assert rank_sum_p([], [1.0]) == 1.0
        assert rank_sum_p([1.0], []) == 1.0


class TestCheckProfiles:
    def test_identical_profiles_pass(self):
        base = make_profile()
        report = check_profiles(base, make_profile(sha="same"))
        assert report.ok
        assert all(c.verdict == OK for c in report.checks)

    def test_injected_slowdown_fails(self):
        base = make_profile()
        report = check_profiles(base, scaled(base, 0.75))
        verdicts = {(c.target, c.metric): c.verdict
                    for c in report.checks}
        assert verdicts[("grid", "cells_per_sec")] == REGRESSION
        assert not report.ok

    def test_small_change_passes(self):
        base = make_profile()
        report = check_profiles(base, scaled(base, 0.95))
        assert report.ok

    def test_improvement_is_not_a_failure(self):
        base = make_profile()
        report = check_profiles(base, scaled(base, 1.5))
        assert report.ok
        assert any(c.verdict == IMPROVEMENT for c in report.checks)

    def test_counter_drift_fails_even_with_identical_timing(self):
        base = make_profile()
        cand = make_profile(sha="cand")
        cand.targets["grid"].counters["replayed_ops"] += 1
        report = check_profiles(base, cand)
        assert not report.ok
        drift = [c for c in report.checks if c.verdict == DRIFT]
        assert [c.metric for c in drift] == ["replayed_ops"]

    def test_new_counter_is_drift(self):
        base = make_profile()
        cand = make_profile(sha="cand")
        cand.targets["grid"].counters["brand_new"] = 7
        report = check_profiles(base, cand)
        assert [c.metric for c in report.drifts] == ["brand_new"]

    def test_cache_exercise_drift_fails(self):
        base = make_profile()
        cand = make_profile(sha="cand",
                            executor={"warm_cells": 6, "warm_hits": 0})
        report = check_profiles(base, cand)
        assert not report.ok
        assert any(c.target == "executor_cache" and c.verdict == DRIFT
                   for c in report.checks)

    def test_zero_variance_identical_passes(self):
        base = make_profile(cells_per_sec=(100.0, 100.0, 100.0))
        cand = make_profile(sha="cand",
                            cells_per_sec=(100.0, 100.0, 100.0))
        assert check_profiles(base, cand).ok

    def test_zero_variance_big_drop_fails(self):
        base = make_profile(cells_per_sec=(100.0, 100.0, 100.0, 100.0))
        cand = make_profile(sha="cand",
                            cells_per_sec=(70.0, 70.0, 70.0, 70.0))
        report = check_profiles(base, cand)
        assert not report.ok
        assert report.regressions

    def test_single_repetition_uses_threshold_only(self):
        base = make_profile(cells_per_sec=(100.0,))
        bad = make_profile(sha="bad", cells_per_sec=(70.0,))
        report = check_profiles(base, bad)
        assert not report.ok
        regression = report.regressions[0]
        assert "repetition" in regression.note
        ok = check_profiles(base, make_profile(sha="ok",
                                               cells_per_sec=(99.0,)))
        assert ok.ok

    def test_noisy_overlap_is_not_significant(self):
        # Median drops 24.8% but the samples interleave: the rank test
        # refuses to call it at alpha=0.05, and the check must say so
        # rather than fail.
        base = make_profile(cells_per_sec=(100.0, 101.0, 250.0))
        cand = make_profile(sha="cand",
                            cells_per_sec=(75.0, 76.0, 240.0))
        report = check_profiles(base, cand)
        assert report.ok
        noted = [c for c in report.checks
                 if c.metric == "cells_per_sec"]
        assert "not significant" in noted[0].note

    def test_missing_target_is_an_error(self):
        base = make_profile()
        cand = make_profile(sha="cand")
        del cand.targets["grid"]
        report = check_profiles(base, cand)
        assert not report.ok
        assert any(c.verdict == ERROR for c in report.checks)

    def test_grid_shape_mismatch_is_an_error_not_a_regression(self):
        base = make_profile()
        cand = make_profile(sha="cand", cells=12)
        report = check_profiles(base, cand)
        assert not report.ok
        assert any(c.metric == "grid" and c.verdict == ERROR
                   for c in report.checks)
        assert not report.regressions

    def test_backend_mismatch_is_an_error_not_a_regression(self):
        base = make_profile()
        cand = make_profile(sha="cand")
        cand.backend = "numpy"
        report = check_profiles(base, cand)
        assert not report.ok
        assert [c.metric for c in report.checks] == ["backend"]
        assert report.checks[0].verdict == ERROR
        assert "kernel" in report.checks[0].note
        assert not report.regressions

    def test_pre_backend_profiles_default_to_python(self):
        # A profile written before the field existed deserializes as
        # python-backend and stays comparable with a fresh python run.
        payload = make_profile().to_dict()
        del payload["backend"]
        old = PerfProfile.from_dict(payload)
        assert old.backend == "python"
        assert check_profiles(old, make_profile(sha="new")).ok


class TestNormalization:
    def test_slower_host_is_normalized_away(self):
        # Candidate host is 2x slower: raw throughput halves, but its
        # calibration doubles, so the check normalizes back to parity.
        base = make_profile(calibration=(0.5, 0.5, 0.5))
        cand = scaled(base, 0.5)
        cand.calibration_seconds = [1.0, 1.0, 1.0]
        assert check_profiles(base, cand).ok

    def test_without_normalization_the_same_delta_fails(self):
        base = make_profile(calibration=(0.5, 0.5, 0.5))
        cand = scaled(base, 0.5)
        cand.calibration_seconds = [1.0, 1.0, 1.0]
        report = check_profiles(base, cand, normalize=False)
        assert not report.ok

    def test_real_slowdown_survives_normalization(self):
        # Same host speed (identical calibration), genuinely slower
        # code: normalization must not absolve it.
        base = make_profile()
        report = check_profiles(base, scaled(base, 0.7))
        assert not report.ok

    def test_missing_calibration_skips_normalization(self):
        base = make_profile(calibration=())
        report = check_profiles(base, scaled(base, 1.0, sha="cand"))
        assert report.normalization is None
        assert report.ok


class TestSchemaAndStore:
    def test_schema_mismatch_refused(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        payload = make_profile().to_dict()
        payload["schema"] = PERF_SCHEMA + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaMismatchError):
            PerfProfile.load(path)

    def test_arbitrary_json_refused(self, tmp_path):
        path = tmp_path / "BENCH_junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(SchemaMismatchError):
            PerfProfile.load(path)

    def test_round_trip(self, tmp_path):
        profile = make_profile()
        path = profile.save(tmp_path / "BENCH_base.json")
        clone = PerfProfile.load(path)
        assert clone.to_dict() == profile.to_dict()


class TestCheckCli:
    def save(self, profile, tmp_path, name):
        return profile.save(tmp_path / name)

    def test_identical_exits_zero(self, tmp_path, capsys):
        base = self.save(make_profile(), tmp_path, "BENCH_baseline.json")
        code = repro_main(["perf", "check", "--baseline", str(base),
                           "--candidate", str(base)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        profile = make_profile()
        base = self.save(profile, tmp_path, "BENCH_baseline.json")
        cand = self.save(scaled(profile, 0.75), tmp_path, "BENCH_c.json")
        code = repro_main(["perf", "check", "--baseline", str(base),
                           "--candidate", str(cand)])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_counter_drift_exits_one(self, tmp_path, capsys):
        profile = make_profile()
        base = self.save(profile, tmp_path, "BENCH_baseline.json")
        drifted = make_profile(sha="cand")
        drifted.targets["grid"].counters["cycles"] += 1
        cand = self.save(drifted, tmp_path, "BENCH_c.json")
        code = repro_main(["perf", "check", "--baseline", str(base),
                           "--candidate", str(cand)])
        assert code == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        code = repro_main(["perf", "check", "--baseline",
                           str(tmp_path / "BENCH_absent.json"),
                           "--candidate",
                           str(tmp_path / "BENCH_absent.json")])
        assert code == 2
        assert "perf check" in capsys.readouterr().err

    def test_schema_mismatch_exits_two(self, tmp_path, capsys):
        payload = make_profile().to_dict()
        payload["schema"] = 999
        stale = tmp_path / "BENCH_stale.json"
        stale.write_text(json.dumps(payload))
        code = repro_main(["perf", "check", "--baseline", str(stale),
                           "--candidate", str(stale)])
        assert code == 2
        assert "schema" in capsys.readouterr().err

    def test_threshold_flag_loosens_the_gate(self, tmp_path, capsys):
        profile = make_profile()
        base = self.save(profile, tmp_path, "BENCH_baseline.json")
        cand = self.save(scaled(profile, 0.75), tmp_path, "BENCH_c.json")
        code = repro_main(["perf", "check", "--baseline", str(base),
                           "--candidate", str(cand),
                           "--threshold", "0.5"])
        assert code == 0
        capsys.readouterr()


class TestReportRender:
    def test_render_mentions_failure_counts(self):
        base = make_profile()
        report = check_profiles(base, scaled(base, 0.7))
        text = report.render()
        assert "FAIL" in text
        assert "timing regression" in text

    def test_empty_report_is_a_pass(self):
        assert DegradationReport().ok
