"""Tests for the fetch frontend."""

from repro.core import MachineConfig
from repro.core.frontend import Frontend
from repro.core.stats import SimStats
from repro.isa.assembler import assemble
from repro.isa.interpreter import run_program
from repro.memory import MemoryHierarchy
from repro.workloads.trace import Trace
from tests.conftest import TraceBuilder


def make_frontend(trace, **cfg_kw):
    config = MachineConfig.paper_default(**cfg_kw)
    hierarchy = MemoryHierarchy()
    for op in trace.ops:          # warm IL1: isolate fetch-policy behaviour
        hierarchy.l2.access(op.pc * 4)
        hierarchy.il1.access(op.pc * 4)
    return Frontend(config, trace, hierarchy, SimStats())


class TestFetchGrouping:
    def test_width_limits_group(self):
        tb = TraceBuilder()
        for i in range(10):
            tb.alu(dest=1)
        frontend = make_frontend(tb.build())
        frontend.stalled_until = 0
        group = frontend.fetch_group(now=100)
        assert len(group) == 4

    def test_taken_branch_ends_group(self):
        tb = TraceBuilder()
        tb.alu(dest=1)
        tb.branch(src=1, taken=True, mispred=False)
        tb.alu(dest=2)
        frontend = make_frontend(tb.build())
        group = frontend.fetch_group(now=100)
        assert len(group) == 2
        assert group[-1].inst.is_branch

    def test_not_taken_branch_does_not_end_group(self):
        tb = TraceBuilder()
        tb.alu(dest=1)
        tb.branch(src=1, taken=False, mispred=False)
        tb.alu(dest=2)
        frontend = make_frontend(tb.build())
        assert len(frontend.fetch_group(now=100)) == 3

    def test_nops_filtered_without_slots(self):
        program = assemble("nop\nnop\nli r1, 1\nnop\nli r2, 2\nhalt")
        trace = Trace("t", run_program(program))
        frontend = make_frontend(trace)
        group = frontend.fetch_group(now=100)
        assert all(op.inst.mnemonic != "nop" for op in group)
        assert len(group) == 3  # li, li, halt

    def test_exhaustion(self):
        tb = TraceBuilder()
        tb.alu(dest=1)
        frontend = make_frontend(tb.build())
        frontend.fetch_group(now=100)
        assert frontend.exhausted
        assert frontend.fetch_group(now=101) == []


class TestMispredictStall:
    def test_fetch_stops_after_mispredicted_branch(self):
        tb = TraceBuilder()
        tb.branch(src=1, taken=False, mispred=True)
        tb.alu(dest=1)
        frontend = make_frontend(tb.build())
        group = frontend.fetch_group(now=10)
        assert len(group) == 1
        assert frontend.fetch_group(now=11) == []

    def test_resume_respects_minimum_penalty(self):
        tb = TraceBuilder()
        tb.branch(src=1, taken=False, mispred=True)
        tb.alu(dest=1)
        frontend = make_frontend(tb.build())
        group = frontend.fetch_group(now=10)
        branch = group[0]
        frontend.on_branch_resolved(branch, now=12)  # resolved quickly
        # Resume no earlier than fetch + 14.
        assert frontend.stalled_until >= 10 + 14
        assert frontend.fetch_group(now=frontend.stalled_until - 1) == []
        assert frontend.fetch_group(now=frontend.stalled_until) != []

    def test_late_resolution_dominates_floor(self):
        tb = TraceBuilder()
        tb.branch(src=1, taken=False, mispred=True)
        tb.alu(dest=1)
        frontend = make_frontend(tb.build())
        branch = frontend.fetch_group(now=10)[0]
        frontend.on_branch_resolved(branch, now=200)
        assert frontend.stalled_until >= 201


class TestRealPredictorPath:
    def test_kernel_trace_uses_predictor(self):
        """Hint-free traces exercise the combined predictor; a warm loop
        branch should stop mispredicting."""
        program = assemble("""
            li r1, 0
            li r2, 200
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        trace = Trace("t", run_program(program))
        config = MachineConfig.paper_default()
        stats = SimStats()
        frontend = Frontend(config, trace, MemoryHierarchy(), stats)
        now = 0
        while not frontend.exhausted:
            now += 1
            group = frontend.fetch_group(now)
            for uop in group:
                if uop.inst.is_branch:
                    frontend.on_branch_resolved(uop, now)
            if frontend.stalled_until > now:
                now = frontend.stalled_until
        assert stats.branches >= 200
        # The backward loop branch becomes highly predictable.
        assert stats.mispredicted_branches < 0.1 * stats.branches
