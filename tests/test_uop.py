"""Unit tests for pipeline uops and functional-unit classing."""

from repro.core.uop import (
    FU_FP_ALU,
    FU_FP_MULT,
    FU_INT_ALU,
    FU_INT_MULT,
    FU_MEM_PORT,
    FU_NONE,
    SOLO,
    Uop,
)
from repro.isa.instruction import DynInst, crack_store
from repro.isa.opcodes import OpClass


def uop_for(op_class, dest=1, srcs=()):
    return Uop(DynInst(seq=0, pc=0, op_class=op_class, dest=dest,
                       srcs=srcs), fetch_cycle=7)


class TestFuClasses:
    def test_alu_family(self):
        assert uop_for(OpClass.INT_ALU).fu_class == FU_INT_ALU
        assert uop_for(OpClass.BRANCH, dest=None).fu_class == FU_INT_ALU

    def test_memory_ports(self):
        assert uop_for(OpClass.LOAD).fu_class == FU_MEM_PORT
        addr_op, data_op = crack_store(0, 0, (1,), 2)
        assert Uop(addr_op, 0).fu_class == FU_MEM_PORT
        assert Uop(data_op, 0).fu_class == FU_NONE

    def test_long_latency_units(self):
        assert uop_for(OpClass.INT_MULT).fu_class == FU_INT_MULT
        assert uop_for(OpClass.INT_DIV).fu_class == FU_INT_MULT
        assert uop_for(OpClass.FP_ALU).fu_class == FU_FP_ALU
        assert uop_for(OpClass.FP_DIV).fu_class == FU_FP_MULT


class TestState:
    def test_initial_state(self):
        uop = uop_for(OpClass.INT_ALU)
        assert uop.role == SOLO
        assert uop.entry is None
        assert not uop.completed
        assert uop.fetch_cycle == 7
        assert uop.seq == 0

    def test_repr_mentions_mnemonic(self):
        assert "int_alu" in repr(uop_for(OpClass.INT_ALU))
