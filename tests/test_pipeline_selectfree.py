"""Integration tests for the select-free scheduling models (Figure 16)."""

import pytest

from repro.core import MachineConfig, SchedulerKind, simulate
from repro.workloads import generate_trace, get_profile
from tests.conftest import TraceBuilder, chain_trace


def cfg(sched, **kw):
    kw.setdefault("iq_size", None)
    return MachineConfig(scheduler=sched, **kw)


class TestNoCollisions:
    def test_squash_dep_matches_base_on_serial_chain(self):
        """One live chain means one ready op per cycle: no collisions, so
        select-free equals atomic scheduling."""
        trace = chain_trace(300)
        base = simulate(trace, cfg(SchedulerKind.BASE))
        squash = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SQUASH))
        assert squash.cycles == base.cycles
        assert squash.select_collisions == 0

    def test_scoreboard_matches_base_on_serial_chain(self):
        trace = chain_trace(300)
        base = simulate(trace, cfg(SchedulerKind.BASE))
        board = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SCOREBOARD))
        assert board.cycles == base.cycles
        assert board.pileup_victims == 0


class TestCollisions:
    def _bursty_trace(self):
        """A slow producer fans out to many 1-cycle consumers that all
        wake in the same cycle: far more ready ops than select bandwidth,
        with dependents hanging off every consumer."""
        tb = TraceBuilder()
        for i in range(40):
            tb.mult(dest=1, srcs=(1,))
            for j in range(10):
                tb.alu(dest=2 + j, srcs=(1,))
                tb.alu(dest=13 + j, srcs=(2 + j,))
        return tb.build()

    def test_collisions_detected(self):
        trace = self._bursty_trace()
        squash = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SQUASH))
        assert squash.select_collisions > 0

    def test_scoreboard_produces_pileup_victims(self):
        trace = self._bursty_trace()
        board = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SCOREBOARD))
        assert board.pileup_victims > 0
        assert board.replayed_ops > 0

    def test_squash_dep_has_no_pileups(self):
        """The paper: squash-dep invalidates dependents before they issue,
        'hence no pileup victim exists'."""
        trace = self._bursty_trace()
        squash = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SQUASH))
        assert squash.pileup_victims == 0

    def test_scoreboard_not_faster_than_squash_dep(self):
        trace = self._bursty_trace()
        squash = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SQUASH))
        board = simulate(trace, cfg(SchedulerKind.SELECT_FREE_SCOREBOARD))
        assert board.cycles >= squash.cycles

    def test_base_not_slower_than_select_free(self):
        """Select-free is speculative; it cannot beat atomic scheduling."""
        trace = self._bursty_trace()
        base = simulate(trace, cfg(SchedulerKind.BASE))
        for sched in (SchedulerKind.SELECT_FREE_SQUASH,
                      SchedulerKind.SELECT_FREE_SCOREBOARD):
            assert simulate(trace, cfg(sched)).cycles >= base.cycles


@pytest.mark.slow
class TestOnWorkloads:
    @pytest.mark.parametrize("bench", ["gap", "vortex"])
    def test_figure16_ordering(self, bench):
        """base ≥ squash-dep ≥ scoreboard on realistic workloads."""
        trace = generate_trace(get_profile(bench), 4000)
        config32 = MachineConfig.paper_default
        base = simulate(trace, config32(scheduler=SchedulerKind.BASE)).ipc
        squash = simulate(trace, config32(
            scheduler=SchedulerKind.SELECT_FREE_SQUASH)).ipc
        board = simulate(trace, config32(
            scheduler=SchedulerKind.SELECT_FREE_SCOREBOARD)).ipc
        # Select-free cannot meaningfully beat the baseline (small timing
        # anomalies aside), and the scoreboard configuration pays for its
        # late pileup detection.
        assert squash <= base * 1.01
        assert board <= squash * 1.01

    def test_everything_commits(self):
        trace = generate_trace(get_profile("gcc"), 3000)
        for sched in (SchedulerKind.SELECT_FREE_SQUASH,
                      SchedulerKind.SELECT_FREE_SCOREBOARD):
            stats = simulate(trace, MachineConfig.paper_default(
                scheduler=sched))
            assert stats.committed_insts == 3000
