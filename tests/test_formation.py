"""Unit tests for MOP formation (pair location + insertion policy)."""

from typing import Optional, Tuple

from repro.core import MachineConfig, SchedulerKind
from repro.core.uop import Uop
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.mop.formation import ATTACH, MOP, PENDING, SOLO, MopFormation
from repro.mop.pointers import MopPointer, PointerCache


def make_uop(seq: int, pc: int, op_class: OpClass = OpClass.INT_ALU,
             dest: Optional[int] = None, srcs: Tuple[int, ...] = (),
             taken: bool = False) -> Uop:
    inst = DynInst(seq=seq, pc=pc, op_class=op_class, dest=dest, srcs=srcs,
                   taken=taken)
    return Uop(inst, fetch_cycle=0)


def formation_with(pointers) -> MopFormation:
    config = MachineConfig.paper_default(scheduler=SchedulerKind.MACRO_OP)
    cache = PointerCache(detection_delay=0)
    for pointer in pointers:
        cache.install(pointer, now=-100)
    return MopFormation(config, cache)


class TestSameGroupPairing:
    def test_pair_in_one_group(self):
        form = formation_with([MopPointer(0, 2, 2, 0)])
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, dest=2),
                 make_uop(2, pc=2, dest=3, srcs=(1,))]
        directives = form.process_group(group, now=0)
        verbs = [d.verb for d in directives]
        assert verbs == [MOP, SOLO]
        assert directives[0].tail is group[2]

    def test_no_pointer_means_all_solo(self):
        form = formation_with([])
        group = [make_uop(i, pc=i) for i in range(4)]
        directives = form.process_group(group, now=0)
        assert all(d.verb == SOLO for d in directives)

    def test_wrong_tail_pc_blocks_grouping(self):
        """Control flow diverged: the slot holds a different instruction."""
        form = formation_with([MopPointer(0, 99, 1, 0)])
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, dest=2, srcs=(1,))]
        directives = form.process_group(group, now=0)
        assert [d.verb for d in directives] == [SOLO, SOLO]

    def test_control_bit_mismatch_blocks_grouping(self):
        """Pointer recorded a fall-through path; now a taken branch sits
        between head and tail (Section 5.2.1)."""
        form = formation_with([MopPointer(0, 2, 2, 0)])
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, op_class=OpClass.BRANCH, taken=True),
                 make_uop(2, pc=2, dest=3, srcs=(1,))]
        directives = form.process_group(group, now=0)
        assert directives[0].verb == SOLO

    def test_control_bit_match_allows_grouping(self):
        form = formation_with([MopPointer(0, 2, 2, 1)])
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, op_class=OpClass.BRANCH, taken=True),
                 make_uop(2, pc=2, dest=3, srcs=(1,))]
        directives = form.process_group(group, now=0)
        assert directives[0].verb == MOP

    def test_tail_claimed_once(self):
        """Two heads pointing at the same tail: first head wins."""
        form = formation_with([MopPointer(0, 2, 2, 0),
                               MopPointer(1, 2, 1, 0)])
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, dest=2),
                 make_uop(2, pc=2, dest=3, srcs=(1,))]
        directives = form.process_group(group, now=0)
        assert directives[0].verb == MOP
        assert directives[1].verb == SOLO

    def test_pointer_delay_respected(self):
        config = MachineConfig.paper_default(
            scheduler=SchedulerKind.MACRO_OP)
        cache = PointerCache(detection_delay=10)
        cache.install(MopPointer(0, 1, 1, 0), now=0)
        form = MopFormation(config, cache)
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, dest=2, srcs=(1,))]
        assert all(d.verb == SOLO
                   for d in form.process_group(group, now=5))


class TestCrossGroupPending:
    def test_pending_then_attach(self):
        form = formation_with([MopPointer(2, 5, 3, 0)])
        group1 = [make_uop(0, pc=0), make_uop(1, pc=1),
                  make_uop(2, pc=2, dest=1), make_uop(3, pc=3)]
        group2 = [make_uop(4, pc=4), make_uop(5, pc=5, dest=2, srcs=(1,))]
        d1 = form.process_group(group1, now=0)
        assert [d.verb for d in d1] == [SOLO, SOLO, PENDING, SOLO]
        d2 = form.process_group(group2, now=1)
        assert [d.verb for d in d2] == [SOLO, ATTACH]
        attach = d2[1]
        assert attach.head_uop is group1[2]

    def test_gap_group_abandons_pending(self):
        """The tail's group must be the very next group (Figure 11)."""
        form = formation_with([MopPointer(2, 5, 3, 0)])
        group1 = [make_uop(0, pc=0), make_uop(1, pc=1),
                  make_uop(2, pc=2, dest=1), make_uop(3, pc=3)]
        form.process_group(group1, now=0)
        # An unrelated group arrives instead of the expected one.
        other = [make_uop(10, pc=50), make_uop(11, pc=51)]
        form.process_group(other, now=1)
        assert form.last_abandoned == [group1[2]]

    def test_wrong_path_tail_abandoned(self):
        form = formation_with([MopPointer(2, 5, 3, 0)])
        group1 = [make_uop(0, pc=0), make_uop(1, pc=1),
                  make_uop(2, pc=2, dest=1), make_uop(3, pc=3)]
        form.process_group(group1, now=0)
        group2 = [make_uop(4, pc=4), make_uop(5, pc=99)]  # different pc
        directives = form.process_group(group2, now=1)
        assert form.last_abandoned == [group1[2]]
        assert all(d.verb == SOLO for d in directives)

    def test_offset_beyond_next_group_never_pends(self):
        """Head and tail must sit in the same or consecutive groups."""
        form = formation_with([MopPointer(3, 99, 7, 0)])
        group = [make_uop(0, pc=0), make_uop(1, pc=1), make_uop(2, pc=2),
                 make_uop(3, pc=3, dest=1)]
        directives = form.process_group(group, now=0)
        # position 3 + offset 7 = 10, beyond the next group's last slot 7.
        assert directives[3].verb == SOLO

    def test_short_group_can_continue_into_next(self):
        """A fetch-broken group still flows into the next group along the
        dynamic path; the tail-PC check at attach time catches divergence."""
        form = formation_with([MopPointer(1, 3, 2, 0)])
        group = [make_uop(0, pc=0), make_uop(1, pc=1, dest=1)]
        directives = form.process_group(group, now=0)
        assert directives[1].verb == PENDING
        attach = form.process_group(
            [make_uop(2, pc=2), make_uop(3, pc=3, dest=2, srcs=(1,))],
            now=1)
        assert [d.verb for d in attach] == [SOLO, ATTACH]

    def test_full_width_group_pends(self):
        form = formation_with([MopPointer(3, 4, 1, 0)])
        group = [make_uop(i, pc=i) for i in range(3)]
        group.append(make_uop(3, pc=3, dest=1))
        directives = form.process_group(group, now=0)
        assert directives[3].verb == PENDING


class TestStats:
    def test_pairs_formed_counted(self):
        form = formation_with([MopPointer(0, 1, 1, 0)])
        group = [make_uop(0, pc=0, dest=1),
                 make_uop(1, pc=1, dest=2, srcs=(1,))]
        form.process_group(group, now=0)
        assert form.pairs_formed == 1

    def test_abandons_counted(self):
        form = formation_with([MopPointer(2, 5, 3, 0)])
        group1 = [make_uop(0, pc=0), make_uop(1, pc=1),
                  make_uop(2, pc=2, dest=1), make_uop(3, pc=3)]
        form.process_group(group1, now=0)
        form.process_group([make_uop(9, pc=77)], now=1)
        assert form.pending_abandoned == 1
