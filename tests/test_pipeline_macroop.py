"""Integration tests for macro-op scheduling inside the pipeline."""


from repro.core import MachineConfig, SchedulerKind, WakeupStyle, simulate
from repro.core.pipeline import Processor
from tests.conftest import TraceBuilder, chain_trace


def mop_cfg(**kw):
    kw.setdefault("iq_size", None)
    kw.setdefault("wakeup_style", WakeupStyle.WIRED_OR)
    return MachineConfig(scheduler=SchedulerKind.MACRO_OP, **kw)


def looping_pair_trace(iterations: int) -> TraceBuilder:
    """Two dependent ALUs per iteration at fixed PCs: the canonical MOP."""
    tb = TraceBuilder()
    for i in range(iterations):
        tb.alu(dest=1, srcs=(2,), pc=0)
        tb.alu(dest=2, srcs=(1,), pc=1)
    return tb


class TestGrouping:
    def test_pairs_form_after_detection_delay(self):
        trace = looping_pair_trace(100).build()
        processor = Processor(mop_cfg(), trace)
        stats = processor.run()
        assert stats.mops_formed > 50
        assert processor.pointers.created >= 1

    def test_first_instances_run_solo(self):
        """Before the pointer exists (detection delay), no grouping."""
        trace = looping_pair_trace(100).build()
        stats = simulate(trace, mop_cfg(mop_detection_delay=10**6))
        assert stats.mops_formed == 0

    def test_grouping_shares_queue_entries(self):
        trace = looping_pair_trace(100).build()
        stats = simulate(trace, mop_cfg())
        # Each MOP consumes one insert instead of two.
        assert stats.iq_inserts < stats.committed_ops
        assert stats.insert_reduction > 0.2

    def test_commit_counts_by_category(self):
        trace = looping_pair_trace(100).build()
        stats = simulate(trace, mop_cfg())
        total = (stats.mop_valuegen + stats.mop_nonvaluegen
                 + stats.independent_mop + stats.candidate_ungrouped
                 + stats.not_candidate)
        assert total == stats.committed_insts

    def test_dependent_pairs_are_valuegen_category(self):
        trace = looping_pair_trace(100).build()
        stats = simulate(trace, mop_cfg(independent_mops=False))
        assert stats.mop_valuegen > 0
        assert stats.independent_mop == 0


class TestMopTiming:
    def test_mop_beats_two_cycle_on_chains(self):
        trace = chain_trace(400, loop=True)
        two = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.TWO_CYCLE, iq_size=None))
        mop = simulate(trace, mop_cfg())
        assert mop.cycles < two.cycles

    def test_mop_never_much_worse_than_two_cycle(self):
        """Macro-op scheduling is 2-cycle scheduling plus grouping; the
        grouping may occasionally serialize but must stay close."""
        for build in (chain_trace(200, loop=True),
                      looping_pair_trace(100).build()):
            two = simulate(build, MachineConfig(
                scheduler=SchedulerKind.TWO_CYCLE, iq_size=None))
            mop = simulate(build, mop_cfg())
            assert mop.cycles <= two.cycles * 1.10 + 20

    def test_ungrouped_ops_behave_as_two_cycle(self, tb):
        """Loads cannot group: a load-only trace ties 2-cycle exactly."""
        for i in range(100):
            tb.load(dest=1 + i % 4, base=9, mem_hint=0, pc=i % 8)
        trace = tb.build()
        two = simulate(trace, MachineConfig(
            scheduler=SchedulerKind.TWO_CYCLE, iq_size=None))
        mop = simulate(trace, mop_cfg())
        assert mop.cycles == two.cycles


class TestWakeupStyles:
    def test_cam2_rejects_three_source_pair_wired_or_takes_it(self):
        """Three merged sources block CAM-style 2-comparator entries; the
        wired-OR bit vector has no such limit (Section 3.1)."""
        tb = TraceBuilder()
        for i in range(120):
            # head has 2 external sources; tail adds a third.
            tb.alu(dest=1, srcs=(3, 4), pc=0)
            tb.alu(dest=2, srcs=(1, 5), pc=1)
            tb.alu(dest=3, srcs=(2,), pc=2)   # keeps the chain alive
            tb.alu(dest=4, srcs=(3,), pc=3)
            tb.alu(dest=5, srcs=(4,), pc=4)
        trace = tb.build()
        cam = Processor(mop_cfg(wakeup_style=WakeupStyle.CAM_2SRC,
                                last_arrival_filter=False), trace)
        cam.run()
        wor = Processor(mop_cfg(wakeup_style=WakeupStyle.WIRED_OR,
                                last_arrival_filter=False), trace)
        wor.run()
        wor_ptr = wor.pointers.lookup(0, now=10**9)
        assert wor_ptr is not None and wor_ptr.tail_pc == 1
        cam_ptr = cam.pointers.lookup(0, now=10**9)
        assert cam_ptr is None or cam_ptr.tail_pc != 1

    def test_wired_or_groups_three_source_pair(self):
        tb = TraceBuilder()
        for i in range(60):
            tb.alu(dest=1, srcs=(3, 4), pc=0)
            tb.alu(dest=2, srcs=(1, 5), pc=1)
            tb.alu(dest=3, srcs=(2,), pc=2)
            tb.alu(dest=4, srcs=(3,), pc=3)
            tb.alu(dest=5, srcs=(4,), pc=4)
        stats = simulate(tb.build(),
                         mop_cfg(wakeup_style=WakeupStyle.WIRED_OR))
        assert stats.mops_formed > 0


class TestPendingTails:
    def test_cross_group_pair_forms(self):
        """Head at the end of one fetch group, tail in the next."""
        tb = TraceBuilder()
        for i in range(100):
            # 5-op loop: the pair (pc3 → pc4) regularly straddles the
            # 4-wide group boundary.
            tb.alu(dest=4, srcs=(9,), pc=0)
            tb.alu(dest=5, srcs=(9,), pc=1)
            tb.alu(dest=6, srcs=(9,), pc=2)
            tb.alu(dest=1, srcs=(2,), pc=3)
            tb.alu(dest=2, srcs=(1,), pc=4)
        stats = simulate(tb.build(), mop_cfg())
        assert stats.mops_formed > 0

    def test_pending_abandon_recovers(self, tb):
        """A mispredicted branch between head and tail must not wedge the
        pipeline: the head runs solo after the pending timeout."""
        for i in range(50):
            tb.alu(dest=1, srcs=(2,), pc=0)
            tb.branch(src=1, taken=False, mispred=(i % 7 == 0), pc=1)
            tb.alu(dest=2, srcs=(1,), pc=2)
        stats = simulate(tb.build(), mop_cfg())
        assert stats.committed_insts == 150


class TestLastArrivalFilter:
    def _late_tail_trace(self):
        """MOP tail whose extra operand comes from a slow multiply —
        the harmful Figure 12 pattern."""
        tb = TraceBuilder()
        for i in range(150):
            tb.mult(dest=5, srcs=(5,), pc=0)    # slow producer
            tb.alu(dest=1, srcs=(2,), pc=1)     # head
            tb.alu(dest=2, srcs=(1, 5), pc=2)   # tail: last arrival = r5
            tb.alu(dest=3, srcs=(1,), pc=3)     # head consumer suffers
        return tb.build()

    def test_filter_deletes_pointers(self):
        trace = self._late_tail_trace()
        on = simulate(trace, mop_cfg(last_arrival_filter=True))
        assert on.mop_pointers_deleted > 0

    def test_filter_never_slower(self):
        trace = self._late_tail_trace()
        on = simulate(trace, mop_cfg(last_arrival_filter=True))
        off = simulate(trace, mop_cfg(last_arrival_filter=False))
        assert on.cycles <= off.cycles + 10


class TestExtraStages:
    def test_extra_stages_cost_little(self):
        trace = chain_trace(300, loop=True)
        cycles = [simulate(trace, mop_cfg(extra_mop_stages=s)).cycles
                  for s in (0, 1, 2)]
        # Deeper frontend costs only on mispredicts; this trace has none.
        assert cycles[2] <= cycles[0] + 10

    def test_extra_stages_hurt_with_mispredicts(self, tb):
        for i in range(60):
            tb.alu(dest=1, srcs=(2,), pc=0)
            tb.branch(src=1, taken=False, mispred=(i % 5 == 0), pc=1)
            tb.alu(dest=2, srcs=(1,), pc=2)
        trace = tb.build()
        c0 = simulate(trace, mop_cfg(extra_mop_stages=0)).cycles
        c2 = simulate(trace, mop_cfg(extra_mop_stages=2)).cycles
        assert c2 >= c0


class TestDetectionDelayInsensitivity:
    def test_delay_100_close_to_delay_3(self):
        """Section 6.2: pointers are reused, so a huge detection delay
        costs little once the run is long relative to the delay."""
        trace = looping_pair_trace(2000).build()
        fast = simulate(trace, mop_cfg(mop_detection_delay=3))
        slow = simulate(trace, mop_cfg(mop_detection_delay=100))
        assert slow.cycles <= fast.cycles * 1.10
