"""Tests for the parameter sweeps."""

import pytest

from repro.experiments.sweeps import queue_size_sweep, rob_size_sweep

pytestmark = pytest.mark.slow


class TestQueueSizeSweep:
    def test_ipc_monotone_in_queue_size(self):
        result = queue_size_sweep(benchmarks=["gap"], num_insts=2500,
                                  sizes=(8, 32, 128))
        row = result.rows["gap"]
        for sched in ("base", "2cyc", "mop"):
            assert row[f"{sched}@8"] <= row[f"{sched}@128"] * 1.01

    def test_mop_shares_entries_at_small_sizes(self):
        """With a tiny queue, entry sharing matters most: macro-op must
        close most of its 2-cycle gap or better."""
        result = queue_size_sweep(benchmarks=["gap"], num_insts=2500,
                                  sizes=(8,))
        row = result.rows["gap"]
        assert row["mop@8"] >= row["2cyc@8"]

    def test_all_columns_present(self):
        result = queue_size_sweep(benchmarks=["mcf"], num_insts=1500,
                                  sizes=(16, 32))
        assert set(result.rows["mcf"]) == {
            "base@16", "base@32", "2cyc@16", "2cyc@32",
            "mop@16", "mop@32",
        }


class TestRobSizeSweep:
    def test_bigger_rob_never_slower(self):
        result = rob_size_sweep(benchmarks=["mcf"], num_insts=2000,
                                sizes=(32, 256))
        row = result.rows["mcf"]
        assert row["rob256"] >= row["rob32"] * 0.995

    def test_mcf_window_sensitive(self):
        """The miss-bound benchmark gains measurably from a larger window
        (more overlapped misses)."""
        result = rob_size_sweep(benchmarks=["mcf"], num_insts=2500,
                                sizes=(32, 256))
        row = result.rows["mcf"]
        assert row["rob256"] > row["rob32"]
