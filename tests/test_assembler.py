"""Unit tests for the text assembler."""

import pytest

from repro.isa.assembler import AsmError, assemble
from repro.isa.opcodes import OpClass
from repro.isa.registers import FP_REG_BASE


class TestBasicEncoding:
    def test_three_operand_alu(self):
        prog = assemble("add r1, r2, r3")
        inst = prog[0]
        assert inst.op_class is OpClass.INT_ALU
        assert inst.dest == 1
        assert inst.srcs == (2, 3)

    def test_immediate_alu(self):
        prog = assemble("addi r1, r2, -5")
        assert prog[0].imm == -5
        assert prog[0].srcs == (2,)

    def test_li_has_no_sources(self):
        prog = assemble("li r4, 100")
        assert prog[0].srcs == ()
        assert prog[0].imm == 100

    def test_hex_immediate(self):
        prog = assemble("li r1, 0xff")
        assert prog[0].imm == 255

    def test_load_memory_operand(self):
        prog = assemble("lw r1, 8(r2)")
        inst = prog[0]
        assert inst.op_class is OpClass.LOAD
        assert inst.dest == 1
        assert inst.srcs == (2,)
        assert inst.imm == 8

    def test_store_records_data_source(self):
        prog = assemble("sw r5, 0(r6)")
        inst = prog[0]
        assert inst.op_class is OpClass.STORE_ADDR
        assert inst.srcs == (6,)
        assert inst.store_src == 5

    def test_negative_displacement(self):
        prog = assemble("lw r1, -4(r2)")
        assert prog[0].imm == -4

    def test_fp_ops_use_fp_registers(self):
        prog = assemble("fadd f1, f2, f3")
        assert prog[0].dest == FP_REG_BASE + 1
        assert prog[0].op_class is OpClass.FP_ALU

    def test_mult_and_div_classes(self):
        prog = assemble("mul r1, r2, r3\ndiv r4, r5, r6")
        assert prog[0].op_class is OpClass.INT_MULT
        assert prog[1].op_class is OpClass.INT_DIV


class TestControlFlow:
    def test_label_resolution(self):
        prog = assemble("""
        start:
            addi r1, r1, 1
            jmp start
        """)
        assert prog[1].target == 0

    def test_forward_label(self):
        prog = assemble("""
            bez r1, end
            nop
        end:
            halt
        """)
        assert prog[0].target == 2

    def test_label_on_same_line(self):
        prog = assemble("loop: addi r1, r1, 1\nbnz r1, loop")
        assert prog.labels["loop"] == 0
        assert prog[1].target == 0

    def test_numeric_branch_target(self):
        prog = assemble("beq r1, r2, 0")
        assert prog[0].target == 0

    def test_indirect_jump(self):
        prog = assemble("jr r9")
        assert prog[0].op_class is OpClass.JUMP_INDIRECT
        assert prog[0].srcs == (9,)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError, match="expects"):
            assemble("add r1, r2")

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("a:\na:\nnop")

    def test_bad_memory_operand(self):
        with pytest.raises(AsmError):
            assemble("lw r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AsmError, match="line 2"):
            assemble("nop\nbogus r1")


class TestProgramHelpers:
    def test_comments_and_blanks_ignored(self):
        prog = assemble("""
        # a comment
        nop   # trailing comment

        halt
        """)
        assert len(prog) == 2

    def test_disassemble_mentions_labels(self):
        prog = assemble("loop: jmp loop")
        text = prog.disassemble()
        assert "loop:" in text
        assert "jmp" in text
