"""Tests for the simlint invariant checker (SL001–SL009).

Each rule gets a positive test (a known-bad fixture it must flag) and a
negative test (the sanctioned variant it must pass).  Fixtures live in
``tests/simlint_fixtures/`` and are planted into a temporary tree that
mirrors the package layout — ``lint_paths(root=...)`` then scopes their
dotted names exactly like the real ``src/repro`` tree, which is how the
layer- and module-scoped rules see them.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.devtools.simlint import SourceError, lint_paths
from repro.devtools.simlint.cli import main as simlint_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "simlint_fixtures"
REPO_SRC = Path(__file__).resolve().parent.parent / "src"

#: (bad fixture, clean fixture, destination inside the fake tree, code)
RULE_CASES = [
    ("sl001_bad.py", "sl001_ok.py", "repro/core/clock.py", "SL001"),
    ("sl002_bad.py", "sl002_ok.py", "repro/core/hooks.py", "SL002"),
    ("sl003_bad.py", "sl003_ok.py", "repro/experiments/errors.py",
     "SL003"),
    ("sl004_bad_stats.py", "sl004_ok_stats.py", "repro/core/stats.py",
     "SL004"),
    ("sl005_bad_executor.py", "sl005_ok_executor.py",
     "repro/experiments/executor.py", "SL005"),
    ("sl006_bad.py", "sl006_ok.py", "repro/experiments/pool_utils.py",
     "SL006"),
    ("sl007_bad.py", "sl007_ok.py", "repro/analysis/timed_render.py",
     "SL007"),
    ("sl008_bad.py", "sl008_ok.py", "repro/mop/matrix_detect.py",
     "SL008"),
    ("sl009_bad.py", "sl009_ok.py", "repro/service/handlers.py",
     "SL009"),
]


def plant(tmp_path, fixture, dest_rel):
    """Copy *fixture* to *dest_rel* inside a fake package tree."""
    dest = tmp_path / dest_rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text((FIXTURES / fixture).read_text(encoding="utf-8"),
                    encoding="utf-8")
    return dest


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "bad,ok,dest,code", RULE_CASES,
        ids=[case[3] for case in RULE_CASES])
    def test_bad_fixture_is_flagged(self, tmp_path, bad, ok, dest, code):
        plant(tmp_path, bad, dest)
        findings = lint_paths([tmp_path], root=tmp_path)
        assert findings, f"{bad} produced no findings"
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize(
        "bad,ok,dest,code", RULE_CASES,
        ids=[case[3] for case in RULE_CASES])
    def test_clean_fixture_passes(self, tmp_path, bad, ok, dest, code):
        plant(tmp_path, ok, dest)
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl002_flags_class_body_import_too(self, tmp_path):
        plant(tmp_path, "sl002_bad.py", "repro/core/hooks.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        # The top-level `from repro.trace...` import and the eager
        # class-body `import repro.experiments` are both violations.
        assert len(findings) == 2

    def test_sl005_reports_all_three_defects(self, tmp_path):
        plant(tmp_path, "sl005_bad_executor.py",
              "repro/experiments/executor.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        messages = " ".join(f.message for f in findings)
        assert "max_cycles" in messages          # forgotten field
        assert "asdict" in messages              # config hashed as str
        assert "stale" in messages               # 'colour' exclusion

    def test_rules_ignore_modules_outside_their_layer(self, tmp_path):
        # The same wall-clock calls are fine outside core/mop/memory:
        # SL001 polices the simulated machine, not the tooling around it.
        plant(tmp_path, "sl001_bad.py", "repro/experiments/timing.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl006_exempts_the_fault_harness(self, tmp_path):
        plant(tmp_path, "sl006_bad.py", "repro/experiments/faults.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl007_exempts_the_measurement_layer(self, tmp_path):
        # The same wall-clock reads are the whole point inside the perf
        # subsystem, the executor and the bench harness.
        plant(tmp_path, "sl007_bad.py", "repro/perf/collector_extra.py")
        plant(tmp_path, "sl007_bad.py", "repro/experiments/timers.py")
        plant(tmp_path, "sl007_bad.py", "benchmarks/warmup.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl007_defers_the_core_to_sl001(self, tmp_path):
        # One bad call inside repro.core must yield exactly one finding
        # (SL001's), not an SL001+SL007 double report.
        plant(tmp_path, "sl007_bad.py", "repro/core/clocked.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert findings
        assert {f.code for f in findings} == {"SL001"}

    def test_sl007_flags_every_wall_clock_read(self, tmp_path):
        plant(tmp_path, "sl007_bad.py", "repro/trace/latency.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        # time.perf_counter(), the from-import perf_counter() and
        # time.time() are three distinct violations.
        assert len(findings) == 3
        assert {f.code for f in findings} == {"SL007"}

    def test_sl008_exempts_the_backend_package(self, tmp_path):
        # The vectorized kernel is the one sanctioned numpy home.
        plant(tmp_path, "sl008_bad.py",
              "repro/core/backend/vector_extra.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl008_flags_lazy_imports_too(self, tmp_path):
        # Unlike SL002, confinement is total: the module-level import,
        # the from-import and the function-local import are three
        # distinct violations.
        plant(tmp_path, "sl008_bad.py", "repro/core/pipeline_extra.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        assert len(findings) == 3
        assert {f.code for f in findings} == {"SL008"}

    def test_sl009_flags_every_blocking_call(self, tmp_path):
        plant(tmp_path, "sl009_bad.py", "repro/service/handlers.py")
        findings = lint_paths([tmp_path], root=tmp_path)
        # time.sleep, the from-import sleep, subprocess.run and
        # socket.create_connection are four distinct violations.
        assert len(findings) == 4
        assert {f.code for f in findings} == {"SL009"}

    def test_sl009_only_polices_the_service_layer(self, tmp_path):
        # The same calls outside repro.service are someone else's
        # business (the executor blocks in worker threads by design).
        plant(tmp_path, "sl009_bad.py", "repro/experiments/pool_aux.py")
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_sl009_ignores_sync_functions_in_service(self, tmp_path):
        # The synchronous CLI client lives in repro.service and blocks
        # by design; only coroutine bodies are policed.
        source = (
            "import time\n"
            "\n"
            "\n"
            "def poll() -> None:\n"
            "    time.sleep(0.1)\n"
        )
        target = tmp_path / "repro" / "service" / "client_extra.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        assert lint_paths([tmp_path], root=tmp_path) == []


class TestSuppressions:
    def test_directive_silences_its_code(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def t() -> float:\n"
            "    return time.time()  # simlint: disable=SL001\n"
        )
        target = tmp_path / "repro" / "core" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        assert lint_paths([tmp_path], root=tmp_path) == []

    def test_directive_is_per_code(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def t() -> float:\n"
            "    return time.time()  # simlint: disable=SL006\n"
        )
        target = tmp_path / "repro" / "core" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        findings = lint_paths([tmp_path], root=tmp_path)
        assert [f.code for f in findings] == ["SL001"]

    def test_disable_all(self, tmp_path):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def t() -> float:\n"
            "    return time.time()  # simlint: disable=all\n"
        )
        target = tmp_path / "repro" / "core" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text(source)
        assert lint_paths([tmp_path], root=tmp_path) == []


class TestHead:
    def test_head_tree_is_clean(self):
        findings = lint_paths([REPO_SRC / "repro"], root=REPO_SRC)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"simlint findings at HEAD:\n{rendered}"


class TestEngine:
    def test_syntax_error_raises_source_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(SourceError):
            lint_paths([tmp_path], root=tmp_path)

    def test_source_error_pickles(self):
        exc = SourceError(Path("x.py"), "bad syntax")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.path == exc.path
        assert clone.reason == exc.reason

    def test_module_names_strip_src_layout(self, tmp_path):
        from repro.devtools.simlint import load_modules
        target = tmp_path / "src" / "repro" / "core" / "stats.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")
        project = load_modules([tmp_path], root=tmp_path)
        assert project.module("repro.core.stats") is not None

    def test_select_restricts_rules(self, tmp_path):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        assert lint_paths([tmp_path], root=tmp_path,
                          select=["SL002"]) == []


class TestCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        plant(tmp_path, "sl001_bad.py", "repro/core/clock.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 1
        assert "SL001" in capsys.readouterr().out

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        plant(tmp_path, "sl001_ok.py", "repro/core/clock.py")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_exit_two_on_syntax_error(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code = simlint_main([str(tmp_path), "--root", str(tmp_path)])
        assert code == 2
        assert "simlint: error" in capsys.readouterr().err

    def test_json_report_and_output_file(self, tmp_path, capsys):
        plant(tmp_path, "sl005_bad_executor.py",
              "repro/experiments/executor.py")
        out = tmp_path / "report" / "simlint.json"
        code = simlint_main([str(tmp_path), "--root", str(tmp_path),
                             "--format", "json",
                             "--output", str(out)])
        assert code == 1
        document = json.loads(out.read_text())
        assert document["tool"] == "simlint"
        assert document["total"] == len(document["findings"]) > 0
        assert set(document["rules"]) == {
            "SL001", "SL002", "SL003", "SL004", "SL005", "SL006",
            "SL007", "SL008", "SL009"}
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert simlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SL001", "SL002", "SL003", "SL004", "SL005",
                     "SL006", "SL007", "SL008", "SL009"):
            assert code in out

    def test_repro_lint_subcommand_forwards(self, tmp_path, capsys):
        plant(tmp_path, "sl006_bad.py", "repro/experiments/pool.py")
        code = repro_main(["lint", str(tmp_path),
                           "--root", str(tmp_path)])
        assert code == 1
        assert "SL006" in capsys.readouterr().out

    def test_repro_lint_subcommand_select(self, tmp_path, capsys):
        plant(tmp_path, "sl006_bad.py", "repro/experiments/pool.py")
        code = repro_main(["lint", str(tmp_path),
                           "--root", str(tmp_path),
                           "--select", "SL001"])
        assert code == 0
        capsys.readouterr()
